//! Cross-crate integration tests: signal generation (`cml-sig`) through
//! the channel (`cml-channel`), the transistor-level cells
//! (`cml-core::cells` on `cml-spice`/`cml-pdk`) and the behavioural link
//! models, checked against each other.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_channel::Backplane;
use cml_core::behav::{self, Block};
use cml_core::cells::{add_diff_drive, add_supply, cml_buffer, DiffPort};
use cml_numeric::logspace;
use cml_pdk::{Corner, Pdk018};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::{measure, Bode, EyeDiagram};
use cml_spice::prelude::*;

const UI: f64 = 100e-12;

fn prbs_wave(amplitude: f64) -> cml_sig::UniformWave {
    let bits: Vec<bool> = Prbs::prbs7().take(381).collect();
    NrzConfig::new(UI, amplitude).render(&bits)
}

/// The behavioural buffer model must agree with the transistor cell it
/// claims to be calibrated against, in DC gain and bandwidth class.
#[test]
fn behavioural_buffer_matches_transistor_cell() {
    // Transistor level.
    let pdk = Pdk018::typical();
    let cfg = cml_buffer::CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cml_buffer::output_common_mode(&cfg),
        None,
    );
    cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));
    let freqs = logspace(1e7, 60e9, 80);
    let ac = cml_spice::analysis::ac::sweep_auto(&ckt, &freqs).expect("ac");
    let tr_bode = Bode::new(freqs.clone(), ac.differential_trace(output.p, output.n));

    // Behavioural model.
    let model = behav::CmlBuffer::paper_default();
    let bh_gains: Vec<_> = freqs.iter().map(|&f| model.small_signal(f)).collect();
    let bh_bode = Bode::new(freqs, bh_gains);

    let tr_gain = tr_bode.dc_gain_db();
    let bh_gain = bh_bode.dc_gain_db();
    assert!(
        (tr_gain - bh_gain).abs() < 2.0,
        "gain mismatch: transistor {tr_gain:.2} dB vs model {bh_gain:.2} dB"
    );
    let tr_bw = tr_bode.bandwidth_3db().expect("rolls off");
    let bh_bw = bh_bode.bandwidth_3db().expect("rolls off");
    let ratio = tr_bw / bh_bw;
    assert!(
        ratio > 0.6 && ratio < 1.7,
        "bandwidth class mismatch: transistor {tr_bw:.3e} vs model {bh_bw:.3e}"
    );
}

/// PRBS → PWL source → transistor RC → eye: the simulator, the signal
/// tooling and the measurement stack agree end to end.
#[test]
fn spice_transient_roundtrip_through_rc() {
    let bits: Vec<bool> = Prbs::prbs7().take(64).collect();
    let pwl = NrzConfig::new(UI, 0.4).with_offset(0.9).render_pwl(&bits);

    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Vsource::new("V1", vin, Circuit::GROUND, Waveform::Pwl(pwl)));
    // Pole well above the bit rate: waveform passes almost unchanged.
    ckt.add(Resistor::new("R1", vin, out, 50.0));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 50e-15));
    let tran =
        cml_spice::analysis::tran::run(&ckt, &TranConfig::new(64.0 * UI, 2e-12)).expect("tran");
    let wave = cml_sig::UniformWave::from_series(tran.times(), &tran.voltage(out), 2e-12);
    let m = EyeDiagram::fold(&wave.skip_initial(1e-9), UI).metrics();
    assert!(
        m.opening > 0.85,
        "clean RC eye should be open: {}",
        m.opening
    );
    assert!((measure::swing(&wave) - 0.4).abs() < 0.05);
}

/// Corner consistency across pdk + spice + core: the FF corner buffer is
/// faster than the SS corner buffer.
#[test]
fn corners_order_buffer_bandwidth() {
    let bw = |corner: Corner| {
        let pdk = Pdk018::new(corner, 27.0);
        let cfg = cml_buffer::CmlBufferConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(
            &mut ckt,
            "VIN",
            input,
            cml_buffer::output_common_mode(&cfg),
            None,
        );
        cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
        ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
        ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));
        let freqs = logspace(1e8, 60e9, 50);
        let ac = cml_spice::analysis::ac::sweep_auto(&ckt, &freqs).expect("ac");
        Bode::new(freqs, ac.differential_trace(output.p, output.n))
            .bandwidth_3db()
            .unwrap_or(0.0)
    };
    let ff = bw(Corner::Ff);
    let ss = bw(Corner::Ss);
    assert!(ff > ss, "FF ({ff:.3e}) must beat SS ({ss:.3e})");
}

/// The full behavioural link stays open over the nominal backplane and
/// degrades monotonically as the trace lengthens.
#[test]
fn link_eye_degrades_monotonically_with_trace_length() {
    let data = prbs_wave(0.5);
    let mut openings = Vec::new();
    for len in [0.2, 0.5, 0.9] {
        let mut link = behav::IoLink::paper_default();
        link.channel = Some(Backplane::fr4_trace(len));
        let out = link.process(&data);
        let m = EyeDiagram::fold(&out.skip_initial(3e-9), UI).metrics();
        openings.push(m.opening);
    }
    assert!(
        openings[0] >= openings[2] - 0.05,
        "longest trace should be no better than shortest: {openings:?}"
    );
    assert!(openings[1] > 0.3, "nominal link must be open: {openings:?}");
}

/// Offset-cancellation claim (§III.C): with a PRBS-31-class long run
/// pattern the high-pass corner must not destroy the eye.
#[test]
fn long_run_pattern_survives_offset_cancel_highpass() {
    // 31 consecutive ones embedded in PRBS data.
    let mut bits: Vec<bool> = Prbs::prbs7().take(160).collect();
    for b in bits.iter_mut().skip(60).take(31) {
        *b = true;
    }
    let wave = NrzConfig::new(UI, 0.1).render(&bits);
    let rx = behav::InputInterface::paper_default();
    let out = rx.process(&wave);
    let m = EyeDiagram::fold(&out.skip_initial(3e-9), UI).metrics();
    assert!(
        m.height > 0.0,
        "eye must survive a 31-bit run (offset corner ≪ run rate)"
    );
}

/// Power/area claims are consistent between the accounting modules and
/// the report that feeds Table I.
#[test]
fn report_consistent_with_accounting() {
    let row = cml_core::report::this_work();
    let power = cml_core::power::io_interface().total_power();
    let area = cml_core::area::io_interface().total_mm2();
    assert!((row.power - power).abs() < 1e-12);
    assert!((row.area_mm2 - area).abs() < 1e-12);
}

/// The behavioural blocks' sampled-time processing must agree with their
/// own analytic small-signal transfer functions: drive a tone through
/// `process()` and compare the steady-state amplitude against
/// `small_signal(f)`.
#[test]
fn behav_process_matches_small_signal_tf() {
    use cml_core::behav::{Block, CmlBuffer, Equalizer, LimitingAmp};
    let dt = 1e-12;
    let n = 32768;
    let tone = |f: f64, amp: f64| {
        cml_sig::UniformWave::new(
            0.0,
            dt,
            (0..n)
                .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 * dt).sin())
                .collect(),
        )
    };
    let steady_amp = |w: &cml_sig::UniformWave| {
        w.samples()[w.len() / 2..]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
    };
    // Tiny amplitude keeps the tanh in its linear region.
    let amp_in = 1e-4;
    for f in [5e8, 2e9, 8e9] {
        let buf = CmlBuffer::paper_default();
        let got = steady_amp(&buf.process(&tone(f, amp_in))) / amp_in;
        let want = buf.small_signal(f).abs();
        assert!(
            (got - want).abs() / want < 0.05,
            "buffer at {f:.1e}: process {got:.3} vs tf {want:.3}"
        );

        let eq = Equalizer::paper_default();
        let got = steady_amp(&eq.process(&tone(f, amp_in))) / amp_in;
        let want = eq.small_signal(f).abs();
        assert!(
            (got - want).abs() / want < 0.07,
            "equalizer at {f:.1e}: process {got:.3} vs tf {want:.3}"
        );
    }
    // LA checked at one mid-band point (4 cascaded biquads accumulate
    // more discretization error at the band edge).
    let la = LimitingAmp {
        f_offset: 0.0,
        ..LimitingAmp::paper_default()
    };
    let f = 1e9;
    let got = steady_amp(&la.process(&tone(f, 1e-6))) / 1e-6;
    let want = la.small_signal(f).abs();
    assert!(
        (got - want).abs() / want < 0.1,
        "la at {f:.1e}: process {got:.3} vs tf {want:.3}"
    );
}
