//! Invariants of the solver-telemetry layer.
//!
//! The telemetry contract has three load-bearing clauses, each pinned
//! here: counter totals are **deterministic** — bit-identical for any
//! worker-thread count, because only per-point events are counted and
//! per-thread buffers merge in input order; spans are **well-nested** —
//! every recorded span closes inside its parent, per thread; and the
//! disabled handle is **free** — it records nothing, flushes nothing and
//! allocates nothing on the hot paths (checked with a counting global
//! allocator). A property test drives random open/close scripts through
//! the span API and asserts the resulting forest always checks out.
//!
//! All tests serialize on one mutex: the allocation counter is global,
//! so the zero-allocation test must not race sibling tests' allocations.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::equalizer::{self, EqualizerConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_spice::analysis::tran::{self, TranConfig};
use cml_spice::analysis::{ac, op, NewtonOptions};
use cml_spice::prelude::*;
use cml_spice::telemetry::{Counters, Telemetry};
use proptest::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Global allocator that counts allocations, so the disabled-telemetry
/// path can be shown to cost zero allocations — not just "few".
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates to `System` unchanged; only a counter is added.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes every test in this binary (see module docs).
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// The paper's equalizer cell: big enough to exercise the sparse path
/// and the parallel AC fan-out, small enough for a debug-mode test.
fn equalizer_circuit() -> Circuit {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = EqualizerConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
    equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
    ckt
}

/// Step-driven RC ladder for transient-counter checks.
fn rc_ladder(n_stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(Vsource::new(
        "V1",
        prev,
        Circuit::GROUND,
        Waveform::step(0.0, 1.0, 10e-12, 5e-12),
    ));
    for i in 0..n_stages {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Resistor::new(&format!("R{i}"), prev, node, 150.0));
        ckt.add(Capacitor::new(
            &format!("C{i}"),
            node,
            Circuit::GROUND,
            40e-15,
        ));
        prev = node;
    }
    ckt
}

fn sparse_opts() -> NewtonOptions {
    NewtonOptions {
        sparse_threshold: 1,
        // The topology cache is process-global, so back-to-back runs of
        // the same circuit legitimately shift counts from `cache_misses`
        // to `cache_hits` between calls. These tests compare *repeated
        // runs* against each other to pin thread-count invariance, so
        // they opt out; cache-counter invariance across thread counts is
        // pinned separately in tests/cache_equivalence.rs.
        cache: false,
        ..NewtonOptions::default()
    }
}

#[test]
fn ac_counters_identical_for_any_thread_count() {
    let _g = lock();
    let ckt = equalizer_circuit();
    let x_op = op::solve(&ckt).expect("operating point");
    let freqs = logspace(1e6, 60e9, 64);
    let counters_at = |threads: usize| -> Counters {
        let tel = Telemetry::enabled();
        ac::sweep_traced(&ckt, x_op.solution(), &freqs, &sparse_opts(), threads, &tel)
            .expect("ac sweep");
        tel.report().counters
    };
    let serial = counters_at(1);
    assert_eq!(serial.ac_points, 64, "every grid point must be counted");
    assert!(serial.ac_points_sparse > 0, "sparse path never engaged");
    for threads in [2, 8] {
        let parallel = counters_at(threads);
        assert_eq!(
            serial, parallel,
            "counter totals changed between 1 and {threads} threads"
        );
    }
}

#[test]
fn spans_are_well_nested_across_analyses() {
    let _g = lock();
    // Transient (fine mode: per-Newton spans included).
    let tel = Telemetry::enabled_fine();
    let ckt = rc_ladder(6);
    let cfg = {
        let mut c = TranConfig::new(2e-10, 1e-12).adaptive();
        c.newton.sparse_threshold = 1;
        c
    };
    tran::run_traced(&ckt, &cfg, &tel).expect("transient");
    // AC on the same handle, with worker forks merged back in.
    let ackt = equalizer_circuit();
    let x_op = op::solve(&ackt).expect("operating point");
    let freqs = logspace(1e6, 60e9, 32);
    ac::sweep_traced(&ackt, x_op.solution(), &freqs, &sparse_opts(), 4, &tel).expect("ac sweep");
    let report = tel.report();
    assert!(!report.spans.is_empty(), "fine mode must record spans");
    report
        .check_well_nested()
        .unwrap_or_else(|e| panic!("spans not well-nested: {e}"));
    assert!(
        report.open_spans == 0,
        "{} spans left open after both analyses returned",
        report.open_spans
    );
    // Transient counters hang together: every accepted step is an LTE
    // accept on the adaptive path, and the dt histogram covers them all.
    let c = &report.counters;
    assert_eq!(c.tran_steps, c.lte_accepts, "adaptive accepts == steps");
    let hist: u64 = c.dt_histogram.iter().sum();
    assert_eq!(hist, c.tran_steps, "dt histogram must cover every step");
    assert!(c.newton_solves > 0 && c.newton_iterations >= c.newton_solves);
}

#[test]
fn disabled_handle_records_and_flushes_nothing() {
    let _g = lock();
    let tel = Telemetry::disabled();
    let ckt = rc_ladder(4);
    tran::run_traced(&ckt, &TranConfig::new(5e-11, 1e-12), &tel).expect("transient");
    let report = tel.report();
    assert!(!report.enabled);
    assert_eq!(report.counters, Counters::default());
    assert!(report.spans.is_empty());
    assert!(
        tel.flush().expect("flush").is_empty(),
        "disabled flush must write no files"
    );
}

#[test]
fn disabled_hot_paths_do_not_allocate() {
    let _g = lock();
    let tel = Telemetry::disabled();
    // Warm up any lazily-initialized statics (monotonic epoch, …).
    {
        let _s = tel.span("warm", "up");
        let _t = tel.timer(cml_spice::telemetry::Phase::NewtonSolve);
        tel.count(|c| c.newton_iterations += 1);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10_000 {
        let _span = tel.span("solver", "newton");
        let _fine = tel.span_fine("solver", "factor");
        let _timer = tel.timer(cml_spice::telemetry::Phase::Factor);
        let _ft = tel.timer_fine(cml_spice::telemetry::Phase::BackSubstitute);
        tel.count(|c| c.newton_iterations += 1);
        let probe = tel.probe();
        let fork = probe.fork(3);
        tel.absorb(fork.into_parts());
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated {} times in 10k hot-path rounds",
        after - before
    );
}

proptest! {
    /// Any script of span opens and closes — including unbalanced
    /// scripts, where the trailing guards close on drop — yields a
    /// well-nested forest with every opened span recorded exactly once.
    #[test]
    fn every_opened_span_is_closed(ops in prop::collection::vec(any::<bool>(), 0..64)) {
        let _g = lock();
        let tel = Telemetry::enabled();
        let mut opened = 0u64;
        let mut stack = Vec::new();
        for &open in &ops {
            if open {
                // Depth-varied names exercise sibling + child nesting.
                let name = ["a", "b", "c", "d"][stack.len() % 4];
                stack.push(tel.span("prop", name));
                opened += 1;
            } else {
                stack.pop();
            }
        }
        // Close the remaining guards innermost-first (a bare `drop(stack)`
        // would drop front-to-back — outermost first — which is exactly
        // the misuse the nesting checker exists to reject).
        while stack.pop().is_some() {}
        let report = tel.report();
        prop_assert_eq!(report.spans.len() as u64, opened);
        prop_assert_eq!(report.open_spans, 0);
        if let Err(e) = report.check_well_nested() {
            return Err(TestCaseError::fail(format!("not well-nested: {e}")));
        }
    }
}
