//! Invariants of the PR 10 observability layer: the flight recorder's
//! dump-on-failure path and the structured event log.
//!
//! Four load-bearing clauses are pinned here:
//!
//! * **Dump determinism** — the same failing circuit produces bundles
//!   that are byte-identical *modulo timestamps*: equal content
//!   fingerprints (which exclude `t_ns` and the wall-clock report) and
//!   bit-identical residual trajectories. This is what makes a bundle
//!   from a user's machine comparable to one reproduced locally.
//! * **Replay closure** — `cml-lint`'s forensics replay re-runs the
//!   recorded failure and reproduces the trajectory bit-for-bit.
//! * **Bounded ring semantics** — on overflow the event ring keeps the
//!   newest N events and counts the evicted ones; event *counter*
//!   totals are thread-invariant under fork/absorb for any worker
//!   count, like every other counter.
//! * **Typed corruption** — a damaged bundle surfaces a specific
//!   `FlightError`, never a panic or a garbage decode.
//!
//! Tests serialize on one mutex: the flight directory override is
//! process-global.

#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::equalizer::{self, EqualizerConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_lint::forensics;
use cml_spice::analysis::{op, NewtonOptions};
use cml_spice::flight::{self, FlightBundle, FlightError};
use cml_spice::prelude::*;
use cml_spice::telemetry::{EventKind, Telemetry};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serializes every test in this binary (see module docs).
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Fresh, empty scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cml-flight-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn cmlf_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read scratch dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "cmlf"))
        .collect();
    files.sort();
    files
}

/// The paper's equalizer cell: a MOSFET circuit whose operating point
/// genuinely needs Newton iterations, so a starved iteration budget
/// fails the whole homotopy ladder deterministically.
fn mosfet_circuit() -> Circuit {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = EqualizerConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
    equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
    ckt
}

/// Options that force divergence: one Newton iteration per attempt can
/// never satisfy a nonlinear circuit's convergence + no-damping check.
fn diverging_opts() -> NewtonOptions {
    NewtonOptions {
        max_iter: 1,
        // The topology cache shifts *cost* counters between runs; keep
        // the two determinism runs on identical cold paths.
        cache: false,
        ..NewtonOptions::default()
    }
}

#[test]
fn dump_on_failure_is_deterministic_modulo_timestamps() {
    let _g = lock();
    let dir = scratch_dir("determinism");
    flight::set_dir(Some(dir.clone()));
    flight::set_seed(Some(7));
    let ckt = mosfet_circuit();
    let opts = diverging_opts();
    for _ in 0..2 {
        let tel = Telemetry::enabled();
        let err = op::solve_traced(&ckt, &opts, None, &tel);
        assert!(err.is_err(), "starved iteration budget must not converge");
    }
    flight::set_dir(None);
    flight::set_seed(None);

    let files = cmlf_files(&dir);
    assert_eq!(files.len(), 2, "each failing solve dumps one bundle");
    let a = FlightBundle::read(&files[0]).expect("first bundle validates");
    let b = FlightBundle::read(&files[1]).expect("second bundle validates");

    assert_eq!(a.analysis, "op");
    assert_eq!(a.content_hash, ckt.content_hash());
    assert_eq!(a.topology_hash, ckt.topology_hash());
    assert_eq!(a.seed, Some(7));
    assert_eq!(a.options, opts);
    let (tag, msg) = a.error.as_ref().expect("failure bundles carry the error");
    assert_eq!(*tag, 0, "NoConvergence is tag 0");
    assert!(
        msg.contains("op"),
        "error message names the analysis: {msg}"
    );
    assert!(
        !a.trajectory.is_empty(),
        "the failing attempt's residuals must be recorded"
    );
    assert!(
        a.events
            .iter()
            .any(|e| matches!(e.kind, EventKind::NewtonDiverged { .. })),
        "divergence must appear in the event log"
    );

    // Byte-identical modulo timestamps: same fingerprint (it excludes
    // t_ns / report wall-clock), same trajectory bit patterns.
    assert_eq!(
        a.content_fingerprint(),
        b.content_fingerprint(),
        "same failing circuit must fingerprint identically across runs"
    );
    assert!(a.trajectory_matches(&b.trajectory));

    // Replay closure: forensics re-runs the failure and the fresh
    // trajectory reproduces bit-for-bit.
    let replay = forensics::replay_check(&a).expect("embedded netlist re-parses");
    assert!(replay.supported && replay.error_reproduced);
    assert!(
        replay.trajectory_match,
        "replay trajectory diverged from the recorded one: {:?} vs {:?}",
        replay.replayed_trajectory, a.trajectory
    );
    assert!(replay.ok());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ring_overflow_keeps_newest_and_counts_drops() {
    let _g = lock();
    let tel = Telemetry::enabled().with_event_capacity(8);
    for i in 0..20 {
        tel.event(|| EventKind::LteReject {
            t: f64::from(i),
            dt: 1.0,
        });
    }
    let held = tel.events_snapshot();
    assert_eq!(held.len(), 8, "ring must stay at capacity");
    assert_eq!(tel.events_dropped(), 12, "evictions must be counted");
    for (k, ev) in held.iter().enumerate() {
        let EventKind::LteReject { t, .. } = ev.kind else {
            panic!("unexpected event kind");
        };
        assert_eq!(t, (12 + k) as f64, "overflow must keep the newest events");
    }
    // The emitted *counter* still saw all 20 — the ring bounds memory,
    // not accounting.
    assert_eq!(tel.report().counters.events_emitted, 20);
}

#[test]
fn event_totals_thread_invariant_across_worker_counts() {
    let _g = lock();
    let ckt = mosfet_circuit();
    let opts = diverging_opts();
    // 8 failing solves, partitioned across W workers like par_map does:
    // fork a private handle per worker, absorb in input order.
    let totals_at = |workers: usize| {
        let tel = Telemetry::enabled();
        let probe = tel.probe();
        let parts: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ckt = &ckt;
                    let opts = &opts;
                    s.spawn(move || {
                        let wtel = probe.fork(w as u32 + 1);
                        let per_worker = 8 / workers;
                        for _ in 0..per_worker {
                            let _ = op::solve_traced(ckt, opts, None, &wtel);
                        }
                        wtel.into_parts()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in parts {
            tel.absorb(p);
        }
        let report = tel.report();
        (
            report.counters.events_emitted,
            report.counters.degradation_warnings,
            report.events.len() as u64 + report.events_dropped,
        )
    };
    let serial = totals_at(1);
    assert!(serial.0 > 0, "failing solves must emit events");
    assert_eq!(
        serial.2, serial.0,
        "held + dropped must account for every emitted event"
    );
    for workers in [2, 8] {
        assert_eq!(
            totals_at(workers),
            serial,
            "event totals changed between 1 and {workers} workers"
        );
    }
}

#[test]
fn corrupt_bundles_surface_typed_errors() {
    let _g = lock();
    let dir = scratch_dir("corruption");
    flight::set_dir(Some(dir.clone()));
    let tel = Telemetry::enabled();
    let _ = op::solve_traced(&mosfet_circuit(), &diverging_opts(), None, &tel);
    flight::set_dir(None);

    let files = cmlf_files(&dir);
    assert_eq!(files.len(), 1);
    let bytes = std::fs::read(&files[0]).expect("read bundle");

    let check = |name: &str, mutated: Vec<u8>, expect: fn(&FlightError) -> bool| {
        let path = dir.join(name);
        std::fs::write(&path, mutated).expect("write corrupt copy");
        let err = FlightBundle::read(&path).expect_err("corrupt bundle must not validate");
        assert!(expect(&err), "{name}: unexpected error {err:?}");
    };
    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'Z';
    check("bad-magic.cmlf", bad_magic, |e| {
        matches!(e, FlightError::BadMagic)
    });
    let mut bad_version = bytes.clone();
    bad_version[4] = 0xEE;
    check("bad-version.cmlf", bad_version, |e| {
        matches!(e, FlightError::BadVersion(_))
    });
    let mut flipped = bytes.clone();
    let mid = bytes.len() / 2;
    flipped[mid] ^= 0x5A;
    check("flipped-payload.cmlf", flipped, |e| {
        matches!(e, FlightError::ChecksumMismatch)
    });
    check("truncated.cmlf", bytes[..bytes.len() - 16].to_vec(), |e| {
        matches!(e, FlightError::LengthMismatch { .. })
    });
    check("empty.cmlf", Vec::new(), |e| {
        matches!(e, FlightError::Truncated(_))
    });
    assert!(matches!(
        FlightBundle::read(&dir.join("does-not-exist.cmlf")),
        Err(FlightError::Io(_))
    ));

    let _ = std::fs::remove_dir_all(&dir);
}
