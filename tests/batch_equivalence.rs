//! Equivalence properties of the batched multi-variant solver.
//!
//! The batch engine's contract is that lane packing is invisible: a
//! K-variant batch must produce the same answers as K independent
//! scalar solves, for every lane width, for operating-point and
//! transient analyses, on linear and transistor-level circuits alike —
//! and a lane evicted to the scalar fallback ladder must land on the
//! scalar answer exactly. On top sit the yield-estimator invariants:
//! the estimate is a pure function of `(parameters, seed)`,
//! independent of thread count and of the batch/scalar engine choice.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::yield_est::{
    behavioral_offset_yield, behavioral_offset_yield_scalar, pair_offsets_batched,
    pair_offsets_scalar, transistor_offset_yield, ChainSpec, PairYieldSpec, YieldConfig,
};
use cml_spice::analysis::tran::TranConfig;
use cml_spice::analysis::{batch, op, NewtonOptions};
use cml_spice::prelude::*;
use proptest::prelude::*;

fn nmos(vth0: f64) -> MosParams {
    MosParams {
        mos_type: MosType::Nmos,
        w: 10e-6,
        l: 0.18e-6,
        vth0,
        kp: 170e-6,
        lambda: 0.1,
        cox: 8.4e-3,
        cov: 3.0e-10,
        cj: 1.0e-3,
        ldiff: 0.5e-6,
    }
}

/// NMOS differential pair with mismatched thresholds — the
/// transistor-level Monte-Carlo workhorse.
fn diff_pair(dvth: f64, vin: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let outp = ckt.node("outp");
    let outn = ckt.node("outn");
    let tail = ckt.node("tail");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
    ckt.add(Vsource::dc("VBP", inp, Circuit::GROUND, 0.9 + vin));
    ckt.add(Vsource::dc("VBN", inn, Circuit::GROUND, 0.9 - vin));
    ckt.add(Resistor::new("RL1", vdd, outp, 500.0));
    ckt.add(Resistor::new("RL2", vdd, outn, 500.0));
    ckt.add(Mosfet::new(
        "M1",
        outp,
        inp,
        tail,
        Circuit::GROUND,
        nmos(0.45 + dvth / 2.0),
    ));
    ckt.add(Mosfet::new(
        "M2",
        outn,
        inn,
        tail,
        Circuit::GROUND,
        nmos(0.45 - dvth / 2.0),
    ));
    ckt.add(Isource::dc("IT", tail, Circuit::GROUND, 1e-3));
    ckt
}

/// Linear divider driven by `v`; an analytically known solution.
fn divider(r_top: f64, v: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, v));
    ckt.add(Resistor::new("R1", vin, out, r_top));
    ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1000.0));
    ckt
}

/// RC step-response circuit for the transient property.
fn rc_cell(r: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Vsource::new(
        "V1",
        inp,
        Circuit::GROUND,
        Waveform::step(0.0, 1.0, 1e-10, 2e-11),
    ));
    ckt.add(Resistor::new("R1", inp, out, r));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
    ckt
}

proptest! {
    /// K-lane batched operating point == K independent scalar solves,
    /// MOSFET circuits, every lane width.
    #[test]
    fn batched_op_equals_scalar_mosfet(
        dvths in prop::collection::vec(-10e-3..10e-3f64, 1..=7),
        vin in -0.05..0.05f64,
        lanes_idx in 0usize..4,
    ) {
        let lanes = [1usize, 2, 4, 8][lanes_idx];
        let ckts: Vec<Circuit> = dvths.iter().map(|&d| diff_pair(d, vin)).collect();
        let opts = NewtonOptions::default();
        let res = batch::op_batch_with_lanes(
            &ckts, &opts, None, lanes, &cml_spice::telemetry::Telemetry::disabled(),
        ).expect("batched op");
        prop_assert_eq!(res.len(), ckts.len());
        for (v, ckt) in ckts.iter().enumerate() {
            let scalar = op::solve(ckt).expect("scalar op");
            for (a, b) in res.solution(v).iter().zip(scalar.solution()) {
                prop_assert!((a - b).abs() <= 1e-9,
                    "lanes={} variant={} batched={} scalar={}", lanes, v, a, b);
            }
        }
    }

    /// Same property on purely linear circuits, where the solve is one
    /// Newton step and any lane cross-talk would surface immediately.
    #[test]
    fn batched_op_equals_scalar_linear(
        r_tops in prop::collection::vec(10.0..10_000.0f64, 1..=8),
        v in 0.1..5.0f64,
        lanes_idx in 0usize..4,
    ) {
        let lanes = [1usize, 2, 4, 8][lanes_idx];
        let ckts: Vec<Circuit> = r_tops.iter().map(|&r| divider(r, v)).collect();
        let opts = NewtonOptions::default();
        let res = batch::op_batch_with_lanes(
            &ckts, &opts, None, lanes, &cml_spice::telemetry::Telemetry::disabled(),
        ).expect("batched op");
        let out = ckts[0].find_node("out").expect("out node");
        for (variant, (ckt, &r)) in ckts.iter().zip(&r_tops).enumerate() {
            let scalar = op::solve(ckt).expect("scalar op");
            let b = res.voltage(variant, out);
            prop_assert!((b - scalar.voltage(out)).abs() <= 1e-12);
            // And both sit on the analytic divider (gmin-conditioned,
            // hence the looser gate).
            let expect = v * 1000.0 / (1000.0 + r);
            prop_assert!((b - expect).abs() <= 1e-6);
        }
    }

    /// K-lane batched fixed-grid transient == K scalar transients over
    /// the whole waveform.
    #[test]
    fn batched_tran_equals_scalar(
        rs in prop::collection::vec(100.0..2_000.0f64, 1..=5),
        lanes_idx in 0usize..4,
    ) {
        let lanes = [1usize, 2, 4, 8][lanes_idx];
        let ckts: Vec<Circuit> = rs.iter().map(|&r| rc_cell(r)).collect();
        let config = TranConfig::new(1e-9, 2e-11);
        let res = batch::tran_batch_with_lanes(
            &ckts, &config, lanes, &cml_spice::telemetry::Telemetry::disabled(),
        ).expect("batched tran");
        let out = ckts[0].find_node("out").expect("out node");
        for (variant, ckt) in ckts.iter().enumerate() {
            let scalar = cml_spice::analysis::tran::run(ckt, &config).expect("scalar tran");
            prop_assert_eq!(scalar.times().len(), res.times().len());
            for (a, b) in res.voltage(variant, out).iter().zip(scalar.voltage(out)) {
                prop_assert!((a - b).abs() <= 1e-9, "variant {}", variant);
            }
        }
    }

    /// A lane whose plain-Newton lockstep fails (100 V supply needs the
    /// source-stepping homotopy) is evicted and must land exactly on
    /// the scalar ladder's answer — and must not disturb its lane-mates.
    #[test]
    fn forced_fallback_matches_scalar_ladder(
        sick in 0usize..4,
        v_ok in 0.5..3.0f64,
    ) {
        let ckts: Vec<Circuit> = (0..4)
            .map(|i| divider(1000.0, if i == sick { 100.0 } else { v_ok }))
            .collect();
        let res = batch::op_batch(&ckts, &NewtonOptions::default()).expect("batched op");
        for (variant, ckt) in ckts.iter().enumerate() {
            let scalar = op::solve(ckt).expect("scalar ladder");
            for (a, b) in res.solution(variant).iter().zip(scalar.solution()) {
                prop_assert!((a - b).abs() <= 1e-12, "variant {}", variant);
            }
        }
    }

    /// The behavioral yield estimate is a pure function of the seed:
    /// identical for any thread count and for packed vs scalar kernels.
    #[test]
    fn behavioral_yield_thread_and_engine_invariant(
        seed in any::<u64>(),
        threads in 1usize..6,
    ) {
        let chain = ChainSpec::paper_default();
        let thresholds = [0.05, 0.2];
        let base = YieldConfig::new(600, seed).with_chunk(97);
        let reference = behavioral_offset_yield(&base, &chain, &thresholds);
        let threaded = behavioral_offset_yield(
            &base.clone().with_threads(threads), &chain, &thresholds,
        );
        prop_assert_eq!(&reference, &threaded);
        let scalar = behavioral_offset_yield_scalar(&base, &chain, &thresholds);
        prop_assert_eq!(&reference, &scalar);
    }
}

/// Transistor-level yield: the estimate is bit-identical across thread
/// counts (single deterministic case — each trial is a real solve).
#[test]
fn transistor_yield_thread_invariant() {
    let spec = PairYieldSpec::paper_default();
    let thresholds = [2e-3, 5e-3];
    let base = YieldConfig::new(48, 0xBA7C4).with_chunk(16);
    let reference = transistor_offset_yield(&base, &spec, &thresholds).expect("1 thread");
    for threads in [2, 5, 8] {
        let run = transistor_offset_yield(&base.clone().with_threads(threads), &spec, &thresholds)
            .expect("n threads");
        assert_eq!(reference.estimate, run.estimate, "threads={threads}");
    }
}

/// Cold-started batched trials reproduce the scalar flow to ≤ 1e-9 on
/// the paper's four-stage chain across all process corners.
#[test]
fn chain_offsets_batched_agree_with_scalar() {
    let spec = PairYieldSpec::paper_chain().all_corners();
    let cfg = YieldConfig::new(24, 0x5EED)
        .with_chunk(12)
        .with_warm_start(false);
    let (batched, _) = pair_offsets_batched(&cfg, &spec).expect("batched offsets");
    let scalar = pair_offsets_scalar(&cfg, &spec).expect("scalar offsets");
    assert_eq!(batched.len(), scalar.len());
    for (i, (a, b)) in batched.iter().zip(&scalar).enumerate() {
        assert!((a - b).abs() <= 1e-9, "trial {i}: batched {a} scalar {b}");
    }
}
