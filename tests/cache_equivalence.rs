//! Equivalence and soundness tests for the content-hashed topology
//! artifact cache (`cml-cache`).
//!
//! The cache's contract is that it changes cost, never results. These
//! tests pin that contract from every direction: warm in-process runs
//! are bit-identical to cold ones across op/AC/transient on the paper's
//! builtin blocks; a simulated process restart that rehydrates from the
//! disk tier is bit-identical too; corrupt disk entries are detected,
//! counted and deleted while the run falls back to a cold derivation
//! with unchanged results; the four cache telemetry counters are
//! invariant under the AC worker-thread count; the batched multi-variant
//! solver derives its symbolic analysis once per *batch*, not once per
//! variant; and a property test shows that topology-hash-equal circuits
//! (same structure, different element values) can interchange symbolic
//! analyses without perturbing a single bit of the solution.
//!
//! All tests serialize on one mutex: the interner, the disk-tier
//! configuration and the stats counters are process-global.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_spice::analysis::tran::{self, TranConfig, TranResult};
use cml_spice::analysis::{ac, batch, op, NewtonOptions};
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Serializes every test in this binary (see module docs).
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Puts the process-global cache into a known state: empty interner,
/// zeroed stats, the given disk directory (usually `None`).
fn fresh_cache(dir: Option<PathBuf>) {
    cml_cache::set_enabled(true);
    cml_cache::set_disk_dir(dir);
    cml_cache::intern::clear_in_memory();
    cml_cache::reset_stats();
}

/// A unique scratch directory for one disk-tier test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cml-cache-eqv-{tag}-{}", std::process::id()));
        // A leftover from a killed previous run must not pollute stats.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cached_opts() -> NewtonOptions {
    NewtonOptions {
        sparse_threshold: 1,
        cache: true,
        ..NewtonOptions::default()
    }
}

fn uncached_opts() -> NewtonOptions {
    NewtonOptions {
        cache: false,
        ..cached_opts()
    }
}

/// Step-driven CML buffer: exercises the transient pattern tier on a
/// transistor-level cell.
fn step_buffer() -> Circuit {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        1.2,
        Some(Waveform::step(1.15, 1.25, 20e-12, 10e-12)),
    );
    cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
    ckt
}

/// RC ladder with caller-chosen element values: same `n` ⇒ same
/// topology hash, any values ⇒ (almost surely) different content hash.
fn valued_ladder(n_stages: usize, r: &[f64], c: &[f64]) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(Vsource::new("V1", prev, Circuit::GROUND, Waveform::dc(1.0)));
    for i in 0..n_stages {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Resistor::new(&format!("R{i}"), prev, node, r[i]));
        ckt.add(Capacitor::new(
            &format!("C{i}"),
            node,
            Circuit::GROUND,
            c[i],
        ));
        prev = node;
    }
    ckt
}

fn assert_op_bits_equal(name: &str, a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{name}: {what}: dimension changed");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}: {what}: op unknown {i} differs ({x:e} vs {y:e})"
        );
    }
}

fn assert_ac_bits_equal(name: &str, ckt: &Circuit, a: &ac::AcResult, b: &ac::AcResult, n: usize) {
    for raw in 1..=ckt.num_unknown_nodes() {
        let node = NodeId::from_raw(raw as u32);
        for idx in 0..n {
            let va = a.voltage(node, idx);
            let vb = b.voltage(node, idx);
            assert!(
                va.re.to_bits() == vb.re.to_bits() && va.im.to_bits() == vb.im.to_bits(),
                "{name}: ac node {raw} point {idx} differs"
            );
        }
    }
}

fn assert_tran_bits_equal(name: &str, ckt: &Circuit, a: &TranResult, b: &TranResult) {
    assert_eq!(a.times(), b.times(), "{name}: time grids must match");
    for raw in 1..=ckt.num_unknown_nodes() {
        let node = NodeId::from_raw(raw as u32);
        for (i, (x, y)) in a.voltage(node).iter().zip(&b.voltage(node)).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}: tran node {raw} step {i} differs"
            );
        }
    }
}

/// The blocks the warm/cold comparisons sweep; a representative subset
/// of `BUILTIN_NAMES` (debug-mode runtime budget).
const BLOCKS: [&str; 3] = ["buffer", "equalizer", "la"];

#[test]
fn warm_process_is_bit_identical_to_cold() {
    let _g = lock();
    let freqs = logspace(1e6, 60e9, 48);
    for name in BLOCKS {
        let ckt = cml_lint::builtin_circuit(name).expect("builtin block");
        fresh_cache(None);
        let cold_op = op::solve_with(&ckt, &cached_opts(), None).expect("cold op");
        let cold_ac =
            ac::sweep_with(&ckt, cold_op.solution(), &freqs, &cached_opts(), 2).expect("cold ac");
        assert!(
            cml_cache::stats().misses > 0,
            "{name}: cold run never consulted the cache"
        );
        // Same process, interner warm: every artifact tier should hit.
        let warm_op = op::solve_with(&ckt, &cached_opts(), None).expect("warm op");
        let warm_ac =
            ac::sweep_with(&ckt, warm_op.solution(), &freqs, &cached_opts(), 2).expect("warm ac");
        assert!(
            cml_cache::stats().hits > 0,
            "{name}: warm run never hit the cache"
        );
        assert_op_bits_equal(name, cold_op.solution(), warm_op.solution(), "warm-vs-cold");
        assert_ac_bits_equal(name, &ckt, &cold_ac, &warm_ac, freqs.len());
        // And the cache must be invisible next to a cache-free run.
        let off_op = op::solve_with(&ckt, &uncached_opts(), None).expect("uncached op");
        assert_op_bits_equal(name, cold_op.solution(), off_op.solution(), "off-vs-cold");
    }
    // Transient: cold, warm and cache-off trajectories all agree.
    let ckt = step_buffer();
    let mut cfg = TranConfig::new(0.3e-9, 2e-12);
    cfg.newton = cached_opts();
    fresh_cache(None);
    let cold = tran::run(&ckt, &cfg).expect("cold tran");
    let warm = tran::run(&ckt, &cfg).expect("warm tran");
    let mut off_cfg = cfg.clone();
    off_cfg.newton = uncached_opts();
    let off = tran::run(&ckt, &off_cfg).expect("uncached tran");
    assert_tran_bits_equal("buffer", &ckt, &cold, &warm);
    assert_tran_bits_equal("buffer", &ckt, &cold, &off);
}

#[test]
fn disk_rehydration_is_bit_identical_to_cold() {
    let _g = lock();
    let scratch = ScratchDir::new("rehydrate");
    let freqs = logspace(1e6, 60e9, 48);
    for name in BLOCKS {
        let ckt = cml_lint::builtin_circuit(name).expect("builtin block");
        fresh_cache(Some(scratch.path()));
        let cold_op = op::solve_with(&ckt, &cached_opts(), None).expect("cold op");
        let cold_ac =
            ac::sweep_with(&ckt, cold_op.solution(), &freqs, &cached_opts(), 1).expect("cold ac");
        assert!(
            cml_cache::disk::disk_stats().entries > 0,
            "{name}: cold run stored nothing on disk"
        );
        // Simulated restart: empty interner, zeroed stats, same disk dir.
        cml_cache::intern::clear_in_memory();
        cml_cache::reset_stats();
        let tel = Telemetry::enabled();
        let disk_op = op::solve_traced(&ckt, &cached_opts(), None, &tel).expect("disk op");
        let disk_ac = ac::sweep_traced(&ckt, disk_op.solution(), &freqs, &cached_opts(), 1, &tel)
            .expect("disk ac");
        let counters = tel.report().counters;
        assert!(
            counters.cache_disk_loads > 0,
            "{name}: rehydrating run never loaded from disk"
        );
        assert_eq!(
            counters.cache_validation_failures, 0,
            "{name}: clean disk entries were rejected"
        );
        assert_op_bits_equal(name, cold_op.solution(), disk_op.solution(), "disk-vs-cold");
        assert_ac_bits_equal(name, &ckt, &cold_ac, &disk_ac, freqs.len());
    }
}

#[test]
fn corrupt_disk_entries_fall_back_to_cold_with_identical_results() {
    let _g = lock();
    let scratch = ScratchDir::new("corrupt");
    let freqs = logspace(1e6, 60e9, 32);
    let ckt = cml_lint::builtin_circuit("equalizer").expect("builtin block");
    fresh_cache(Some(scratch.path()));
    let cold_op = op::solve_with(&ckt, &cached_opts(), None).expect("cold op");
    let cold_ac =
        ac::sweep_with(&ckt, cold_op.solution(), &freqs, &cached_opts(), 1).expect("cold ac");
    // Vandalize every stored entry: truncate half, bit-flip the rest.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(scratch.path())
        .expect("read cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cmlc"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "cold run stored nothing to corrupt");
    for (i, path) in entries.iter().enumerate() {
        let mut bytes = std::fs::read(path).expect("read entry");
        if i % 2 == 0 {
            bytes.truncate(bytes.len() / 2);
        } else {
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
        }
        std::fs::write(path, &bytes).expect("rewrite entry");
    }
    // Restart against the vandalized store: every load must be rejected,
    // counted, deleted — and the cold fallback must reproduce the exact
    // cold-run bits.
    cml_cache::intern::clear_in_memory();
    cml_cache::reset_stats();
    let tel = Telemetry::enabled();
    let re_op = op::solve_traced(&ckt, &cached_opts(), None, &tel).expect("fallback op");
    let re_ac = ac::sweep_traced(&ckt, re_op.solution(), &freqs, &cached_opts(), 1, &tel)
        .expect("fallback ac");
    let counters = tel.report().counters;
    assert!(
        counters.cache_validation_failures > 0,
        "corrupt entries were never flagged"
    );
    assert_eq!(counters.cache_disk_loads, 0, "a corrupt entry was loaded");
    assert_op_bits_equal("equalizer", cold_op.solution(), re_op.solution(), "corrupt");
    assert_ac_bits_equal("equalizer", &ckt, &cold_ac, &re_ac, freqs.len());
    // The vandalized files were deleted on rejection, and the fallback
    // re-stored clean replacements — so a verify pass now comes up clean.
    let report = cml_cache::disk::verify();
    assert_eq!(report.corrupt, 0, "rejected entries were left on disk");
    assert!(report.ok > 0, "fallback run did not re-store entries");
}

#[test]
fn cache_counters_are_thread_count_invariant() {
    let _g = lock();
    let ckt = cml_lint::builtin_circuit("equalizer").expect("builtin block");
    let x_op = {
        fresh_cache(None);
        op::solve_with(&ckt, &cached_opts(), None).expect("operating point")
    };
    let freqs = logspace(1e6, 60e9, 64);
    let cache_counts = |threads: usize, warm: bool| -> [u64; 4] {
        if !warm {
            fresh_cache(None);
        }
        let tel = Telemetry::enabled();
        ac::sweep_traced(&ckt, x_op.solution(), &freqs, &cached_opts(), threads, &tel)
            .expect("ac sweep");
        let c = tel.report().counters;
        [
            c.cache_hits,
            c.cache_misses,
            c.cache_disk_loads,
            c.cache_validation_failures,
        ]
    };
    // Cold sweeps: each starts from an empty interner.
    let cold = cache_counts(1, false);
    assert!(cold[1] > 0, "cold sweep recorded no cache misses");
    for threads in [2, 4, 8] {
        assert_eq!(
            cold,
            cache_counts(threads, false),
            "cold cache counters changed at {threads} threads"
        );
    }
    // Warm sweeps: each starts from the same fully-primed interner.
    fresh_cache(None);
    ac::sweep_with(&ckt, x_op.solution(), &freqs, &cached_opts(), 1).expect("prime");
    let warm = cache_counts(1, true);
    assert!(warm[0] > 0 && warm[1] == 0, "warm sweep was not all hits");
    for threads in [2, 4, 8] {
        assert_eq!(
            warm,
            cache_counts(threads, true),
            "warm cache counters changed at {threads} threads"
        );
    }
}

#[test]
fn batch_derives_symbolic_analysis_once_per_batch() {
    let _g = lock();
    let ladder = |k: usize| -> Vec<Circuit> {
        (0..k)
            .map(|v| {
                let r: Vec<f64> = (0..16).map(|i| 140.0 + (v * 16 + i) as f64).collect();
                let c: Vec<f64> = (0..16).map(|i| (38.0 + (v + i) as f64) * 1e-15).collect();
                valued_ladder(16, &r, &c)
            })
            .collect()
    };
    let cold_counts = |k: usize| -> (u64, Vec<Vec<f64>>) {
        fresh_cache(None);
        let tel = Telemetry::enabled();
        let res = batch::op_batch_traced(&ladder(k), &cached_opts(), &tel).expect("batch op");
        let sols = (0..k).map(|v| res.solution(v).to_vec()).collect();
        (tel.report().counters.cache_misses, sols)
    };
    // Cold cost is per-batch, not per-variant: the miss count must not
    // grow with the variant count.
    let (misses_2, _) = cold_counts(2);
    let (misses_8, sols_batch) = cold_counts(8);
    assert!(misses_2 > 0, "batch never consulted the cache");
    assert_eq!(
        misses_2, misses_8,
        "cache misses scaled with variant count — per-variant rediscovery is back"
    );
    // A second batch in the same process is all hits...
    let tel = Telemetry::enabled();
    let res = batch::op_batch_traced(&ladder(8), &cached_opts(), &tel).expect("warm batch");
    let c = tel.report().counters;
    assert_eq!(c.cache_misses, 0, "warm batch re-derived artifacts");
    assert!(c.cache_hits > 0, "warm batch never hit the cache");
    // ...and bit-identical to the cold one.
    for (v, cold) in sols_batch.iter().enumerate() {
        assert_op_bits_equal("ladder", cold, res.solution(v), "warm-batch");
    }
}

proptest! {
    /// Circuits with equal topology hashes interchange symbolic
    /// analyses: priming the cache with circuit A and then solving
    /// circuit B (same structure, different element values) warm gives
    /// exactly the bits B produces with the cache disabled.
    #[test]
    fn hash_equal_topologies_interchange_symbolic_analyses(
        n in 3usize..12,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let _g = lock();
        let values = |seed: u64| {
            let mut state = seed | 1;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let r: Vec<f64> = (0..n).map(|_| 50.0 + 200.0 * next()).collect();
            let c: Vec<f64> = (0..n).map(|_| (10.0 + 80.0 * next()) * 1e-15).collect();
            (r, c)
        };
        let (ra, ca) = values(seed_a);
        let (rb, cb) = values(seed_b);
        let a = valued_ladder(n, &ra, &ca);
        let b = valued_ladder(n, &rb, &cb);
        prop_assert!(
            a.topology_hash() == b.topology_hash(),
            "same structure must hash equal"
        );
        // Prime with A, solve B warm off A's symbolic artifacts.
        fresh_cache(None);
        op::solve_with(&a, &cached_opts(), None).expect("prime with A");
        let warm = op::solve_with(&b, &cached_opts(), None).expect("warm B");
        let cold = op::solve_with(&b, &uncached_opts(), None).expect("uncached B");
        for (i, (x, y)) in cold.solution().iter().zip(warm.solution()).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "unknown {i} differs after artifact interchange"
            );
        }
    }
}
