//! Equivalence tests for the transient factorization-reuse fast path.
//!
//! `TranConfig` defaults to reusing cached linear-element stamps and (on
//! linear circuits) LU factorizations across timesteps; these tests pin
//! the contract that the optimization changes wall-clock only, never
//! results: a reuse-enabled run must match the assemble-everything
//! reference path bit-for-bit on linear circuits and to ≤ 1e-12 on
//! nonlinear (MOSFET) circuits, where split linear/nonlinear stamping
//! reorders floating-point additions.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_pdk::Pdk018;
use cml_spice::analysis::tran::{self, TranConfig, TranResult};
use cml_spice::prelude::*;

fn rc_ladder(n_stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(Vsource::new(
        "V1",
        prev,
        Circuit::GROUND,
        Waveform::step(0.0, 1.0, 10e-12, 5e-12),
    ));
    for i in 0..n_stages {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Resistor::new(&format!("R{i}"), prev, node, 150.0));
        ckt.add(Capacitor::new(
            &format!("C{i}"),
            node,
            Circuit::GROUND,
            40e-15,
        ));
        prev = node;
    }
    ckt
}

fn max_solution_diff(a: &TranResult, b: &TranResult, nodes: &[NodeId]) -> f64 {
    assert_eq!(a.times(), b.times(), "accepted time grids must match");
    let mut worst = 0.0f64;
    for &node in nodes {
        let va = a.voltage(node);
        let vb = b.voltage(node);
        for (x, y) in va.iter().zip(&vb) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

/// Linear circuit: the cached-factorization path runs the *same* stamps
/// through the *same* LU in the same order, so the result is bit-for-bit
/// identical, across both integration methods and the adaptive LTE path.
#[test]
fn rc_ladder_reuse_is_bit_identical() {
    let ckt = rc_ladder(20);
    let nodes: Vec<NodeId> = (0..20)
        .map(|i| ckt.find_node(&format!("n{i}")).unwrap())
        .collect();
    let configs = [
        TranConfig::new(3e-9, 2e-12),
        TranConfig::new(3e-9, 2e-12).backward_euler(),
        TranConfig::new(3e-9, 10e-12).adaptive(),
    ];
    for (k, cfg) in configs.iter().enumerate() {
        let with = tran::run(&ckt, cfg).expect("reuse run");
        let without = tran::run(&ckt, &cfg.clone().without_factor_reuse()).expect("plain run");
        let worst = max_solution_diff(&with, &without, &nodes);
        assert_eq!(worst, 0.0, "config {k}: paths diverge by {worst:e}");
    }
}

/// Nonlinear circuit (the paper's CML buffer cell): split stamping
/// reorders additions, so allow last-ulp accumulation — but no more.
#[test]
fn cml_buffer_reuse_matches_reference() {
    let cfg = CmlBufferConfig::paper_default();
    let pdk = Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    let vcm = cml_buffer::output_common_mode(&cfg);
    // A differential step through the buffer: enough signal to move the
    // pair well away from its symmetric operating point.
    let step = Waveform::Pwl(vec![
        (0.0, vcm - 0.1),
        (50e-12, vcm - 0.1),
        (60e-12, vcm + 0.1),
        (1.0, vcm + 0.1),
    ]);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(step));
    cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));

    let tcfg = TranConfig::new(0.3e-9, 1e-12);
    let with = tran::run(&ckt, &tcfg).expect("reuse run");
    let without = tran::run(&ckt, &tcfg.clone().without_factor_reuse()).expect("plain run");
    let worst = max_solution_diff(&with, &without, &[output.p, output.n, input.p]);
    assert!(worst <= 1e-12, "paths diverge by {worst:e}");
    // Sanity: the buffer actually switched, so the comparison is not
    // between two all-zero waveforms.
    let swing = with
        .differential(output.p, output.n)
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(
        swing.1 - swing.0 > 0.1,
        "buffer output never moved: {swing:?}"
    );
}
