//! Equivalence tests for the sparse complex AC path.
//!
//! The AC engine switches from the per-point dense complex solve to the
//! pattern-reusing sparse complex LU at `NewtonOptions::sparse_threshold`
//! unknowns, and partitions the frequency grid across worker threads.
//! These tests pin the contract that neither switch changes results:
//! dense and sparse sweeps agree to ≤ 1e-9 on every seed cell over a
//! 200-point grid, and the parallel sweep is bit-identical to the serial
//! one for any thread count. A property test additionally checks the
//! complex sparse factorization against dense complex elimination on
//! random diagonally-dominant MNA-shaped systems.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::equalizer::{self, EqualizerConfig};
use cml_core::cells::input_interface::{self, InputInterfaceConfig};
use cml_core::cells::limiting_amp::{self, LimitingAmpConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::sparse::CsrMatrix;
use cml_numeric::{logspace, Complex64, ComplexMatrix, SparseLu};
use cml_pdk::Pdk018;
use cml_spice::analysis::ac::{self, AcResult};
use cml_spice::analysis::{op, NewtonOptions};
use cml_spice::prelude::*;
use proptest::prelude::*;

fn equalizer_circuit() -> Circuit {
    let pdk = Pdk018::typical();
    let cfg = EqualizerConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
    equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
    ckt
}

fn limiting_amp_circuit() -> Circuit {
    let pdk = Pdk018::typical();
    let cfg = LimitingAmpConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        limiting_amp::common_mode(&cfg),
        None,
    );
    limiting_amp::build(&mut ckt, &pdk, &cfg, "la", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
    ckt
}

fn buffer_circuit() -> Circuit {
    let pdk = Pdk018::typical();
    let cfg = CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cml_buffer::output_common_mode(&cfg),
        None,
    );
    cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));
    ckt
}

fn interface_circuit() -> Circuit {
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cfg.equalizer.input_common_mode(),
        None,
    );
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, output, vdd);
    ckt
}

fn seed_cells() -> Vec<(&'static str, Circuit)> {
    vec![
        ("equalizer", equalizer_circuit()),
        ("limiting_amp", limiting_amp_circuit()),
        ("cml_buffer", buffer_circuit()),
        ("input_interface", interface_circuit()),
    ]
}

/// Worst complex node-voltage difference between two sweeps across every
/// unknown node and every frequency point.
fn worst_diff(ckt: &Circuit, a: &AcResult, b: &AcResult, n_freqs: usize) -> f64 {
    let mut worst = 0.0f64;
    for raw in 1..=ckt.num_unknown_nodes() {
        let node = NodeId::from_raw(raw as u32);
        for idx in 0..n_freqs {
            worst = worst.max((a.voltage(node, idx) - b.voltage(node, idx)).abs());
        }
    }
    worst
}

#[test]
fn ac_sparse_matches_dense_on_seed_cells() {
    let freqs = logspace(1e6, 60e9, 200);
    let dense_opts = NewtonOptions {
        sparse_threshold: usize::MAX,
        ..NewtonOptions::default()
    };
    let sparse_opts = NewtonOptions {
        sparse_threshold: 1,
        ..NewtonOptions::default()
    };
    for (name, ckt) in &seed_cells() {
        let op = op::solve(ckt).expect("operating point");
        let dense = ac::sweep_with(ckt, op.solution(), &freqs, &dense_opts, 1).expect("dense ac");
        let sparse =
            ac::sweep_with(ckt, op.solution(), &freqs, &sparse_opts, 1).expect("sparse ac");
        let worst = worst_diff(ckt, &dense, &sparse, freqs.len());
        assert!(worst <= 1e-9, "{name}: ac sparse/dense diff {worst:.3e}");
    }
}

#[test]
fn ac_parallel_is_bit_identical_to_serial() {
    let freqs = logspace(1e6, 60e9, 200);
    let sparse_opts = NewtonOptions {
        sparse_threshold: 1,
        ..NewtonOptions::default()
    };
    for (name, ckt) in &seed_cells() {
        let op = op::solve(ckt).expect("operating point");
        let serial =
            ac::sweep_with(ckt, op.solution(), &freqs, &sparse_opts, 1).expect("serial ac");
        for threads in [2, 3, 5, 8] {
            let parallel = ac::sweep_with(ckt, op.solution(), &freqs, &sparse_opts, threads)
                .expect("parallel ac");
            for raw in 1..=ckt.num_unknown_nodes() {
                let node = NodeId::from_raw(raw as u32);
                for idx in 0..freqs.len() {
                    let a = serial.voltage(node, idx);
                    let b = parallel.voltage(node, idx);
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "{name}: node {raw} at point {idx} differs with {threads} threads"
                    );
                }
            }
        }
    }
}

proptest! {
    /// Complex sparse LU agrees with dense complex elimination on random
    /// diagonally-dominant MNA-shaped systems (a band plus an arrow of
    /// couplings into the last rows, the structure branch currents
    /// create) — the complex-scalar twin of the f64 property test in
    /// `sparse_equivalence.rs`.
    #[test]
    fn complex_sparse_lu_matches_dense_complex(
        seed in any::<u64>(),
        n in 3usize..40,
        band in 1usize..5,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut positions = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if r.abs_diff(c) <= band || r >= n - 2 || c >= n - 2 {
                    positions.push((r, c));
                }
            }
        }
        let mut dense = ComplexMatrix::zeros(n, n);
        let mut csr = CsrMatrix::<Complex64>::from_pattern(n, n, &positions).expect("in-bounds");
        for &(r, c) in &positions {
            let mut v = Complex64::new(next(), next());
            if r == c {
                // G + jωC diagonals dominate in both parts.
                v += Complex64::new(2.0 * (band as f64 + 2.0), 2.0 * (band as f64 + 2.0));
            }
            dense[(r, c)] = v;
            let slot = csr.find(r, c).expect("patterned");
            csr.vals_mut()[slot] = v;
        }
        let b: Vec<Complex64> = (0..n).map(|_| Complex64::new(next(), next())).collect();
        let x_dense = dense.solve(&b).expect("diag dominant");
        let mut lu = SparseLu::new(&csr).expect("square");
        lu.factor(&csr).expect("diag dominant");
        let x_sparse = lu.solve(&b).expect("factored");
        for (a, s) in x_dense.iter().zip(&x_sparse) {
            prop_assert!((*a - *s).abs() < 1e-9, "dense {a:?} vs sparse {s:?}");
        }
    }
}
