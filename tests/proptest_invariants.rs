//! Property-based tests on cross-crate invariants.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_numeric::{fft, Complex64, DenseMatrix};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::{EyeDiagram, UniformWave};
use proptest::prelude::*;

proptest! {
    /// LU solve: A·x = b ⇒ residual is tiny, for any well-conditioned
    /// (diagonally dominated) random matrix.
    #[test]
    fn lu_solve_residual_small(
        seed in any::<u64>(),
        n in 2usize..24,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a[(r, c)] = next();
            }
            a[(r, r)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).expect("diagonally dominant");
        let ax = a.mul_vec(&x).expect("dims");
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    /// FFT round trip is the identity for any power-of-two signal.
    #[test]
    fn fft_roundtrip_identity(
        vals in prop::collection::vec(-1e3f64..1e3, 8..=8),
        log_extra in 0u32..4,
    ) {
        let n = 8usize << log_extra;
        let mut x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::from_real(vals[i % vals.len()]))
            .collect();
        let orig = x.clone();
        fft::fft(&mut x).expect("pow2");
        fft::ifft(&mut x).expect("pow2");
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// Any maximal PRBS seed produces a balanced sequence (ones = zeros + 1).
    #[test]
    fn prbs7_balanced_for_any_seed(seed in 1u32..128) {
        let bits: Vec<bool> = Prbs::with_seed(7, (7, 1), seed).take(127).collect();
        let ones = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones, 64);
    }

    /// Eye height scales linearly with amplitude for a clean signal.
    #[test]
    fn eye_height_scales_with_amplitude(amp in 0.01f64..1.0) {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let unit = NrzConfig::new(100e-12, 1.0).render(&bits);
        let scaled = NrzConfig::new(100e-12, amp).render(&bits);
        let m1 = EyeDiagram::fold(&unit, 100e-12).metrics();
        let m2 = EyeDiagram::fold(&scaled, 100e-12).metrics();
        prop_assert!((m2.height - amp * m1.height).abs() < 0.02 * amp.max(0.05));
    }

    /// The backplane is passive: |H(f)| ≤ 1 at every frequency and any
    /// physical length.
    #[test]
    fn channel_is_passive(len in 0.01f64..2.0, f_ghz in 0.0f64..40.0) {
        let bp = cml_channel::Backplane::fr4_trace(len);
        let h = bp.transfer(f_ghz * 1e9).abs();
        prop_assert!(h <= 1.0 + 1e-9, "gain {h} at {f_ghz} GHz, len {len}");
    }

    /// Behavioural CML buffer never exceeds its configured swing,
    /// regardless of input amplitude (ignoring small filter ringing).
    #[test]
    fn behav_buffer_respects_swing_limit(amp in 0.001f64..5.0) {
        use cml_core::behav::{Block, CmlBuffer};
        let bits: Vec<bool> = Prbs::prbs7().take(64).collect();
        let w = NrzConfig::new(100e-12, amp).render(&bits);
        let buf = CmlBuffer::paper_default();
        let out = buf.process(&w);
        let peak = out
            .samples()
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        // ±swing/2 plus ≤ 30 % peaking margin from the Q = 0.9 load.
        prop_assert!(peak <= 0.5 * buf.swing * 1.3, "peak {peak}");
    }

    /// Waveform resampling preserves values at original sample times.
    #[test]
    fn resample_preserves_knots(
        data in prop::collection::vec(-2.0f64..2.0, 4..64),
    ) {
        let w = UniformWave::new(0.0, 1e-12, data.clone());
        // Resample at 4× and read back at the original times.
        let times = w.times();
        let fine = UniformWave::from_series(&times, w.samples(), 0.25e-12);
        for (i, &v) in data.iter().enumerate() {
            prop_assert!((fine.value_at(w.time_at(i)) - v).abs() < 1e-9);
        }
    }

    /// Eye metrics are invariant to a constant time shift of the data
    /// (folding is phase-circular).
    #[test]
    fn eye_width_shift_invariant(shift_ps in 0.0f64..200.0) {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let w = NrzConfig::new(100e-12, 0.5).render(&bits);
        let shifted = UniformWave::new(w.t0() + shift_ps * 1e-12, w.dt(), w.samples().to_vec());
        let m0 = EyeDiagram::fold(&w, 100e-12).metrics();
        let m1 = EyeDiagram::fold(&shifted, 100e-12).metrics();
        prop_assert!((m0.width - m1.width).abs() < 2e-12);
    }
}

/// Pinned regression for `resample_preserves_knots`, from
/// `proptest_invariants.proptest-regressions` (cc 65b723d6, shrunk input:
/// 31 zeros followed by one nonzero sample). The final knot sits exactly
/// on the resampled wave's last grid point; reading it back must return
/// the knot value, not an extrapolation past the end of the fine grid.
#[test]
fn resample_preserves_knots_regression_end_of_wave() {
    let mut data = vec![0.0f64; 31];
    data.push(1.1149279790554254);
    let w = UniformWave::new(0.0, 1e-12, data.clone());
    let times = w.times();
    let fine = UniformWave::from_series(&times, w.samples(), 0.25e-12);
    for (i, &v) in data.iter().enumerate() {
        let err = (fine.value_at(w.time_at(i)) - v).abs();
        assert!(
            err < 1e-9,
            "knot {i}: err {err:e} (fine.len() = {})",
            fine.len()
        );
    }
}

proptest! {
    /// A random RC ladder driven by DC settles to the source voltage at
    /// every node (no DC drop through capacitors, conservation through
    /// resistor chain with no load current).
    #[test]
    fn spice_rc_ladder_dc_settles_to_source(
        n_stages in 1usize..6,
        r_exp in 1.0f64..4.0,
        c_exp in -14.0f64..-11.0,
        vsrc in 0.1f64..3.0,
    ) {
        use cml_spice::prelude::*;
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let mut ckt = Circuit::new();
        let mut prev = ckt.node("in");
        ckt.add(Vsource::dc("V1", prev, Circuit::GROUND, vsrc));
        for i in 0..n_stages {
            let node = ckt.node(&format!("n{i}"));
            ckt.add(Resistor::new(&format!("R{i}"), prev, node, r));
            ckt.add(Capacitor::new(&format!("C{i}"), node, Circuit::GROUND, c));
            prev = node;
        }
        let op = cml_spice::analysis::op::solve(&ckt).expect("linear network");
        let v_end = op.voltage(prev);
        prop_assert!((v_end - vsrc).abs() < 1e-5, "v_end = {v_end}, vsrc = {vsrc}");
    }

    /// The Level-1 MOSFET current is continuous across the
    /// triode/saturation boundary for any geometry and bias.
    #[test]
    fn mosfet_current_continuous_at_vdsat(
        w_um in 1.0f64..100.0,
        vov in 0.05f64..1.0,
    ) {
        use cml_spice::devices::mosfet::{square_law, MosParams, MosType};
        let p = MosParams {
            mos_type: MosType::Nmos,
            w: w_um * 1e-6,
            l: 0.18e-6,
            vth0: 0.45,
            kp: 170e-6,
            lambda: 0.2,
            cox: 8.4e-3,
            cov: 3e-10,
            cj: 1e-3,
            ldiff: 0.5e-6,
        };
        let vgs = 0.45 + vov;
        let eps = 1e-9;
        let below = square_law(&p, vgs, vov - eps).ids;
        let above = square_law(&p, vgs, vov + eps).ids;
        prop_assert!((below - above).abs() <= 1e-6 * above.max(1e-12));
    }

    /// AC analysis of a voltage divider matches the analytic transfer at
    /// any frequency (exercises the complex solve path end to end).
    #[test]
    fn spice_ac_divider_matches_analytic(
        r_exp in 1.0f64..4.0,
        c_exp in -14.0f64..-11.0,
        f_exp in 6.0f64..10.5,
    ) {
        use cml_spice::prelude::*;
        let r = 10f64.powf(r_exp);
        let c = 10f64.powf(c_exp);
        let f = 10f64.powf(f_exp);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 0.0).with_ac(1.0));
        ckt.add(Resistor::new("R1", a, b, r));
        ckt.add(Capacitor::new("C1", b, Circuit::GROUND, c));
        let ac = cml_spice::analysis::ac::sweep_auto(&ckt, &[f]).expect("linear");
        let got = ac.voltage(b, 0);
        let want = Complex64::ONE
            / Complex64::new(1.0, 2.0 * std::f64::consts::PI * f * r * c);
        prop_assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }

    /// The composite channel's loss is within rounding of the sum of its
    /// segments' losses, for any segment split of the same trace.
    #[test]
    fn channel_loss_is_additive_over_splits(split in 0.05f64..0.95, f_ghz in 0.5f64..20.0) {
        use cml_channel::segments::{CompositeChannel, Segment};
        use cml_channel::Backplane;
        let total = 0.6;
        let f = f_ghz * 1e9;
        let whole = Backplane::fr4_trace(total).attenuation_db(f);
        let parts = CompositeChannel::new(vec![
            Segment::Trace(Backplane::fr4_trace(total * split)),
            Segment::Trace(Backplane::fr4_trace(total * (1.0 - split))),
        ])
        .attenuation_db(f);
        prop_assert!((whole - parts).abs() < 1e-6, "whole {whole} vs parts {parts}");
    }
}
