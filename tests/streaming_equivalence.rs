//! End-to-end equivalence of the streaming transient path against the
//! dense path, across crates: `cml-spice` sinks, `cml-sig` streaming
//! accumulators, `cml-core` adapters and `cml-runner` fan-in.
//!
//! The contract under test: streaming is a *refactor*, not an
//! approximation. For any chunk size, any probe set and any stepping
//! mode, the streamed samples are bit-identical to the dense record,
//! and every streaming accumulator fed chunk-by-chunk produces
//! bit-identical results to the same accumulator fed the dense record
//! in one call.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::input_interface::InputInterfaceConfig;
use cml_core::cells::{add_diff_drive, add_supply, input_interface, DiffPort};
use cml_core::stream::EyeSink;
use cml_pdk::Pdk018;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::streaming::{EyeAccumulator, EyeAccumulatorConfig};
use cml_spice::analysis::tran;
use cml_spice::prelude::*;
use cml_spice::SpiceError;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

/// Small transistor-level workload: the paper's input interface driven
/// by a PRBS-7 NRZ pattern (kept to a few bits — this is a correctness
/// gate, not a benchmark).
fn transistor_workload(n_bits: usize) -> (Circuit, DiffPort) {
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);
    (ckt, out)
}

/// RLC circuit with a pulse source: cheap, with breakpoints.
fn pulse_rlc() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add(Vsource::new(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 2e-9,
            period: 5e-9,
        },
    ));
    ckt.add(Resistor::new("R1", a, b, 50.0));
    ckt.add(Inductor::new("L1", b, Circuit::GROUND, 10e-9));
    ckt.add(Capacitor::new("C1", b, Circuit::GROUND, 1e-12));
    (ckt, b)
}

/// RC circuit with a sine source: no breakpoints at all.
fn sine_rc() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add(Vsource::new(
        "V1",
        a,
        Circuit::GROUND,
        Waveform::Sine {
            offset: 0.0,
            ampl: 1.0,
            freq: 200e6,
            delay: 0.0,
        },
    ));
    ckt.add(Resistor::new("R1", a, b, 1e3));
    ckt.add(Capacitor::new("C1", b, Circuit::GROUND, 1e-12));
    (ckt, b)
}

/// Asserts that streaming `ckt` through a `DenseSink` with the given
/// chunk size reproduces the dense run bit-for-bit.
fn assert_streamed_equals_dense(ckt: &Circuit, node: NodeId, cfg: &TranConfig, chunk: usize) {
    let dense = tran::run(ckt, cfg).unwrap();
    let probes = TranProbes::new()
        .voltage("v", node)
        .current("i", "V1")
        .differential("d", node, Circuit::GROUND);
    let mut sink = DenseSink::new();
    let stats =
        tran::run_streaming(ckt, &cfg.clone().with_chunk_size(chunk), &probes, &mut sink).unwrap();
    assert_eq!(stats.samples as usize, dense.len());
    assert_eq!(sink.times().len(), dense.len());
    let to_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(to_bits(sink.times()), to_bits(dense.times()));
    assert_eq!(to_bits(&sink.cols()[0]), to_bits(&dense.voltage(node)));
    assert_eq!(
        to_bits(&sink.cols()[1]),
        to_bits(&dense.current("V1").unwrap())
    );
    assert_eq!(
        to_bits(&sink.cols()[2]),
        to_bits(&dense.differential(node, Circuit::GROUND))
    );
}

#[test]
fn streamed_equals_dense_fixed_and_adaptive_with_and_without_breakpoints() {
    for (ckt, node) in [pulse_rlc(), sine_rc()] {
        let fixed = TranConfig::new(20e-9, 2e-11);
        let adaptive = TranConfig::new(20e-9, 2e-11).adaptive();
        for cfg in [&fixed, &adaptive] {
            for chunk in [1, 17, 4096] {
                assert_streamed_equals_dense(&ckt, node, cfg, chunk);
            }
        }
    }
}

#[test]
fn streamed_eye_matches_dense_fold_on_transistor_prbs7() {
    let n_bits = 6;
    let (ckt, out) = transistor_workload(n_bits);
    let cfg = TranConfig::new(n_bits as f64 * UI, 2e-12);
    let eye_cfg = EyeAccumulatorConfig::new(UI, 1e-12, -1.0, 1.0).with_skip(2.0 * UI);

    let probes = TranProbes::new().differential("vout", out.p, out.n);
    let mut eye = EyeSink::new("vout", eye_cfg.clone());
    tran::run_streaming(&ckt, &cfg, &probes, &mut eye).unwrap();

    let dense = tran::run(&ckt, &cfg).unwrap();
    let mut reference = EyeAccumulator::new(eye_cfg);
    reference.feed(dense.times(), &dense.differential(out.p, out.n));

    let a = eye.accumulator().metrics();
    let b = reference.metrics();
    // The acceptance bound is ≤ 1e-12; the implementation actually
    // achieves bit-identity, so assert both (the bits subsume the bound).
    assert!((a.height - b.height).abs() <= 1e-12);
    assert!((a.rms_jitter - b.rms_jitter).abs() <= 1e-12);
    assert_eq!(a.height.to_bits(), b.height.to_bits());
    assert_eq!(a.width.to_bits(), b.width.to_bits());
    assert_eq!(a.v_high.to_bits(), b.v_high.to_bits());
    assert_eq!(a.v_low.to_bits(), b.v_low.to_bits());
    assert_eq!(a.rms_jitter.to_bits(), b.rms_jitter.to_bits());
    assert_eq!(a.pp_jitter.to_bits(), b.pp_jitter.to_bits());
    assert_eq!(eye.accumulator().samples(), reference.samples());
}

/// Tee partner that aborts the run after a fixed number of chunks —
/// simulates a crash mid-simulation for the resume test.
struct AbortAfter {
    left: usize,
}

impl WaveSink for AbortAfter {
    fn chunk(&mut self, _chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        if self.left == 0 {
            return Err(SpiceError::InvalidConfig {
                message: "simulated interruption".into(),
            });
        }
        self.left -= 1;
        Ok(())
    }
}

#[test]
fn spill_resume_after_interruption_is_byte_identical_end_to_end() {
    let (ckt, node) = pulse_rlc();
    let cfg = TranConfig::new(20e-9, 2e-11).with_chunk_size(64);
    let probes = TranProbes::new().voltage("v", node).current("i", "V1");
    let dir = std::env::temp_dir().join(format!("cml_stream_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Reference: one uninterrupted spill.
    let ref_path = dir.join("ref.cmw");
    let mut sink = SpillSink::create(&ref_path);
    tran::run_streaming(&ckt, &cfg, &probes, &mut sink).unwrap();
    drop(sink);

    // Interrupted run: the spill sink persists 3 chunks, then the tee
    // partner kills the run (spill side already checkpointed).
    let path = dir.join("resumed.cmw");
    let mut spill = SpillSink::create(&path);
    let mut abort = AbortAfter { left: 3 };
    {
        let mut tee = Tee::new(&mut spill, &mut abort);
        let err = tran::run_streaming(&ckt, &cfg, &probes, &mut tee).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidConfig { .. }));
    }
    drop(spill);

    // Resume: replay the (deterministic) run; persisted chunks are
    // skipped, the rest appended. The file must equal the reference
    // byte for byte.
    let mut resumed = SpillSink::resume(&path).unwrap();
    assert!(resumed.persisted_samples() > 0);
    tran::run_streaming(&ckt, &cfg, &probes, &mut resumed).unwrap();
    drop(resumed);
    let a = std::fs::read(&ref_path).unwrap();
    let b = std::fs::read(&path).unwrap();
    assert_eq!(a, b, "resumed spill differs from uninterrupted spill");

    // And the spill decodes back to the dense record bit-for-bit.
    let dense = tran::run(&ckt, &cfg).unwrap();
    let contents = SpillReader::read(&ref_path).unwrap();
    assert_eq!(contents.col_names, vec!["v".to_string(), "i".to_string()]);
    let to_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(to_bits(&contents.times), to_bits(dense.times()));
    assert_eq!(to_bits(&contents.cols[0]), to_bits(&dense.voltage(node)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn par_fold_eye_fan_in_is_thread_invariant() {
    // Six sweep segments (different drive amplitudes), each streaming
    // its own eye; fan-in by input-order merge. Any thread count must
    // produce the same merged accumulator bit-for-bit.
    let amplitudes: Vec<f64> = vec![0.6, 0.8, 1.0, 1.2, 1.4, 1.6];
    let eye_cfg = EyeAccumulatorConfig::new(4e-9, 2e-11, -2.0, 2.0);
    let segment = |_i: usize, amp: &f64| -> EyeAccumulator {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::Pulse {
                v1: -amp / 2.0,
                v2: amp / 2.0,
                delay: 0.0,
                rise: 2e-10,
                fall: 2e-10,
                width: 1.8e-9,
                period: 4e-9,
            },
        ));
        ckt.add(Resistor::new("R1", a, b, 200.0));
        ckt.add(Capacitor::new("C1", b, Circuit::GROUND, 2e-12));
        let cfg = TranConfig::new(40e-9, 2e-11);
        let probes = TranProbes::new().voltage("v", b);
        let mut eye = EyeSink::new("v", eye_cfg.clone());
        tran::run_streaming(&ckt, &cfg, &probes, &mut eye).unwrap();
        eye.into_accumulator()
    };
    let merge = |mut a: EyeAccumulator, b: EyeAccumulator| {
        a.merge(&b);
        a
    };
    let reference = cml_runner::par_fold(1, &amplitudes, segment, merge).unwrap();
    for threads in [2, 3, 6] {
        let got = cml_runner::par_fold(threads, &amplitudes, segment, merge).unwrap();
        assert_eq!(got.samples(), reference.samples());
        assert_eq!(got.crossings(), reference.crossings());
        let (ma, mb) = (got.metrics(), reference.metrics());
        assert_eq!(ma.height.to_bits(), mb.height.to_bits());
        assert_eq!(ma.rms_jitter.to_bits(), mb.rms_jitter.to_bits());
        assert_eq!(ma.pp_jitter.to_bits(), mb.pp_jitter.to_bits());
    }
}
