//! Equivalence tests for the sparse-MNA solve path.
//!
//! The solver switches from dense to sparse LU at
//! `NewtonOptions::sparse_threshold` unknowns; these tests pin the
//! contract that the switch changes wall-clock only, never results.
//! Every circuit is solved twice — threshold 1 (sparse forced) and
//! `usize::MAX` (dense forced) — and the solutions must agree to ≤ 1e-9
//! across the whole trajectory, linear and transistor-level circuits
//! alike. A property test additionally checks the sparse factorization
//! against the dense one on random diagonally-dominant MNA-shaped
//! systems of varying bandwidth.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::input_interface::{self, InputInterfaceConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::sparse::TripletMatrix;
use cml_numeric::{DenseMatrix, SparseLu};
use cml_pdk::Pdk018;
use cml_spice::analysis::tran::{self, TranConfig, TranResult};
use cml_spice::analysis::{op, NewtonOptions};
use cml_spice::prelude::*;
use proptest::prelude::*;

fn rc_ladder(n_stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(Vsource::new(
        "V1",
        prev,
        Circuit::GROUND,
        Waveform::step(0.0, 1.0, 10e-12, 5e-12),
    ));
    for i in 0..n_stages {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Resistor::new(&format!("R{i}"), prev, node, 150.0));
        ckt.add(Capacitor::new(
            &format!("C{i}"),
            node,
            Circuit::GROUND,
            40e-15,
        ));
        prev = node;
    }
    ckt
}

fn buffer_circuit() -> (Circuit, DiffPort) {
    let pdk = Pdk018::typical();
    let cfg = CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        1.2,
        Some(Waveform::step(1.15, 1.25, 20e-12, 10e-12)),
    );
    cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
    (ckt, output)
}

fn interface_circuit() -> (Circuit, DiffPort) {
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        vcm,
        Some(Waveform::step(vcm - 0.05, vcm + 0.05, 30e-12, 10e-12)),
    );
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, output, vdd);
    (ckt, output)
}

fn tran_cfg(t_stop: f64, dt: f64, threshold: usize) -> TranConfig {
    let mut cfg = TranConfig::new(t_stop, dt);
    cfg.newton.sparse_threshold = threshold;
    cfg
}

/// Worst node-voltage difference between two runs across every unknown
/// node of `ckt` and every accepted time point.
fn worst_diff(ckt: &Circuit, a: &TranResult, b: &TranResult) -> f64 {
    assert_eq!(a.times(), b.times(), "time grids must match");
    let mut worst = 0.0f64;
    for raw in 1..=ckt.num_unknown_nodes() {
        let node = NodeId::from_raw(raw as u32);
        let va = a.voltage(node);
        let vb = b.voltage(node);
        for (x, y) in va.iter().zip(&vb) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

#[test]
fn op_matches_on_seed_circuits() {
    let circuits: Vec<(&str, Circuit)> = vec![
        ("rc_ladder", rc_ladder(20)),
        ("cml_buffer", buffer_circuit().0),
        ("input_interface", interface_circuit().0),
    ];
    for (name, ckt) in &circuits {
        let dense_opts = NewtonOptions {
            sparse_threshold: usize::MAX,
            ..NewtonOptions::default()
        };
        let sparse_opts = NewtonOptions {
            sparse_threshold: 1,
            ..NewtonOptions::default()
        };
        let dense = op::solve_with(ckt, &dense_opts, None).expect("dense op");
        let sparse = op::solve_with(ckt, &sparse_opts, None).expect("sparse op");
        let worst = dense
            .solution()
            .iter()
            .zip(sparse.solution())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(worst <= 1e-9, "{name}: op sparse/dense diff {worst:.3e}");
    }
}

#[test]
fn tran_matches_on_linear_ladder() {
    let ckt = rc_ladder(20);
    for base in [
        TranConfig::new(2e-9, 4e-12),
        TranConfig::new(2e-9, 4e-12).backward_euler(),
        TranConfig::new(2e-9, 10e-12).adaptive(),
    ] {
        let mut dense_cfg = base.clone();
        dense_cfg.newton.sparse_threshold = usize::MAX;
        let mut sparse_cfg = base.clone();
        sparse_cfg.newton.sparse_threshold = 1;
        let dense = tran::run(&ckt, &dense_cfg).expect("dense tran");
        let sparse = tran::run(&ckt, &sparse_cfg).expect("sparse tran");
        let worst = worst_diff(&ckt, &dense, &sparse);
        assert!(worst <= 1e-9, "ladder sparse/dense diff {worst:.3e}");
    }
}

#[test]
fn tran_matches_on_transistor_cells() {
    for (name, (ckt, _out), t_stop) in [
        ("cml_buffer", buffer_circuit(), 0.4e-9),
        ("input_interface", interface_circuit(), 0.2e-9),
    ] {
        let dense = tran::run(&ckt, &tran_cfg(t_stop, 2e-12, usize::MAX)).expect("dense tran");
        let sparse = tran::run(&ckt, &tran_cfg(t_stop, 2e-12, 1)).expect("sparse tran");
        let worst = worst_diff(&ckt, &dense, &sparse);
        assert!(worst <= 1e-9, "{name}: sparse/dense diff {worst:.3e}");
    }
}

proptest! {
    /// Sparse LU agrees with dense LU on random diagonally-dominant
    /// MNA-shaped systems (a band plus an arrow of couplings into the
    /// last rows, the structure branch currents create).
    #[test]
    fn sparse_lu_matches_dense_lu(
        seed in any::<u64>(),
        n in 3usize..40,
        band in 1usize..5,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut dense = DenseMatrix::zeros(n, n);
        let mut trips = TripletMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                let coupled = r.abs_diff(c) <= band || r >= n - 2 || c >= n - 2;
                if !coupled {
                    continue;
                }
                let mut v = next();
                if r == c {
                    v += 2.0 * (band as f64 + 2.0);
                }
                dense[(r, c)] = v;
                trips.add(r, c, v);
            }
        }
        let csr = trips.to_csr().expect("in-bounds");
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x_dense = dense.solve(&b).expect("diag dominant");
        let mut lu = SparseLu::new(&csr).expect("square");
        lu.factor(&csr).expect("diag dominant");
        let x_sparse = lu.solve(&b).expect("factored");
        for (a, s) in x_dense.iter().zip(&x_sparse) {
            prop_assert!((a - s).abs() < 1e-9, "dense {a} vs sparse {s}");
        }
    }
}
