//! Exports the paper's circuits as SPICE netlists — handy for
//! cross-checking the generated topologies against an external
//! simulator, or just for reading what the generators build.
//!
//! Run with: `cargo run --release --example netlist_export [block]`
//! where block is one of: buffer (default), equalizer, bmvr, la.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::{
    add_diff_drive, add_supply, bmvr, cml_buffer, equalizer, limiting_amp, DiffPort,
};
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "buffer".into());
    let pdk = Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);

    match which.as_str() {
        "buffer" => {
            let cfg = cml_buffer::CmlBufferConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                cml_buffer::output_common_mode(&cfg),
                None,
            );
            cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
        }
        "equalizer" => {
            let cfg = equalizer::EqualizerConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
            equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
        }
        "bmvr" => {
            bmvr::build(
                &mut ckt,
                &pdk,
                &bmvr::BmvrConfig::paper_default(),
                "bmvr",
                vdd,
            );
        }
        "la" => {
            let cfg = limiting_amp::LimitingAmpConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                limiting_amp::common_mode(&cfg),
                None,
            );
            limiting_amp::build(&mut ckt, &pdk, &cfg, "la", input, output, vdd);
        }
        other => {
            eprintln!("unknown block '{other}' (use buffer | equalizer | bmvr | la)");
            std::process::exit(1);
        }
    }

    println!("{}", ckt.netlist());
    eprintln!(
        "* {} elements, {} nodes",
        ckt.num_elements(),
        ckt.num_nodes()
    );
}
