//! Quickstart: simulate one wide-band CML buffer at the transistor level
//! and measure what the paper's techniques buy you.
//!
//! Run with: `cargo run --release --example quickstart`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_pdk::Pdk018;
use cml_sig::Bode;
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;

fn buffer_bode(cfg: &CmlBufferConfig, tel: &Telemetry) -> Result<Bode, cml_spice::SpiceError> {
    let pdk = Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cml_buffer::output_common_mode(cfg),
        None,
    );
    cml_buffer::build(&mut ckt, &pdk, cfg, "buf", input, output, vdd);
    // Next-stage load.
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));

    let freqs = logspace(1e7, 60e9, 100);
    let ac = cml_spice::analysis::ac::sweep_auto_traced(
        &ckt,
        &freqs,
        &cml_spice::analysis::NewtonOptions::default(),
        cml_runner::threads(None),
        tel,
    )?;
    Ok(Bode::new(freqs, ac.differential_trace(output.p, output.n)))
}

fn main() -> Result<(), cml_spice::SpiceError> {
    // `CML_TELEMETRY=json:report.json` (or `trace:trace.json`) records
    // what the solver did underneath the figures; unset, this is free.
    let tel = Telemetry::from_env();
    println!("wide-band CML buffer, 0.18 um process, 1 mA / 250 ohm design point\n");
    for (name, cfg) in [
        ("plain CML buffer", CmlBufferConfig::plain()),
        ("paper's wide-band buffer", CmlBufferConfig::paper_default()),
    ] {
        let bode = buffer_bode(&cfg, &tel)?;
        println!(
            "{name:<26} gain {:+5.2} dB | -3 dB bandwidth {:5.2} GHz | peaking {:4.2} dB",
            bode.dc_gain_db(),
            bode.bandwidth_3db().map_or(f64::NAN, |b| b / 1e9),
            bode.peaking_db()
        );
    }
    println!(
        "\nThe active-inductor load, active feedback and negative Miller\n\
         capacitance together push the same current budget past 10 Gb/s —\n\
         the central claim of the paper."
    );
    if tel.is_enabled() {
        let c = &tel.report().counters;
        println!(
            "\ntelemetry: {} AC points ({:.0} % sparse), {} Newton solves, \
             factorization reuse {:.0} %",
            c.ac_points,
            c.ac_sparse_fraction() * 1e2,
            c.newton_solves,
            c.reuse_hit_rate() * 1e2
        );
        for p in tel.flush().expect("flush telemetry sinks") {
            println!("wrote {}", p.display());
        }
    }
    Ok(())
}
