//! Process/voltage/temperature robustness: the BMVR bias and a CML
//! buffer across all five corners and the industrial temperature range —
//! the "wide temperature range" robustness claim of §II.A.
//!
//! Run with: `cargo run --release --example corner_sweep`
//!
//! The 15 corner/temperature points are independent SPICE problems, so
//! they fan out across worker threads (`--threads N` or `CML_THREADS`;
//! defaults to the machine's parallelism) with deterministic,
//! order-stable output.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::bmvr::{solve_vref, BmvrConfig};
use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_pdk::{Corner, Pdk018};
use cml_sig::Bode;
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;

fn buffer_bw(pdk: &Pdk018, tel: &Telemetry) -> f64 {
    let cfg = CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cml_buffer::output_common_mode(&cfg),
        None,
    );
    cml_buffer::build(&mut ckt, pdk, &cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));
    let freqs = logspace(1e8, 60e9, 60);
    // This runs inside a par_map corner worker: keep the inner AC sweep
    // serial so the outer fan-out owns all the parallelism.
    let ac = cml_spice::analysis::ac::sweep_auto_traced(
        &ckt,
        &freqs,
        &cml_spice::analysis::NewtonOptions::default(),
        1,
        tel,
    )
    .expect("buffer ac");
    Bode::new(freqs, ac.differential_trace(output.p, output.n))
        .bandwidth_3db()
        .unwrap_or(0.0)
}

fn main() {
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    // `CML_TELEMETRY=json:...` aggregates solver counters across every
    // corner worker; the per-worker buffers merge deterministically.
    let tel = Telemetry::from_env();
    let bmvr = BmvrConfig::paper_default();
    println!(
        "{:>7} {:>7} | {:>10} | {:>14}   ({threads} threads)",
        "corner", "T degC", "Vref (V)", "buffer BW GHz"
    );
    let points: Vec<(Corner, f64)> = Corner::ALL
        .iter()
        .flat_map(|&c| [-40.0, 27.0, 125.0].map(|t| (c, t)))
        .collect();
    let probe = tel.probe();
    let (rows, per_worker) = cml_runner::par_map_stats(threads, &points, |i, &(corner, temp)| {
        let wtel = probe.fork(i as u32 + 1);
        let pdk = Pdk018::new(corner, temp);
        let vref = solve_vref(&pdk, &bmvr, 1.8).expect("bmvr op");
        let bw = buffer_bw(&pdk, &wtel);
        ((vref, bw), wtel.into_parts())
    });
    tel.note_worker_items(&per_worker);
    let rows: Vec<(f64, f64)> = rows
        .into_iter()
        .map(|(row, parts)| {
            tel.absorb(parts);
            row
        })
        .collect();
    for ((corner, temp), (vref, bw)) in points.iter().zip(&rows) {
        println!(
            "{:>7} {temp:>7.0} | {vref:>10.4} | {:>14.2}",
            corner.name(),
            bw / 1e9
        );
    }
    println!(
        "\nThe BMVR holds its reference within a few tens of mV and the\n\
         buffer keeps multi-GHz bandwidth at every corner — the bias\n\
         robustness the paper attributes to the band-gap reference."
    );
    if tel.is_enabled() {
        let report = tel.report();
        let c = &report.counters;
        println!(
            "\ntelemetry: {} AC points across {} corner workers, \
             {} Newton solves, reuse {:.0} %",
            c.ac_points,
            report.worker_items.len(),
            c.newton_solves,
            c.reuse_hit_rate() * 1e2
        );
        for p in tel.flush().expect("flush telemetry sinks") {
            println!("wrote {}", p.display());
        }
    }
}
