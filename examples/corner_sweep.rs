//! Process/voltage/temperature robustness: the BMVR bias and a CML
//! buffer across all five corners and the industrial temperature range —
//! the "wide temperature range" robustness claim of §II.A.
//!
//! Run with: `cargo run --release --example corner_sweep`
//!
//! The 15 corner/temperature points are independent SPICE problems, so
//! they fan out across worker threads (`--threads N` or `CML_THREADS`;
//! defaults to the machine's parallelism) with deterministic,
//! order-stable output.

use cml_core::cells::bmvr::{solve_vref, BmvrConfig};
use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_pdk::{Corner, Pdk018};
use cml_sig::Bode;
use cml_spice::prelude::*;

fn buffer_bw(pdk: &Pdk018) -> f64 {
    let cfg = CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cml_buffer::output_common_mode(&cfg),
        None,
    );
    cml_buffer::build(&mut ckt, pdk, &cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 30e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 30e-15));
    let freqs = logspace(1e8, 60e9, 60);
    // This runs inside a par_map corner worker: keep the inner AC sweep
    // serial so the outer fan-out owns all the parallelism.
    let ac = cml_spice::analysis::ac::sweep_auto_with(
        &ckt,
        &freqs,
        &cml_spice::analysis::NewtonOptions::default(),
        1,
    )
    .expect("buffer ac");
    Bode::new(freqs, ac.differential_trace(output.p, output.n))
        .bandwidth_3db()
        .unwrap_or(0.0)
}

fn main() {
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    let bmvr = BmvrConfig::paper_default();
    println!(
        "{:>7} {:>7} | {:>10} | {:>14}   ({threads} threads)",
        "corner", "T degC", "Vref (V)", "buffer BW GHz"
    );
    let points: Vec<(Corner, f64)> = Corner::ALL
        .iter()
        .flat_map(|&c| [-40.0, 27.0, 125.0].map(|t| (c, t)))
        .collect();
    let rows = cml_runner::par_map(threads, &points, |_, &(corner, temp)| {
        let pdk = Pdk018::new(corner, temp);
        let vref = solve_vref(&pdk, &bmvr, 1.8).expect("bmvr op");
        (vref, buffer_bw(&pdk))
    });
    for ((corner, temp), (vref, bw)) in points.iter().zip(&rows) {
        println!(
            "{:>7} {temp:>7.0} | {vref:>10.4} | {:>14.2}",
            corner.name(),
            bw / 1e9
        );
    }
    println!(
        "\nThe BMVR holds its reference within a few tens of mV and the\n\
         buffer keeps multi-GHz bandwidth at every corner — the bias\n\
         robustness the paper attributes to the band-gap reference."
    );
}
