//! Equalizer adaptation demo: sweep the control voltage V1 against a
//! fixed channel and pick the setting that maximizes eye width — the
//! manual version of what an on-chip ISI monitor (paper ref. [6]) does.
//!
//! Run with: `cargo run --release --example equalizer_tuning`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_channel::Backplane;
use cml_core::behav::{Block, Equalizer, InputInterface, OutputInterface};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::EyeDiagram;

const UI: f64 = 100e-12;

fn main() {
    let channel = Backplane::fr4_trace(0.6);
    let bits: Vec<bool> = Prbs::prbs7().take(381).collect();
    let data = NrzConfig::new(UI, 0.5).render(&bits);
    let received = channel.apply(&OutputInterface::paper_default().process(&data), true);

    println!(
        "channel: 0.6 m FR-4, {:.1} dB @ 5 GHz; sweeping equalizer V1\n",
        channel.attenuation_db(5e9)
    );
    println!(
        "{:>7} | {:>7} | {:>10} {:>12} {:>12}",
        "V1 (V)", "boost", "width (ps)", "height (mV)", "rms jit (ps)"
    );

    let mut best: Option<(f64, f64)> = None;
    for step in 0..=10 {
        let v1 = 1.8 - 0.1 * step as f64;
        let mut rx = InputInterface::paper_default();
        rx.equalizer = Equalizer::paper_default().with_control_voltage(v1);
        let out = rx.process(&received);
        let m = EyeDiagram::fold(&out.skip_initial(3e-9), UI).metrics();
        println!(
            "{v1:>7.2} | {:>7.2} | {:>10.1} {:>12.1} {:>12.1}",
            rx.equalizer.boost,
            m.width * 1e12,
            m.height * 1e3,
            m.rms_jitter * 1e12
        );
        if best.is_none_or(|(_, w)| m.width > w) {
            best = Some((v1, m.width));
        }
    }
    if let Some((v1, width)) = best {
        println!(
            "\nbest setting: V1 = {v1:.2} V (eye width {:.1} ps) — \
             the paper tunes this knob per backplane.",
            width * 1e12
        );
    }
}
