//! A complete 10 Gb/s backplane link: TX output interface → FR-4 trace →
//! RX input interface, with an ASCII eye at each tap point.
//!
//! Run with: `cargo run --release --example backplane_link -- [trace_m]`
//! (default trace length 0.5 m).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_channel::Backplane;
use cml_core::behav::{Block, InputInterface, OutputInterface};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::{EyeDiagram, UniformWave};

const UI: f64 = 100e-12;

fn eye_report(label: &str, wave: &UniformWave) {
    let eye = EyeDiagram::fold(&wave.skip_initial(3e-9), UI);
    let m = eye.metrics();
    println!(
        "\n--- {label}: height {:.1} mV, width {:.1} ps, rms jitter {:.1} ps",
        m.height * 1e3,
        m.width * 1e12,
        m.rms_jitter * 1e12
    );
    println!("{}", eye.render_ascii(12, 56));
}

fn main() {
    let length: f64 = match std::env::args().nth(1) {
        None => 0.5,
        Some(arg) => arg.parse().unwrap_or_else(|_| {
            eprintln!("error: trace length '{arg}' is not a number (meters)");
            std::process::exit(2);
        }),
    };
    let channel = Backplane::fr4_trace(length);
    println!(
        "10 Gb/s PRBS-7 over a {length} m FR-4 trace \
         ({:.1} dB loss at the 5 GHz Nyquist)",
        channel.attenuation_db(5e9)
    );

    let bits: Vec<bool> = Prbs::prbs7().take(381).collect();
    let data = NrzConfig::new(UI, 0.5).render(&bits);

    let tx_out = OutputInterface::paper_default().process(&data);
    eye_report("transmitter output (with voltage peaking)", &tx_out);

    let rx_in = channel.apply(&tx_out, true);
    eye_report("receiver input (after the backplane)", &rx_in);

    let mut rx = InputInterface::paper_default();
    rx.equalizer.boost = 1.5; // tuned to this channel
    let rx_out = rx.process(&rx_in);
    eye_report("receiver output (equalizer + limiting amplifier)", &rx_out);
}
