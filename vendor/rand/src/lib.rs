//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen`, `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched. This shim keeps the same API shape and the same
//! determinism guarantees (identical seed → identical stream), but the
//! stream itself differs from upstream `rand` (xoshiro256++ here versus
//! ChaCha12 upstream). Nothing in the workspace depends on the exact
//! stream values, only on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator seedable from a `u64` (API-compatible subset
/// of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // irrelevant for simulation workloads.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = low + (high - low) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            high - (high - low) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// High-level sampling helpers (API-compatible subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range, e.g. `rng.gen_range(0.0..1.0)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic per seed, 2^256 − 1 period.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(1u32..128);
            assert!((1..128).contains(&v));
        }
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
