//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the same call surface (`Criterion`, `bench_function`,
//! `benchmark_group`/`bench_with_input`/`finish`, `BenchmarkId`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock measurement loop instead of criterion's statistical engine:
//! each benchmark warms up briefly, then times batches until a sampling
//! window elapses and reports the mean iteration time.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    warmup: Duration,
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(50),
            window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            window: self.window,
            result: None,
        };
        f(&mut b);
        report(name, b.result);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warmup: self.parent.warmup,
            window: self.parent.window,
            result: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.result);
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim has
    /// nothing to flush but keeps the call site valid).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter's `Display` form.
    #[must_use]
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size aiming for ~1ms per batch so Instant
        // overhead stays negligible even for nanosecond routines.
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 20);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let sample_start = Instant::now();
        while sample_start.elapsed() < self.window {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.result = Some(total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX));
    }
}

fn report(name: &str, result: Option<Duration>) {
    match result {
        Some(d) => println!("bench {name:<40} {d:>12.3?}/iter"),
        None => println!("bench {name:<40} (no measurement)"),
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness=false bench targets with
            // `--test` style args; keep startup cheap there by honoring
            // the conventional `--test` flag as a no-op quick exit.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion {
            warmup: Duration::from_millis(2),
            window: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1u64 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion {
            warmup: Duration::from_millis(2),
            window: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        let n = 4usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
