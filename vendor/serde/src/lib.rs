//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `serde`
//! cannot be fetched. This shim keeps the derive-and-`serde_json`
//! workflow working for the plain data structs this repository
//! serializes (named-field structs of numbers, strings and vectors):
//!
//! * `#[derive(serde::Serialize, serde::Deserialize)]` (via the sibling
//!   `serde_derive` proc-macro crate, re-exported here like upstream),
//! * `serde_json::to_string` / `to_string_pretty` / `from_str`.
//!
//! Instead of upstream's visitor architecture, both traits go through a
//! small JSON-shaped [`Value`] tree — entirely sufficient for the data
//! rows and metric structs exported by the bench harness.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between the derive
/// impls and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always carried as `f64`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Value {
    /// Looks up a field of an object by name.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    /// What went wrong.
    pub message: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds from the interchange tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_precision_loss, clippy::cast_lossless)]
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_num!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Only used when deserializing structs that carry static labels
        // (e.g. power-budget item names); leaking is the only way to
        // manufacture a 'static str and is bounded by test usage.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Num(1.0)).is_err());
        assert!(Vec::<f64>::from_value(&Value::Num(1.0)).is_err());
    }

    #[test]
    fn object_get() {
        let obj = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(obj.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(obj.get("b"), None);
    }
}
