//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for structs with named fields, targeting the
//! vendored `serde` shim's `Value`-tree traits.
//!
//! Written against the bare `proc_macro` API (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly what this workspace derives:
//! non-generic structs with named fields whose types implement the shim's
//! `Serialize`/`Deserialize` traits.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Minimal struct shape extracted from the derive input.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parses `struct Name { field: Ty, .. }` out of a derive input stream,
/// skipping attributes, visibility and doc comments.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    // Skip leading attributes (`#[...]`) and visibility.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip optional `pub(...)` restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, found {other:?}")),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err("vendored serde_derive supports only structs".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or("no struct found in derive input")?;

    // Find the brace-delimited field group (skipping generics would go
    // here, but the workspace derives only non-generic structs).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("vendored serde_derive supports only named-field structs".into())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("vendored serde_derive does not support generic structs".into())
            }
            Some(_) => continue,
            None => return Err("struct has no body".into()),
        }
    };

    // Fields: attribute* visibility? ident `:` type-tokens (`,` | end).
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => return Err(format!("expected field name, found {other}")),
            None => break,
        }
        // Consume up to and including the next top-level comma. Depth
        // tracking handles commas inside generic types like `Vec<(A, B)>`;
        // angle brackets never nest across a top-level comma in practice.
        let mut angle_depth = 0i32;
        for tt in toks.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth <= 0 => break,
                _ => {}
            }
        }
    }
    Ok(StructShape { name, fields })
}

/// Derives the vendored shim's `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => {
            return format!("compile_error!(\"derive(Serialize): {e}\");")
                .parse()
                .expect("error tokens")
        }
    };
    let entries: Vec<String> = shape
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Obj(vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
        entries = entries.join("\n")
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the vendored shim's `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => {
            return format!("compile_error!(\"derive(Deserialize): {e}\");")
                .parse()
                .expect("error tokens")
        }
    };
    let entries: Vec<String> = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(v.get(\"{f}\")\
                     .ok_or_else(|| serde::Error::msg(\"missing field `{f}`\"))?)?,"
            )
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n{entries}\n}})\n\
             }}\n\
         }}",
        name = shape.name,
        entries = entries.join("\n")
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
