//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty` and `from_str`, over the vendored
//! `serde` shim's `Value` tree.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the shim's tree-backed impls; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Never fails for the shim's tree-backed impls.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values print without a fraction, like upstream.
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; upstream errors, the shim emits null.
        out.push_str("null");
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_close) = match indent {
        Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(from_str::<f64>("2.5e-3").unwrap(), 2.5e-3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.0f64, -2.5, 3e9];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
    }

    #[test]
    fn parses_nested_objects() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": "x", "d": null}}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]))
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Str("x".into()))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Obj(vec![
            ("x".into(), Value::Num(1.0)),
            ("y".into(), Value::Arr(vec![Value::Num(2.0)])),
        ]);
        let mut out = String::new();
        super::write_value(&v, &mut out, Some(2), 0);
        assert!(out.contains("\n  \"x\": 1"));
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn unicode_and_escapes_roundtrip() {
        let s = "héllo \"wörld\" \t µ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
