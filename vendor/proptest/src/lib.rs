//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the test-authoring surface intact —
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, `any::<T>()`,
//! numeric range strategies, `prop::collection::vec`, `prop_assert!` /
//! `prop_assert_eq!` — backed by a deterministic seeded runner (256 cases
//! per test by default, overridable with `PROPTEST_CASES`).
//!
//! Differences from upstream, by design:
//! * no shrinking — failures report the raw generated inputs instead;
//! * `.proptest-regressions` seed files are not replayed (the recorded
//!   seeds encode upstream's internal RNG state). Persisted failure
//!   cases should be pinned as explicit `#[test]`s next to the property,
//!   which is what this repository does.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the runner.
pub type TestRng = StdRng;

/// Error raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); this shim generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi {
                    lo
                } else {
                    // Treat as half-open plus an occasional exact endpoint,
                    // so the inclusive bound is actually reachable.
                    if rng.gen_bool(1.0 / 64.0) {
                        hi
                    } else {
                        rng.gen_range(lo..hi)
                    }
                }
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.gen_range(-300.0..300.0);
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// A constant strategy (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies and the `prop::` namespace used by `prelude`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can describe a collection size.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (inclusive) size bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        Strategy, TestCaseError,
    };
}

/// Number of cases each property runs (default 256, `PROPTEST_CASES`
/// overrides).
#[must_use]
pub fn num_cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

/// Runs `case` for [`num_cases`] deterministic seeds derived from the
/// test's name. Called by the `proptest!` macro expansion; not public API
/// upstream, but harmless to expose here.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// reporting the generated inputs.
pub fn run_cases<F>(test_name: &str, case: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test base seed: FNV-1a over the test name.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case_idx in 0..num_cases() {
        let mut rng = TestRng::seed_from_u64(base ^ case_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest case {case_idx}/{} of `{test_name}` failed: {}",
                num_cases(),
                e.message
            ),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!(
                    "proptest case {case_idx}/{} of `{test_name}` panicked: {msg}",
                    num_cases()
                )
            }
        }
    }
}

/// Declares property tests. Mirrors upstream's surface syntax:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Strategies may close over locals in upstream proptest;
                // here they are rebuilt per case, which is equivalent for
                // the pure-expression strategies this workspace uses.
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    let mut described = String::new();
                    $(described.push_str(&format!(
                        concat!(stringify!($arg), " = {:?}; "), &$arg));)+
                    let body_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    body_result.map_err(|e| $crate::TestCaseError::fail(
                        format!("{} [inputs: {}]", e.message, described)))
                });
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Rejects the current case (treated as a skip, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0.0f64..1.0, 4..64)) {
            prop_assert!(v.len() >= 4 && v.len() < 64);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn inclusive_vec_size_is_exact(v in prop::collection::vec(-1e3f64..1e3, 8..=8)) {
            prop_assert_eq!(v.len(), 8);
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            // Smoke: the value must be usable as a seed.
            let _ = seed | 1;
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        let collect = |out: &mut Vec<u64>| {
            let mut base: u64 = 0xcbf2_9ce4_8422_2325;
            for b in "stability".bytes() {
                base ^= u64::from(b);
                base = base.wrapping_mul(0x0000_0100_0000_01B3);
            }
            use rand::{RngCore, SeedableRng};
            let mut rng = crate::TestRng::seed_from_u64(base);
            for _ in 0..4 {
                out.push(rng.next_u64());
            }
        };
        collect(&mut first);
        let mut second = Vec::new();
        collect(&mut second);
        assert_eq!(first, second);
    }
}
