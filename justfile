# Development task runner. Same gates as .github/workflows/ci.yml.

# Run every CI gate locally.
ci: fmt-check clippy test lint-circuits analyze-circuits bench-smoke

# Formatting gate.
fmt-check:
    cargo fmt --all -- --check

# Reformat in place.
fmt:
    cargo fmt --all

# Lint gate (warnings are errors).
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 verification: release build + full test suite.
test:
    cargo build --release
    cargo test -q

# Regenerate the PR performance benchmark artifact.
bench-pr1:
    cargo run --release -p cml-bench --bin bench_pr1

# Regenerate the sparse-solver / adaptive-stepping benchmark artifact.
bench-pr2:
    cargo run --release -p cml-bench --bin bench_pr2

# Regenerate the lint-overhead benchmark artifact.
bench-pr3:
    cargo run --release -p cml-bench --bin bench_pr3

# Regenerate the sparse complex AC / parallel sweep benchmark artifact.
bench-pr4:
    cargo run --release -p cml-bench --bin bench_pr4

# Regenerate the telemetry overhead/determinism benchmark artifact.
bench-pr5:
    cargo run --release -p cml-bench --bin bench_pr5

# Regenerate the streaming-sink benchmark artifact (million-bit PRBS-31
# transistor-level eye at flat memory; ~2 min).
bench-pr6:
    cargo run --release -p cml-bench --bin bench_pr6

# Regenerate the batched Monte-Carlo yield benchmark artifact
# (12k-trial transistor throughput + 10M-trial behavioral sweep).
bench-pr7:
    cargo run --release -p cml-bench --bin bench_pr7

# Static netlist DRC over every generated circuit block (fails on any
# error-level diagnostic; `cml-lint --codes` documents the code table).
lint-circuits:
    cargo run --release -p cml-lint --bin cml-lint -- --builtin all

# Abstract-interpretation static analysis over every generated circuit
# block: interval operating-point bounds, conditioning prediction and
# the stiffness spectrum (fails on any error-level finding;
# `cml-lint analyze --codes` documents the A-code table).
analyze-circuits:
    cargo run --release -p cml-lint --bin cml-lint -- analyze --builtin all

# Regenerate the static-analyzer benchmark artifact (analyzer cost vs a
# dense transient, warm-start Newton savings, closed-loop soundness).
bench-pr8:
    cargo run --release -p cml-bench --bin bench_pr8

# Regenerate the topology-artifact-cache benchmark artifact (cold vs
# warm vs disk-rehydrated repeated-topology workload; asserts >= 1.3x
# warm speedup with bit-identical results across all three legs).
bench-pr9:
    cargo run --release -p cml-bench --bin bench_pr9

# Regenerate the observability benchmark artifact (event-log overhead
# on the PRBS-7 eye vs the < 2 % coarse budget, flight-dump cost on a
# forced divergence, bundle round-trip + bit-exact forensics replay).
bench-pr10:
    cargo run --release -p cml-bench --bin bench_pr10

# Quick benchmark sanity gate (tiny workloads; asserts the sparse and
# dense solvers agree to <= 1e-9, the adaptive eye stays honest, the
# parallel AC sweep is bit-identical to the serial one, telemetry
# counters are thread-invariant with a schema-valid json sink, the
# streaming eye matches the dense fold under a flat peak-memory budget,
# and the batched yield engine beats scalar >= 3x while agreeing with
# it to <= 1e-9 at fixed thread-count-independent estimates).
# The bench_pr8 leg closes the analyzer's soundness loop: every
# builtin's converged op must land inside its predicted interval bounds
# with zero prediction-violation findings. The bench_pr9 leg gates the
# topology artifact cache: warm must beat cold with bit-identical
# solutions and zero validation failures. The bench_pr10 leg dumps a
# flight bundle on a forced divergence, round-trips it, replays it
# bit-exactly, and renders the prometheus exposition; `cml-lint
# forensics` then re-validates the preserved bundle through the CLI.
bench-smoke:
    cargo run --release -p cml-bench --bin bench_pr2 -- --smoke
    cargo run --release -p cml-bench --bin bench_pr4 -- --smoke
    CML_TELEMETRY=json:/tmp/cml_telemetry_smoke.json cargo run --release -p cml-bench --bin bench_pr5 -- --smoke
    cargo run --release -p cml-bench --bin bench_pr6 -- --smoke
    cargo run --release -p cml-bench --bin bench_pr7 -- --smoke
    cargo run --release -p cml-bench --bin bench_pr8 -- --smoke
    cargo run --release -p cml-bench --bin bench_pr9 -- --smoke
    CML_TELEMETRY=prom:/tmp/cml_telemetry_smoke.prom cargo run --release -p cml-bench --bin bench_pr10 -- --smoke
    cargo run --release -p cml-lint --bin cml-lint -- forensics BENCH_pr10.cmlf --replay
