# Development task runner. Same gates as .github/workflows/ci.yml.

# Run every CI gate locally.
ci: fmt-check clippy test

# Formatting gate.
fmt-check:
    cargo fmt --all -- --check

# Reformat in place.
fmt:
    cargo fmt --all

# Lint gate (warnings are errors).
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 verification: release build + full test suite.
test:
    cargo build --release
    cargo test -q

# Regenerate the PR performance benchmark artifact.
bench-pr1:
    cargo run --release -p cml-bench --bin bench_pr1
