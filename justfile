# Development task runner. Same gates as .github/workflows/ci.yml.

# Run every CI gate locally.
ci: fmt-check clippy test bench-smoke

# Formatting gate.
fmt-check:
    cargo fmt --all -- --check

# Reformat in place.
fmt:
    cargo fmt --all

# Lint gate (warnings are errors).
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 verification: release build + full test suite.
test:
    cargo build --release
    cargo test -q

# Regenerate the PR performance benchmark artifact.
bench-pr1:
    cargo run --release -p cml-bench --bin bench_pr1

# Regenerate the sparse-solver / adaptive-stepping benchmark artifact.
bench-pr2:
    cargo run --release -p cml-bench --bin bench_pr2

# Quick benchmark sanity gate (tiny workload; asserts the sparse and
# dense solvers agree to <= 1e-9 and the adaptive eye stays honest).
bench-smoke:
    cargo run --release -p cml-bench --bin bench_pr2 -- --smoke
