//! Structured solver event log: typed, timestamped records of the
//! discrete things that *happen* during a solve (a Newton iteration's
//! residual, an LTE rejection, a pivot death, a cache rejection, a lint
//! rejection, a silent degradation), kept in a bounded per-handle ring
//! buffer.
//!
//! The counters in [`crate::Counters`] say *how much*; the event log
//! says *what happened and in what order* — the record the flight
//! recorder (`cml_spice::flight`) bundles when a solve fails. Three
//! properties carry over from the counter design:
//!
//! 1. **Zero cost when disabled.** [`crate::Telemetry::event`] takes a
//!    closure, so a disabled handle never even constructs the
//!    [`EventKind`].
//! 2. **Bounded.** Each recording handle owns one ring of
//!    [`DEFAULT_EVENT_CAPACITY`] slots; overflow drops the *oldest*
//!    events (a flight recorder wants the newest N) and counts the
//!    drops.
//! 3. **Thread-invariant totals.** Events are only emitted at
//!    per-occurrence sites (one per Newton iteration, one per rejected
//!    step…), so the `events_emitted` counter merges thread-invariantly
//!    like every other counter. The ring *contents* after a parallel
//!    merge are the per-worker rings concatenated in absorb (input)
//!    order — deterministic for a deterministic schedule of absorbs,
//!    though the interleaving against wall-clock is not.

use serde::Value;
use std::borrow::Cow;
use std::collections::VecDeque;

/// Default ring capacity per recording handle. Chosen so a bundle keeps
/// roughly the last two failing Newton ladders' worth of iterations
/// while staying trivially small next to the waveform data.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// What happened. Fields use [`Cow`] so recording sites pay only a
/// `&'static str` copy while decoded flight bundles can carry owned
/// strings through the same type.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One damped Newton iteration finished: the worst-case update
    /// magnitude (`max |Δx|`, the convergence residual) and whether the
    /// step clamp engaged. Emitted only in fine mode (it fires once per
    /// iteration, and the coarse-mode overhead budget cannot afford a
    /// clock read at that rate); coarse-mode flight bundles still carry
    /// the per-iteration residuals via the trajectory channel.
    NewtonIteration {
        /// Analysis that ran the solve (`"op"`, `"tran"`, …).
        analysis: Cow<'static, str>,
        /// Iteration index within the solve attempt (0-based).
        iteration: u32,
        /// Worst-case update magnitude `max |Δx|` after this iteration.
        residual: f64,
        /// Whether the per-iteration voltage step clamp engaged.
        damped: bool,
    },
    /// A Newton solve attempt gave up (iteration budget exhausted or a
    /// non-finite iterate).
    NewtonDiverged {
        /// Analysis that ran the solve.
        analysis: Cow<'static, str>,
        /// Iterations spent before giving up.
        iterations: u32,
        /// Final residual (`+inf` for a non-finite iterate).
        residual: f64,
    },
    /// The LTE controller rejected an adaptive transient step.
    LteReject {
        /// Simulation time at the attempted step's start, seconds.
        t: f64,
        /// The rejected step size, seconds.
        dt: f64,
    },
    /// A transient step was retried at half size after Newton failed to
    /// converge.
    NewtonRetry {
        /// Simulation time at the attempted step's start, seconds.
        t: f64,
        /// The step size that failed to converge, seconds.
        dt: f64,
    },
    /// A frozen sparse pivot died numerically and the solve healed by a
    /// full re-pivoting factorization.
    PivotFallback {
        /// Elimination column whose pivot died.
        column: u64,
        /// Magnitude of the dead pivot (NaN when unknown).
        pivot: f64,
    },
    /// An artifact loaded from the cache disk tier was rejected by
    /// validation and healed by a cold derivation.
    CacheRejected {
        /// Artifact kind label (`"pattern"`, `"lint"`, …).
        kind: Cow<'static, str>,
    },
    /// The pre-simulation lint precheck rejected the netlist.
    LintRejected {
        /// Number of error-severity diagnostics.
        errors: u32,
    },
    /// A silent-degradation warning fired (the machine-visible twin of
    /// [`crate::warn_once`]).
    Degradation {
        /// The warning's stable code (`"sparse-dense-fallback"`, …).
        code: Cow<'static, str>,
    },
}

impl EventKind {
    /// Stable snake-case name of the event kind (JSON/prom label).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::NewtonIteration { .. } => "newton_iteration",
            EventKind::NewtonDiverged { .. } => "newton_diverged",
            EventKind::LteReject { .. } => "lte_reject",
            EventKind::NewtonRetry { .. } => "newton_retry",
            EventKind::PivotFallback { .. } => "pivot_fallback",
            EventKind::CacheRejected { .. } => "cache_rejected",
            EventKind::LintRejected { .. } => "lint_rejected",
            EventKind::Degradation { .. } => "degradation",
        }
    }

    /// Renders the kind-specific payload as a JSON object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            vec![("kind".into(), Value::Str(self.name().into()))];
        match self {
            EventKind::NewtonIteration {
                analysis,
                iteration,
                residual,
                damped,
            } => {
                fields.push(("analysis".into(), Value::Str(analysis.to_string())));
                fields.push(("iteration".into(), Value::Num(f64::from(*iteration))));
                fields.push(("residual".into(), Value::Num(*residual)));
                fields.push(("damped".into(), Value::Bool(*damped)));
            }
            EventKind::NewtonDiverged {
                analysis,
                iterations,
                residual,
            } => {
                fields.push(("analysis".into(), Value::Str(analysis.to_string())));
                fields.push(("iterations".into(), Value::Num(f64::from(*iterations))));
                fields.push(("residual".into(), Value::Num(*residual)));
            }
            EventKind::LteReject { t, dt } | EventKind::NewtonRetry { t, dt } => {
                fields.push(("t".into(), Value::Num(*t)));
                fields.push(("dt".into(), Value::Num(*dt)));
            }
            EventKind::PivotFallback { column, pivot } => {
                fields.push(("column".into(), Value::Num(*column as f64)));
                fields.push(("pivot".into(), Value::Num(*pivot)));
            }
            EventKind::CacheRejected { kind } => {
                fields.push(("artifact".into(), Value::Str(kind.to_string())));
            }
            EventKind::LintRejected { errors } => {
                fields.push(("errors".into(), Value::Num(f64::from(*errors))));
            }
            EventKind::Degradation { code } => {
                fields.push(("code".into(), Value::Str(code.to_string())));
            }
        }
        Value::Obj(fields)
    }
}

/// One timestamped event on a handle's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Per-handle emission sequence number (0-based; survives ring
    /// overflow, so gaps at the front reveal how much history was
    /// dropped).
    pub seq: u64,
    /// Nanoseconds since the process epoch (same timeline as spans).
    pub t_ns: u64,
    /// Virtual thread id of the emitting handle (0 = main, workers get
    /// their fork tid).
    pub tid: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event (envelope + kind payload) as a JSON object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let Value::Obj(mut fields) = self.kind.to_value() else {
            unreachable!("EventKind::to_value always renders an object")
        };
        fields.insert(0, ("seq".into(), Value::Num(self.seq as f64)));
        fields.insert(1, ("t_ns".into(), Value::Num(self.t_ns as f64)));
        fields.insert(2, ("tid".into(), Value::Num(f64::from(self.tid))));
        Value::Obj(fields)
    }
}

/// Bounded keep-newest-N event buffer. Single-writer (each recording
/// handle owns exactly one, like its counters), merged on join in
/// absorb order.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, kind: EventKind, t_ns: u64, tid: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            seq,
            t_ns,
            tid,
            kind,
        });
    }

    /// Merges a finished worker ring into this one: events are appended
    /// in the worker's order (callers absorb workers in input order, so
    /// the merged sequence is schedule-independent), then the ring is
    /// re-trimmed to capacity from the front. Worker sequence numbers
    /// are kept as emitted — `(tid, seq)` stays unique.
    pub fn absorb(&mut self, other: EventRing) {
        self.dropped += other.dropped;
        for ev in other.buf {
            if self.buf.len() == self.capacity {
                self.buf.pop_front();
                self.dropped += 1;
            }
            self.buf.push_back(ev);
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted by overflow (including overflow during absorb).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clones the held events into a plain vector, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degradation(code: &'static str) -> EventKind {
        EventKind::Degradation { code: code.into() }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut ring = EventRing::with_capacity(4);
        for i in 0..10u64 {
            ring.push(degradation("x"), i, 0);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn absorb_concatenates_and_retrims() {
        let mut main = EventRing::with_capacity(3);
        main.push(degradation("a"), 0, 0);
        let mut w = EventRing::with_capacity(3);
        for i in 0..3u64 {
            w.push(degradation("b"), 10 + i, 1);
        }
        main.absorb(w);
        assert_eq!(main.len(), 3);
        // One eviction during absorb (1 + 3 events into capacity 3).
        assert_eq!(main.dropped(), 1);
        let tids: Vec<u32> = main.iter().map(|e| e.tid).collect();
        assert_eq!(tids, vec![1, 1, 1]);
    }

    #[test]
    fn event_json_has_envelope_and_payload() {
        let ev = Event {
            seq: 3,
            t_ns: 99,
            tid: 2,
            kind: EventKind::NewtonIteration {
                analysis: "op".into(),
                iteration: 1,
                residual: 0.5,
                damped: true,
            },
        };
        let Value::Obj(fields) = ev.to_value() else {
            panic!("event must render as an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "seq",
                "t_ns",
                "tid",
                "kind",
                "analysis",
                "iteration",
                "residual",
                "damped"
            ]
        );
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            EventKind::LteReject { t: 0.0, dt: 1e-12 }.name(),
            "lte_reject"
        );
        assert_eq!(
            EventKind::PivotFallback {
                column: 4,
                pivot: 0.0
            }
            .name(),
            "pivot_fallback"
        );
    }
}
