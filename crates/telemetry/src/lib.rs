//! Solver telemetry: structured spans, deterministic counters and
//! exportable traces for the SPICE engine.
//!
//! The solver stack (PRs 1–4) layered four interacting fast paths on top
//! of the plain MNA solve: `MatKey` factorization reuse, sparse LU with
//! symbolic replay, LTE-adaptive stepping and the parallel AC refactor
//! replay. Each of them degrades *silently* — a pattern miss quietly
//! rebuilds, a dead pivot quietly falls back to dense — which makes a 6×
//! regression indistinguishable from a 6× win without instrumentation.
//! This crate is the observability layer the analyses thread a
//! [`Telemetry`] handle through; it is the repository's analog of
//! HSPICE's `.option acct` accounting output.
//!
//! Three design rules:
//!
//! 1. **Zero cost when disabled.** [`Telemetry::disabled`] is a `const`
//!    constructor holding no allocation; every recording method is an
//!    inlined branch on an `Option` that is `None`. Analyses always take
//!    a handle, and the untelemetered entry points pass the disabled
//!    one.
//! 2. **Deterministic counters.** Every [`Counters`] field is an event
//!    count (or a histogram of event counts) whose total is invariant
//!    under thread count and scheduling: parallel workers record into
//!    forked buffers ([`Probe::fork`]) that are merged back in input
//!    order ([`Telemetry::absorb`]), and integer addition is
//!    order-independent. Timings and per-worker load live *outside*
//!    [`Counters`] because they are not deterministic.
//! 3. **Four sinks.** An in-memory [`SolverReport`] (typed, queryable
//!    from tests and bench binaries), JSON via `CML_TELEMETRY=json:<path>`,
//!    the Chrome trace-event format (loadable in `chrome://tracing`
//!    and [ui.perfetto.dev](https://ui.perfetto.dev)) via
//!    `CML_TELEMETRY=trace:<path>`, and the Prometheus text exposition
//!    via `CML_TELEMETRY=prom:<path>` (see [`SolverReport::prometheus`]).
//!
//! PR 10 adds the **structured event log** (see [`events`]): typed,
//! timestamped [`Event`] records of discrete solver happenings (Newton
//! iteration residuals, LTE rejections, pivot deaths, cache rejections,
//! lint rejections, degradations) in a bounded keep-newest ring per
//! handle, merged thread-invariantly like counters, plus the
//! per-attempt Newton residual trajectory
//! ([`Telemetry::trajectory_push`]) the flight recorder
//! (`cml_spice::flight`) bundles on failure.
//!
//! # Span granularity
//!
//! Coarse spans (analysis → phase → sweep chunk) are always recorded
//! when enabled; they cost two monotonic clock reads per span and there
//! are at most a few hundred per run. Fine spans and fine timers (one
//! per Newton solve, one per factor/refactor/back-substitute call) would
//! dominate a hot transient loop, so they are gated behind the `fine`
//! flag (`CML_TELEMETRY=...,fine` or [`Telemetry::enabled_fine`]); the
//! default enabled mode stays under the 2 % overhead budget measured by
//! `bench_pr5`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
mod prom;

pub use events::{Event, EventKind, EventRing, DEFAULT_EVENT_CAPACITY};

use serde::Value;
use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable configuring telemetry sinks: a comma-separated
/// list of `json:<path>`, `trace:<path>`, `prom:<path>` and the bare
/// token `fine` (enable per-solve spans and per-factorization timers).
/// Any non-empty value enables recording; `json:`/`trace:`/`prom:`
/// entries additionally select where [`Telemetry::flush`] writes.
pub const TELEMETRY_ENV: &str = "CML_TELEMETRY";

/// Environment variable suppressing the one-line degradation warnings
/// ([`warn_once`]) when set to anything but `0`/`false`/empty.
pub const QUIET_ENV: &str = "CML_QUIET";

/// Process-wide monotonic epoch all span timestamps are relative to, so
/// spans from independently forked handles land on one coherent
/// timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch.
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// Number of buckets in [`Counters::dt_histogram`]: bucket `i` counts
/// accepted steps whose `dt / dt_nominal` ratio rounds to
/// `2^(i - DT_BUCKET_ZERO)`, clamped at the ends. The range covers the
/// LTE controller's full dynamic range (shrink to `dt/4096`, grow past
/// nominal).
pub const DT_BUCKETS: usize = 21;

/// Index of the `ratio = 1` (nominal `dt`) histogram bucket.
pub const DT_BUCKET_ZERO: usize = 12;

/// Deterministic solver event counts.
///
/// Every field is a count whose total is bit-identical for any thread
/// count (see the crate docs); `PartialEq`/`Eq` make that property
/// directly assertable in tests. Timings deliberately live elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Newton solves requested (one per operating point, transient step
    /// attempt ladder, or DC sweep rung).
    pub newton_solves: u64,
    /// Total Newton iterations across all solves.
    pub newton_iterations: u64,
    /// Solve iterations served by a cached LU factorization (the
    /// `MatKey` hit path: no factorization of any kind ran).
    pub factor_reuse_hits: u64,
    /// Full factorizations: dense LU eliminations plus sparse
    /// factorizations that ran the pivot search.
    pub full_factorizations: u64,
    /// Sparse numeric refactorizations that replayed the frozen pivot
    /// order (no DFS, no pivot search).
    pub refactorizations: u64,
    /// Replays aborted by a numerically dead frozen pivot, healed by a
    /// full re-pivoting factorization (DC/transient sparse path).
    pub pivot_fallbacks: u64,
    /// Cached linear-stamp (matrix) reuses across timesteps.
    pub lin_stamp_hits: u64,
    /// Linear-stamp assemblies (cache misses or uncached modes).
    pub lin_stamp_builds: u64,
    /// Sparsity-pattern discoveries (recording stamp passes).
    pub pattern_builds: u64,
    /// `PatternMiss` self-heals: an element stamped outside the cached
    /// pattern and the pattern was rebuilt from the current guess.
    pub pattern_rebuilds: u64,
    /// Permanent dense fallbacks: the sparse path misbehaved twice and
    /// was disabled for the rest of the workspace's life.
    pub dense_fallbacks: u64,
    /// Newton solves routed through the sparse LU path.
    pub sparse_solves: u64,
    /// Newton solves routed through the dense LU path.
    pub dense_solves: u64,
    /// AC frequency points solved (any path).
    pub ac_points: u64,
    /// AC points solved by sparse replay of the frozen reference
    /// factorization.
    pub ac_points_sparse: u64,
    /// AC points that fell back from sparse replay to a per-point dense
    /// solve (pattern miss or pivot death at that frequency).
    pub ac_point_fallbacks: u64,
    /// Accepted transient steps (fixed and adaptive modes).
    pub tran_steps: u64,
    /// Adaptive steps accepted by the LTE controller.
    pub lte_accepts: u64,
    /// Adaptive steps rejected (predictor deviation over band) and
    /// retried at half the step.
    pub lte_rejects: u64,
    /// Step halvings forced by Newton convergence failure.
    pub newton_retries: u64,
    /// Breakpoint landings: steps truncated onto a source-waveform
    /// corner, restarting the predictor history on the far side.
    pub breakpoint_restarts: u64,
    /// Netlist lint prechecks run ahead of analyses.
    pub lint_prechecks: u64,
    /// Waveform chunks streamed through transient sinks.
    pub wave_chunks: u64,
    /// Accepted samples streamed through transient sinks (sum of chunk
    /// lengths; equals `tran_steps + 1` per streamed run).
    pub wave_samples: u64,
    /// Monte-Carlo trials evaluated by the yield / batch workload
    /// layers (batched and scalar alike).
    pub trials_total: u64,
    /// Batched lockstep linear solves: one lane-packed factor+solve
    /// serving up to `LANES` variants at once.
    pub batch_solves: u64,
    /// Lane slots offered across all batched solves
    /// (`batch_solves × LANES`); the occupancy denominator.
    pub batch_lane_slots: u64,
    /// Lane slots actually carrying a live, unconverged variant; the
    /// occupancy numerator (see [`Counters::lane_occupancy`]).
    pub batch_lanes_active: u64,
    /// Variants evicted from a batch (pivot death, divergence, or
    /// non-convergence) and re-solved on the scalar path.
    pub lane_fallbacks: u64,
    /// Static-analysis runs (`cml_spice::analyze` full pass sweeps,
    /// including the interval-only pass behind Newton warm-starts).
    pub analyze_runs: u64,
    /// Closed-loop prediction cross-checks executed: each comparison of
    /// an `AnalysisReport` claim against a converged solution or the
    /// runtime counters.
    pub prediction_checks: u64,
    /// Prediction cross-checks that failed (an A006 prediction-violation
    /// finding was emitted). Must stay 0 on healthy circuits — the
    /// analyzer's soundness contract.
    pub prediction_violations: u64,
    /// Topology-cache artifacts served from the in-memory interner
    /// (tier 1 of `cml-cache`): a symbolic analysis, stamp pattern,
    /// frozen AC factorization, or lint verdict was reused instead of
    /// re-derived. Counted at the single-compute-per-key call sites, so
    /// the total is thread-count-invariant.
    pub cache_hits: u64,
    /// Topology-cache lookups that required a cold derivation (neither
    /// the interner nor the disk tier had a usable artifact).
    pub cache_misses: u64,
    /// Artifacts loaded from the on-disk tier and accepted by both
    /// header and semantic validation.
    pub cache_disk_loads: u64,
    /// Cache loads rejected by validation (corrupt file, version or
    /// dimension mismatch, pivot-order insanity) and healed by a cold
    /// derivation. Nonzero values never change results — only cost.
    pub cache_validation_failures: u64,
    /// Structured events emitted into the event log ([`Telemetry::event`]
    /// and [`Telemetry::degradation`]). Every emission site is a
    /// per-occurrence event (one per Newton iteration, rejection,
    /// fallback…), so the total is thread-invariant; ring overflow drops
    /// stored events but never this count.
    pub events_emitted: u64,
    /// Silent-degradation warnings routed through
    /// [`Telemetry::degradation`]. Unlike the stderr line (once per code
    /// per process, silenced by `CML_QUIET`), this counts every
    /// degradation occurrence and is never silenced.
    pub degradation_warnings: u64,
    /// Flight-recorder bundles written (`cml_spice::flight`): one per
    /// dumped `SpiceError` or on-demand snapshot.
    pub flight_dumps: u64,
    /// Histogram of accepted-step sizes as log₂(dt / dt_nominal),
    /// bucket [`DT_BUCKET_ZERO`] = nominal (see [`DT_BUCKETS`]).
    pub dt_histogram: [u64; DT_BUCKETS],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            newton_solves: 0,
            newton_iterations: 0,
            factor_reuse_hits: 0,
            full_factorizations: 0,
            refactorizations: 0,
            pivot_fallbacks: 0,
            lin_stamp_hits: 0,
            lin_stamp_builds: 0,
            pattern_builds: 0,
            pattern_rebuilds: 0,
            dense_fallbacks: 0,
            sparse_solves: 0,
            dense_solves: 0,
            ac_points: 0,
            ac_points_sparse: 0,
            ac_point_fallbacks: 0,
            tran_steps: 0,
            lte_accepts: 0,
            lte_rejects: 0,
            newton_retries: 0,
            breakpoint_restarts: 0,
            lint_prechecks: 0,
            wave_chunks: 0,
            wave_samples: 0,
            trials_total: 0,
            batch_solves: 0,
            batch_lane_slots: 0,
            batch_lanes_active: 0,
            lane_fallbacks: 0,
            analyze_runs: 0,
            prediction_checks: 0,
            prediction_violations: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_disk_loads: 0,
            cache_validation_failures: 0,
            events_emitted: 0,
            degradation_warnings: 0,
            flight_dumps: 0,
            dt_histogram: [0; DT_BUCKETS],
        }
    }
}

impl Counters {
    /// Adds every count of `other` into `self` (merge-on-join for
    /// forked worker buffers; addition order cannot change the totals).
    pub fn merge(&mut self, other: &Counters) {
        self.newton_solves += other.newton_solves;
        self.newton_iterations += other.newton_iterations;
        self.factor_reuse_hits += other.factor_reuse_hits;
        self.full_factorizations += other.full_factorizations;
        self.refactorizations += other.refactorizations;
        self.pivot_fallbacks += other.pivot_fallbacks;
        self.lin_stamp_hits += other.lin_stamp_hits;
        self.lin_stamp_builds += other.lin_stamp_builds;
        self.pattern_builds += other.pattern_builds;
        self.pattern_rebuilds += other.pattern_rebuilds;
        self.dense_fallbacks += other.dense_fallbacks;
        self.sparse_solves += other.sparse_solves;
        self.dense_solves += other.dense_solves;
        self.ac_points += other.ac_points;
        self.ac_points_sparse += other.ac_points_sparse;
        self.ac_point_fallbacks += other.ac_point_fallbacks;
        self.tran_steps += other.tran_steps;
        self.lte_accepts += other.lte_accepts;
        self.lte_rejects += other.lte_rejects;
        self.newton_retries += other.newton_retries;
        self.breakpoint_restarts += other.breakpoint_restarts;
        self.lint_prechecks += other.lint_prechecks;
        self.wave_chunks += other.wave_chunks;
        self.wave_samples += other.wave_samples;
        self.trials_total += other.trials_total;
        self.batch_solves += other.batch_solves;
        self.batch_lane_slots += other.batch_lane_slots;
        self.batch_lanes_active += other.batch_lanes_active;
        self.lane_fallbacks += other.lane_fallbacks;
        self.analyze_runs += other.analyze_runs;
        self.prediction_checks += other.prediction_checks;
        self.prediction_violations += other.prediction_violations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_disk_loads += other.cache_disk_loads;
        self.cache_validation_failures += other.cache_validation_failures;
        self.events_emitted += other.events_emitted;
        self.degradation_warnings += other.degradation_warnings;
        self.flight_dumps += other.flight_dumps;
        for (a, b) in self.dt_histogram.iter_mut().zip(&other.dt_histogram) {
            *a += b;
        }
    }

    /// Records an accepted step of size `dt` against the nominal `dt`.
    pub fn record_dt(&mut self, dt: f64, dt_nominal: f64) {
        let ratio = dt / dt_nominal;
        let bucket = if ratio.is_finite() && ratio > 0.0 {
            let idx = ratio.log2().round() as i64 + DT_BUCKET_ZERO as i64;
            idx.clamp(0, DT_BUCKETS as i64 - 1) as usize
        } else {
            0
        };
        self.dt_histogram[bucket] += 1;
    }

    /// Fraction of solve iterations served by a cached factorization
    /// (`hits / (hits + factorizations of any kind)`); 0 when nothing
    /// was solved.
    #[must_use]
    pub fn reuse_hit_rate(&self) -> f64 {
        let misses = self.full_factorizations + self.refactorizations;
        let total = self.factor_reuse_hits + misses;
        if total == 0 {
            0.0
        } else {
            self.factor_reuse_hits as f64 / total as f64
        }
    }

    /// LTE rejection ratio: `rejects / (accepts + rejects)`; 0 when the
    /// adaptive controller never ran.
    #[must_use]
    pub fn lte_reject_ratio(&self) -> f64 {
        let total = self.lte_accepts + self.lte_rejects;
        if total == 0 {
            0.0
        } else {
            self.lte_rejects as f64 / total as f64
        }
    }

    /// Fraction of AC points solved by sparse replay; 0 when no AC
    /// points were solved.
    #[must_use]
    pub fn ac_sparse_fraction(&self) -> f64 {
        if self.ac_points == 0 {
            0.0
        } else {
            self.ac_points_sparse as f64 / self.ac_points as f64
        }
    }

    /// Batch lane occupancy: fraction of offered lane slots that
    /// carried a live, unconverged variant
    /// (`batch_lanes_active / batch_lane_slots`); 0 when no batched
    /// solve ran. Low occupancy means batches drain unevenly — variants
    /// converging at very different iteration counts — and the SIMD
    /// width is being wasted on frozen lanes.
    #[must_use]
    pub fn lane_occupancy(&self) -> f64 {
        if self.batch_lane_slots == 0 {
            0.0
        } else {
            self.batch_lanes_active as f64 / self.batch_lane_slots as f64
        }
    }

    /// Fraction of Monte-Carlo trials that fell off the batch onto the
    /// scalar path (`lane_fallbacks / trials_total`); 0 when no trials
    /// ran. A rising fallback rate silently erodes the batched speedup.
    #[must_use]
    pub fn lane_fallback_rate(&self) -> f64 {
        if self.trials_total == 0 {
            0.0
        } else {
            self.lane_fallbacks as f64 / self.trials_total as f64
        }
    }

    /// Renders the counters as a JSON object (the `counters` block of
    /// the JSON sink and of the `BENCH_pr*.json` telemetry sections).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let num = |n: u64| Value::Num(n as f64);
        Value::Obj(vec![
            ("newton_solves".into(), num(self.newton_solves)),
            ("newton_iterations".into(), num(self.newton_iterations)),
            ("factor_reuse_hits".into(), num(self.factor_reuse_hits)),
            ("full_factorizations".into(), num(self.full_factorizations)),
            ("refactorizations".into(), num(self.refactorizations)),
            ("pivot_fallbacks".into(), num(self.pivot_fallbacks)),
            ("lin_stamp_hits".into(), num(self.lin_stamp_hits)),
            ("lin_stamp_builds".into(), num(self.lin_stamp_builds)),
            ("pattern_builds".into(), num(self.pattern_builds)),
            ("pattern_rebuilds".into(), num(self.pattern_rebuilds)),
            ("dense_fallbacks".into(), num(self.dense_fallbacks)),
            ("sparse_solves".into(), num(self.sparse_solves)),
            ("dense_solves".into(), num(self.dense_solves)),
            ("ac_points".into(), num(self.ac_points)),
            ("ac_points_sparse".into(), num(self.ac_points_sparse)),
            ("ac_point_fallbacks".into(), num(self.ac_point_fallbacks)),
            ("tran_steps".into(), num(self.tran_steps)),
            ("lte_accepts".into(), num(self.lte_accepts)),
            ("lte_rejects".into(), num(self.lte_rejects)),
            ("newton_retries".into(), num(self.newton_retries)),
            ("breakpoint_restarts".into(), num(self.breakpoint_restarts)),
            ("lint_prechecks".into(), num(self.lint_prechecks)),
            ("wave_chunks".into(), num(self.wave_chunks)),
            ("wave_samples".into(), num(self.wave_samples)),
            ("trials_total".into(), num(self.trials_total)),
            ("batch_solves".into(), num(self.batch_solves)),
            ("batch_lane_slots".into(), num(self.batch_lane_slots)),
            ("batch_lanes_active".into(), num(self.batch_lanes_active)),
            ("lane_fallbacks".into(), num(self.lane_fallbacks)),
            ("analyze_runs".into(), num(self.analyze_runs)),
            ("prediction_checks".into(), num(self.prediction_checks)),
            (
                "prediction_violations".into(),
                num(self.prediction_violations),
            ),
            ("cache_hits".into(), num(self.cache_hits)),
            ("cache_misses".into(), num(self.cache_misses)),
            ("cache_disk_loads".into(), num(self.cache_disk_loads)),
            (
                "cache_validation_failures".into(),
                num(self.cache_validation_failures),
            ),
            ("events_emitted".into(), num(self.events_emitted)),
            (
                "degradation_warnings".into(),
                num(self.degradation_warnings),
            ),
            ("flight_dumps".into(), num(self.flight_dumps)),
            (
                "dt_histogram".into(),
                Value::Arr(self.dt_histogram.iter().map(|&n| num(n)).collect()),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Phases (accumulated timings)
// ---------------------------------------------------------------------

/// Solver phases with accumulated wall-clock accounting.
///
/// Cold phases (lint precheck, pattern discovery, the per-analysis
/// Newton total) are timed whenever telemetry is enabled; the hot
/// per-call phases (factor / refactor / back-substitute) only under the
/// `fine` flag — see the crate docs on span granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pre-simulation netlist lint (`cml_spice::lint::precheck`).
    LintPrecheck,
    /// Sparsity-pattern discovery (recording stamp pass + symbolic
    /// analysis).
    PatternDiscovery,
    /// Whole Newton solves (iteration loop, all paths).
    NewtonSolve,
    /// Full LU factorizations (fine only).
    Factor,
    /// Sparse replayed refactorizations (fine only).
    Refactor,
    /// Triangular back-substitutions (fine only).
    BackSubstitute,
    /// Batched lockstep Newton solves: the lane-packed stamping,
    /// factorization and per-lane convergence bookkeeping of one batch
    /// (coarse — one span per batch, not per iteration).
    BatchSolve,
    /// Static-analysis passes (`cml_spice::analyze`): interval fixpoint,
    /// conditioning envelope, stiffness spectrum and prediction checks.
    Analyze,
}

/// Number of [`Phase`] variants (array backing for [`Timings`]).
pub const N_PHASES: usize = 8;

impl Phase {
    /// Stable index into [`Timings`] arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Phase::LintPrecheck => 0,
            Phase::PatternDiscovery => 1,
            Phase::NewtonSolve => 2,
            Phase::Factor => 3,
            Phase::Refactor => 4,
            Phase::BackSubstitute => 5,
            Phase::BatchSolve => 6,
            Phase::Analyze => 7,
        }
    }

    /// Snake-case name used in JSON sinks.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::LintPrecheck => "lint_precheck",
            Phase::PatternDiscovery => "pattern_discovery",
            Phase::NewtonSolve => "newton_solve",
            Phase::Factor => "factor",
            Phase::Refactor => "refactor",
            Phase::BackSubstitute => "back_substitute",
            Phase::BatchSolve => "batch_solve",
            Phase::Analyze => "analyze",
        }
    }

    /// All phases in index order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::LintPrecheck,
        Phase::PatternDiscovery,
        Phase::NewtonSolve,
        Phase::Factor,
        Phase::Refactor,
        Phase::BackSubstitute,
        Phase::BatchSolve,
        Phase::Analyze,
    ];
}

/// Accumulated wall-clock per [`Phase`]: total nanoseconds and call
/// count. **Not** deterministic (wall-clock); kept apart from
/// [`Counters`] on purpose.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    /// Accumulated nanoseconds per phase, indexed by [`Phase::index`].
    pub ns: [u64; N_PHASES],
    /// Number of timed calls per phase.
    pub calls: [u64; N_PHASES],
}

impl Timings {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Timings) {
        for i in 0..N_PHASES {
            self.ns[i] += other.ns[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Renders the phase timings as a JSON object.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Obj(
            Phase::ALL
                .iter()
                .map(|&p| {
                    let i = p.index();
                    (
                        p.name().to_string(),
                        Value::Obj(vec![
                            ("ns".into(), Value::Num(self.ns[i] as f64)),
                            ("calls".into(), Value::Num(self.calls[i] as f64)),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// One closed span on the process-epoch timeline. Spans are recorded at
/// guard drop, so the vector is ordered by *end* time within a `tid`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"tran"`, `"ac_chunk"`).
    pub name: &'static str,
    /// Category (e.g. `"analysis"`, `"phase"`), the Chrome trace `cat`.
    pub cat: &'static str,
    /// Virtual thread id: 0 for the creating handle, worker forks get
    /// their own (see [`Probe::fork`]).
    pub tid: u32,
    /// Nesting depth at open (0 = top level) within this handle.
    pub depth: u32,
    /// Start, nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Recording state behind an enabled handle.
#[derive(Debug, Default)]
struct Recorder {
    counters: Counters,
    timings: Timings,
    spans: Vec<SpanRecord>,
    depth: u32,
    open_spans: u64,
    /// Per-worker item counts from the most recent instrumented
    /// `par_map` fan-out (scheduling-dependent diagnostics).
    worker_items: Vec<u64>,
    /// Last span-event timestamp issued on this timeline.
    last_tick_ns: u64,
    /// Bounded keep-newest structured event log.
    events: EventRing,
    /// Per-iteration Newton residuals (`max |Δx|`) of the most recent
    /// solve attempt recorded on *this* handle. Reset at every attempt
    /// start; deliberately not merged through [`Parts`] — it is a
    /// per-solve forensic trace, not a mergeable total.
    trajectory: Vec<f64>,
}

impl Recorder {
    /// A strictly increasing span-event timestamp. The monotonic clock
    /// can tie on consecutive events (coarse resolution vs. sub-ns span
    /// rates); ties would make disjoint sibling spans indistinguishable
    /// from nested ones, so every open/close bumps at least 1 ns.
    fn tick(&mut self) -> u64 {
        let t = now_ns().max(self.last_tick_ns + 1);
        self.last_tick_ns = t;
        t
    }
}

/// The buffers of a finished forked handle, returned to the spawning
/// side for deterministic merge-on-join (see [`Telemetry::absorb`]).
#[derive(Debug)]
pub struct Parts {
    counters: Counters,
    timings: Timings,
    spans: Vec<SpanRecord>,
    events: EventRing,
}

// ---------------------------------------------------------------------
// Telemetry handle
// ---------------------------------------------------------------------

/// Where [`Telemetry::flush`] writes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sink {
    Json(PathBuf),
    Trace(PathBuf),
    Prom(PathBuf),
}

/// The instrumentation handle analyses thread through the solver.
///
/// Not `Sync` by design (single-writer buffers, no locks on the hot
/// path): to record from parallel workers, take a [`Probe`]
/// (`Copy + Sync`), [`Probe::fork`] a private handle inside each worker,
/// return its [`Telemetry::into_parts`] with the worker's results, and
/// [`Telemetry::absorb`] the parts in input order on the spawning side.
#[derive(Debug)]
pub struct Telemetry {
    fine: bool,
    tid: u32,
    sinks: Vec<Sink>,
    rec: Option<RefCell<Recorder>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A no-op handle: every recording method is an inlined branch on
    /// `None`, and construction allocates nothing.
    #[must_use]
    pub const fn disabled() -> Self {
        Telemetry {
            fine: false,
            tid: 0,
            sinks: Vec::new(),
            rec: None,
        }
    }

    /// A recording handle with coarse spans and all counters (the mode
    /// whose overhead `bench_pr5` bounds at < 2 %).
    #[must_use]
    pub fn enabled() -> Self {
        Telemetry {
            fine: false,
            tid: 0,
            sinks: Vec::new(),
            rec: Some(RefCell::new(Recorder::default())),
        }
    }

    /// A recording handle with per-solve spans and per-factorization
    /// timers as well (higher overhead; for traces, not benchmarks).
    #[must_use]
    pub fn enabled_fine() -> Self {
        Telemetry {
            fine: true,
            ..Telemetry::enabled()
        }
    }

    /// Builds a handle from the [`TELEMETRY_ENV`] environment variable:
    /// disabled when unset/empty, otherwise enabled with the configured
    /// sinks (and fine granularity when the value contains a `fine`
    /// token). Unknown tokens produce a [`warn_once`] and are ignored.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(TELEMETRY_ENV) {
            Ok(v) if !v.trim().is_empty() => Telemetry::enabled().with_env_spec(&v),
            _ => Telemetry::disabled(),
        }
    }

    /// An enabled handle that *additionally* honours [`TELEMETRY_ENV`]
    /// sinks when the variable is set — the constructor the bench
    /// binaries use, so their counter blocks exist regardless of the
    /// environment while `CML_TELEMETRY=json:...` still exports files.
    #[must_use]
    pub fn enabled_with_env_sinks() -> Self {
        match std::env::var(TELEMETRY_ENV) {
            Ok(v) if !v.trim().is_empty() => Telemetry::enabled().with_env_spec(&v),
            _ => Telemetry::enabled(),
        }
    }

    /// Applies a `json:<path>,trace:<path>,prom:<path>,fine` spec to
    /// this handle.
    #[must_use]
    fn with_env_spec(mut self, spec: &str) -> Self {
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(path) = token.strip_prefix("json:") {
                self.sinks.push(Sink::Json(PathBuf::from(path)));
            } else if let Some(path) = token.strip_prefix("trace:") {
                self.sinks.push(Sink::Trace(PathBuf::from(path)));
            } else if let Some(path) = token.strip_prefix("prom:") {
                self.sinks.push(Sink::Prom(PathBuf::from(path)));
            } else if token == "fine" {
                self.fine = true;
            } else if token != "1" && token != "on" {
                warn_once(
                    "telemetry-env",
                    &format!("unrecognized {TELEMETRY_ENV} token `{token}` ignored"),
                );
            }
        }
        self
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_some()
    }

    /// Whether fine-granularity spans/timers are active.
    #[must_use]
    pub fn is_fine(&self) -> bool {
        self.rec.is_some() && self.fine
    }

    /// Applies `f` to the counters; a no-op when disabled.
    #[inline]
    pub fn count(&self, f: impl FnOnce(&mut Counters)) {
        if let Some(rec) = &self.rec {
            f(&mut rec.borrow_mut().counters);
        }
    }

    /// Emits a structured event into the bounded ring. Takes a closure
    /// so a disabled handle never constructs the [`EventKind`] (same
    /// zero-cost contract as [`Telemetry::count`]). Increments
    /// [`Counters::events_emitted`].
    #[inline]
    pub fn event(&self, make: impl FnOnce() -> EventKind) {
        if let Some(rec) = &self.rec {
            let mut r = rec.borrow_mut();
            let t = r.tick();
            r.counters.events_emitted += 1;
            let kind = make();
            let tid = self.tid;
            r.events.push(kind, t, tid);
        }
    }

    /// Emits a structured event only in fine mode. High-rate events
    /// that fire once per Newton iteration go through here: each
    /// [`Telemetry::event`] costs a clock read, and one Newton solve
    /// per transient step would spend the coarse mode's < 2 % overhead
    /// budget on timestamps alone (same reasoning as
    /// [`Telemetry::timer_fine`]). Rare, diagnosis-critical events
    /// (divergence, LTE rejects, pivot fallbacks, degradations) stay on
    /// the coarse [`Telemetry::event`] path.
    #[inline]
    pub fn event_fine(&self, make: impl FnOnce() -> EventKind) {
        if self.is_fine() {
            self.event(make);
        }
    }

    /// Routes a silent-degradation warning through both channels: the
    /// once-per-process stderr line ([`warn_once`], silenced by
    /// `CML_QUIET`) and — when this handle records — a
    /// [`EventKind::Degradation`] event plus the
    /// [`Counters::degradation_warnings`] counter, which `CML_QUIET`
    /// never silences.
    pub fn degradation(&self, code: &'static str, message: &str) {
        warn_once(code, message);
        if let Some(rec) = &self.rec {
            let mut r = rec.borrow_mut();
            let t = r.tick();
            r.counters.events_emitted += 1;
            r.counters.degradation_warnings += 1;
            let tid = self.tid;
            r.events
                .push(EventKind::Degradation { code: code.into() }, t, tid);
        }
    }

    /// Clears the per-attempt Newton residual trajectory (called at the
    /// start of every solve attempt).
    #[inline]
    pub fn trajectory_reset(&self) {
        if let Some(rec) = &self.rec {
            rec.borrow_mut().trajectory.clear();
        }
    }

    /// Appends one iteration's convergence residual (`max |Δx|`) to the
    /// trajectory of the current solve attempt.
    #[inline]
    pub fn trajectory_push(&self, residual: f64) {
        if let Some(rec) = &self.rec {
            rec.borrow_mut().trajectory.push(residual);
        }
    }

    /// The residual trajectory of the most recent solve attempt recorded
    /// on this handle (empty when disabled or nothing solved yet).
    #[must_use]
    pub fn residual_trajectory(&self) -> Vec<f64> {
        match &self.rec {
            Some(rec) => rec.borrow().trajectory.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the events currently held by the ring, oldest first.
    #[must_use]
    pub fn events_snapshot(&self) -> Vec<Event> {
        match &self.rec {
            Some(rec) => rec.borrow().events.snapshot(),
            None => Vec::new(),
        }
    }

    /// Events evicted from this handle's ring by overflow (including
    /// evictions while absorbing worker rings). Deliberately *not* a
    /// [`Counters`] field: per-worker rings drop scheduling-dependent
    /// subsets, so the total is not thread-invariant.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        match &self.rec {
            Some(rec) => rec.borrow().events.dropped(),
            None => 0,
        }
    }

    /// Replaces this handle's event ring with an empty one of `capacity`
    /// slots (builder-style; for tests and long-lived service handles —
    /// forked worker handles keep [`DEFAULT_EVENT_CAPACITY`]).
    #[must_use]
    pub fn with_event_capacity(self, capacity: usize) -> Self {
        if let Some(rec) = &self.rec {
            rec.borrow_mut().events = EventRing::with_capacity(capacity);
        }
        self
    }

    /// Renders the current state in the Prometheus text exposition
    /// format (shorthand for `report().prometheus()`).
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.report().prometheus()
    }

    /// Opens a coarse span; the returned guard records it when dropped.
    #[inline]
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        self.open_span(cat, name, self.rec.is_some())
    }

    /// Opens a span only in fine mode (per-solve granularity).
    #[inline]
    #[must_use = "the span closes when the guard drops"]
    pub fn span_fine(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        self.open_span(cat, name, self.is_fine())
    }

    fn open_span(&self, cat: &'static str, name: &'static str, active: bool) -> SpanGuard<'_> {
        let start_ns = if active {
            if let Some(rec) = &self.rec {
                let mut r = rec.borrow_mut();
                r.depth += 1;
                r.open_spans += 1;
                r.tick()
            } else {
                now_ns()
            }
        } else {
            0
        };
        SpanGuard {
            tel: self,
            cat,
            name,
            start_ns,
            active,
        }
    }

    /// Starts an always-on (cold-phase) accumulating timer.
    #[inline]
    #[must_use = "the timer records when the guard drops"]
    pub fn timer(&self, phase: Phase) -> TimerGuard<'_> {
        TimerGuard {
            tel: self,
            phase,
            start_ns: if self.rec.is_some() { now_ns() } else { 0 },
            active: self.rec.is_some(),
        }
    }

    /// Starts a hot-phase timer, active only in fine mode.
    #[inline]
    #[must_use = "the timer records when the guard drops"]
    pub fn timer_fine(&self, phase: Phase) -> TimerGuard<'_> {
        let active = self.is_fine();
        TimerGuard {
            tel: self,
            phase,
            start_ns: if active { now_ns() } else { 0 },
            active,
        }
    }

    /// A `Copy + Send + Sync` token parallel workers fork private
    /// handles from.
    #[must_use]
    pub fn probe(&self) -> Probe {
        Probe {
            enabled: self.rec.is_some(),
            fine: self.fine,
        }
    }

    /// Consumes a forked handle into its mergeable buffers (`None` when
    /// the handle was disabled, so workers can return it unconditionally).
    #[must_use]
    pub fn into_parts(self) -> Option<Parts> {
        self.rec.map(|rec| {
            let r = rec.into_inner();
            Parts {
                counters: r.counters,
                timings: r.timings,
                spans: r.spans,
                events: r.events,
            }
        })
    }

    /// Merges a forked worker's buffers into this handle. Call in input
    /// order after the join; counter totals are then independent of the
    /// scheduling that produced the parts.
    pub fn absorb(&self, parts: Option<Parts>) {
        let (Some(rec), Some(p)) = (&self.rec, parts) else {
            return;
        };
        let mut r = rec.borrow_mut();
        r.counters.merge(&p.counters);
        r.timings.merge(&p.timings);
        r.spans.extend(p.spans);
        r.events.absorb(p.events);
    }

    /// Records the per-worker item counts of an instrumented `par_map`
    /// fan-out (scheduling-dependent; reported outside [`Counters`]).
    pub fn note_worker_items(&self, items_per_worker: &[usize]) {
        if let Some(rec) = &self.rec {
            rec.borrow_mut().worker_items = items_per_worker.iter().map(|&n| n as u64).collect();
        }
    }

    /// Snapshots the recorded state into a typed [`SolverReport`].
    #[must_use]
    pub fn report(&self) -> SolverReport {
        match &self.rec {
            Some(rec) => {
                let r = rec.borrow();
                SolverReport {
                    enabled: true,
                    counters: r.counters.clone(),
                    timings: r.timings.clone(),
                    spans: r.spans.clone(),
                    open_spans: r.open_spans,
                    worker_items: r.worker_items.clone(),
                    peak_rss: peak_rss(),
                    events: r.events.snapshot(),
                    events_dropped: r.events.dropped(),
                    residual_trajectory: r.trajectory.clone(),
                }
            }
            None => SolverReport::default(),
        }
    }

    /// Writes every sink configured from the environment, returning the
    /// paths written (empty when disabled or no sinks are configured).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O failure.
    pub fn flush(&self) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        if self.rec.is_none() {
            return Ok(written);
        }
        let report = self.report();
        for sink in &self.sinks {
            match sink {
                Sink::Json(path) => report.write_json(path)?,
                Sink::Trace(path) => report.write_chrome_trace(path)?,
                Sink::Prom(path) => report.write_prometheus(path)?,
            }
            written.push(match sink {
                Sink::Json(p) | Sink::Trace(p) | Sink::Prom(p) => p.clone(),
            });
        }
        Ok(written)
    }
}

/// RAII guard for one span; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: &'a Telemetry,
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if let Some(rec) = &self.tel.rec {
            let mut r = rec.borrow_mut();
            let end = r.tick();
            r.depth = r.depth.saturating_sub(1);
            r.open_spans = r.open_spans.saturating_sub(1);
            let depth = r.depth;
            let tid = self.tel.tid;
            r.spans.push(SpanRecord {
                name: self.name,
                cat: self.cat,
                tid,
                depth,
                start_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
            });
        }
    }
}

/// RAII guard for one accumulated-phase timing; records on drop.
#[derive(Debug)]
pub struct TimerGuard<'a> {
    tel: &'a Telemetry,
    phase: Phase,
    start_ns: u64,
    active: bool,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        if let Some(rec) = &self.tel.rec {
            let mut r = rec.borrow_mut();
            let i = self.phase.index();
            r.timings.ns[i] += dur;
            r.timings.calls[i] += 1;
        }
    }
}

/// A `Copy + Send + Sync` token carrying a handle's enablement across
/// thread boundaries, so `par_map` workers can fork private recording
/// buffers (`Telemetry` itself is deliberately not `Sync`).
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    enabled: bool,
    fine: bool,
}

impl Probe {
    /// Forks a private handle for one worker. `tid` labels the worker's
    /// spans on the trace timeline (the spawning handle is tid 0; pass
    /// e.g. `chunk_index + 1`). Returns a disabled handle when the
    /// source handle was disabled — fork unconditionally.
    #[must_use]
    pub fn fork(&self, tid: u32) -> Telemetry {
        if !self.enabled {
            return Telemetry::disabled();
        }
        Telemetry {
            fine: self.fine,
            tid,
            sinks: Vec::new(),
            rec: Some(RefCell::new(Recorder::default())),
        }
    }
}

// ---------------------------------------------------------------------
// Report and sinks
// ---------------------------------------------------------------------

/// Schema tag stamped into the JSON sink (validated by CI).
pub const REPORT_SCHEMA: &str = "cml-telemetry-v1";

/// Typed, queryable snapshot of everything a [`Telemetry`] handle
/// recorded — the in-memory sink.
#[derive(Debug, Clone, Default)]
pub struct SolverReport {
    /// Whether the producing handle was recording at all.
    pub enabled: bool,
    /// Deterministic solver event counts.
    pub counters: Counters,
    /// Accumulated phase timings (wall-clock; not deterministic).
    pub timings: Timings,
    /// Closed spans, ordered by end time within each `tid`.
    pub spans: Vec<SpanRecord>,
    /// Spans still open at snapshot time (0 for a quiesced run).
    pub open_spans: u64,
    /// Items processed per worker in the most recent instrumented
    /// fan-out (scheduling-dependent).
    pub worker_items: Vec<u64>,
    /// Peak resident-set size of the process at snapshot time (Linux
    /// `VmHWM`), with a typed [`PeakRss::Unavailable`] marker on
    /// platforms without it — a silent 0 would read as "flat memory".
    /// A gauge, not a counter: non-deterministic and process-wide,
    /// which is exactly what the flat-memory benchmarks need to assert
    /// against.
    pub peak_rss: PeakRss,
    /// Events held by the ring at snapshot time, oldest first (the
    /// newest N emitted; see [`EventRing`]).
    pub events: Vec<Event>,
    /// Events evicted from the ring by overflow. Scheduling-dependent
    /// under parallel merges, hence outside [`Counters`].
    pub events_dropped: u64,
    /// Per-iteration Newton residuals of the most recent solve attempt
    /// recorded on the snapshotted handle.
    pub residual_trajectory: Vec<f64>,
}

impl SolverReport {
    /// Checks that the recorded spans form a proper forest per `tid`:
    /// any two spans on one timeline are either disjoint or strictly
    /// nested (with the inner one deeper). Returns the first violating
    /// pair's names on failure.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn check_well_nested(&self) -> Result<(), String> {
        let mut tids: Vec<u32> = self.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let mut spans: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.tid == tid).collect();
            // Sort by start; ties broken outermost (longest) first.
            spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.dur_ns.cmp(&a.dur_ns)));
            let mut stack: Vec<&SpanRecord> = Vec::new();
            for s in spans {
                while let Some(top) = stack.last() {
                    if s.start_ns >= top.start_ns + top.dur_ns {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(top) = stack.last() {
                    let end = s.start_ns + s.dur_ns;
                    let top_end = top.start_ns + top.dur_ns;
                    if end > top_end {
                        return Err(format!(
                            "span `{}` [{}, {}) overlaps `{}` [{}, {}) on tid {tid} \
                             without nesting",
                            s.name, s.start_ns, end, top.name, top.start_ns, top_end
                        ));
                    }
                    if s.depth <= top.depth {
                        return Err(format!(
                            "span `{}` (depth {}) nests inside `{}` (depth {}) on tid {tid} \
                             but is not deeper",
                            s.name, s.depth, top.name, top.depth
                        ));
                    }
                }
                stack.push(s);
            }
        }
        Ok(())
    }

    /// Renders the report as the JSON tree written by the `json:` sink
    /// and embedded as the `telemetry` block of `BENCH_pr*.json`.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("schema".into(), Value::Str(REPORT_SCHEMA.into())),
            ("enabled".into(), Value::Bool(self.enabled)),
            ("counters".into(), self.counters.to_value()),
            (
                "derived".into(),
                Value::Obj(vec![
                    (
                        "reuse_hit_rate".into(),
                        Value::Num(self.counters.reuse_hit_rate()),
                    ),
                    (
                        "lte_reject_ratio".into(),
                        Value::Num(self.counters.lte_reject_ratio()),
                    ),
                    (
                        "ac_sparse_fraction".into(),
                        Value::Num(self.counters.ac_sparse_fraction()),
                    ),
                    (
                        "lane_occupancy".into(),
                        Value::Num(self.counters.lane_occupancy()),
                    ),
                    (
                        "lane_fallback_rate".into(),
                        Value::Num(self.counters.lane_fallback_rate()),
                    ),
                ]),
            ),
            ("timings_ns".into(), self.timings.to_value()),
            ("spans".into(), Value::Num(self.spans.len() as f64)),
            ("open_spans".into(), Value::Num(self.open_spans as f64)),
            (
                "worker_items".into(),
                Value::Arr(
                    self.worker_items
                        .iter()
                        .map(|&n| Value::Num(n as f64))
                        .collect(),
                ),
            ),
            ("peak_rss_bytes".into(), self.peak_rss.to_value()),
            (
                "events".into(),
                Value::Arr(self.events.iter().map(Event::to_value).collect()),
            ),
            (
                "events_dropped".into(),
                Value::Num(self.events_dropped as f64),
            ),
            (
                "residual_trajectory".into(),
                Value::Arr(
                    self.residual_trajectory
                        .iter()
                        .map(|&r| Value::Num(r))
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(&self.to_value())
            .map_err(|e| io::Error::other(format!("telemetry json render: {e:?}")))?;
        std::fs::write(path, format!("{json}\n"))
    }

    /// Renders the spans in the Chrome trace-event format (a JSON object
    /// with a `traceEvents` array of `ph: "X"` complete events), loadable
    /// in `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev).
    #[must_use]
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        push(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"cml-spice solver\"}}"
                .to_string(),
            &mut out,
            &mut first,
        );
        let mut tids: Vec<u32> = self.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in &tids {
            let label = if *tid == 0 {
                "main".to_string()
            } else {
                format!("worker-{tid}")
            };
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{label}\"}}}}"
                ),
                &mut out,
                &mut first,
            );
        }
        for s in &self.spans {
            // Timestamps are microseconds (float) in the trace format.
            push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                    s.name,
                    s.cat,
                    s.start_ns as f64 / 1e3,
                    s.dur_ns as f64 / 1e3,
                    s.tid
                ),
                &mut out,
                &mut first,
            );
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }

    /// Writes the Chrome trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_chrome_trace(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }
}

// ---------------------------------------------------------------------
// Process gauges
// ---------------------------------------------------------------------

/// Peak resident-set size reading, with a typed marker for platforms
/// that cannot report one. The distinction matters to consumers: a
/// flat-memory assertion against a silent `0` would pass vacuously,
/// and a metrics scraper must be able to tell "small" from "unknown".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeakRss {
    /// `VmHWM` in bytes.
    Bytes(u64),
    /// No readable high-water mark on this platform (no procfs, or the
    /// field is missing/unparsable).
    #[default]
    Unavailable,
}

impl PeakRss {
    /// The reading in bytes, or `None` when unavailable.
    #[must_use]
    pub fn bytes(self) -> Option<u64> {
        match self {
            PeakRss::Bytes(b) => Some(b),
            PeakRss::Unavailable => None,
        }
    }

    /// JSON rendering: a number, or the string `"unavailable"` (typed
    /// marker — deliberately not `0` and not `null`, so schema checks
    /// can distinguish the platform gap from a missing field).
    #[must_use]
    pub fn to_value(self) -> Value {
        match self {
            PeakRss::Bytes(b) => Value::Num(b as f64),
            PeakRss::Unavailable => Value::Str("unavailable".into()),
        }
    }
}

/// Peak resident-set size of the current process, read from
/// `/proc/self/status` (`VmHWM`). Returns [`PeakRss::Unavailable`] on
/// platforms without procfs or if the field is missing/unparsable. This
/// is a high-water mark: it only ever grows, so "peak memory stayed
/// flat" is asserted by sampling it before and after the workload and
/// bounding the delta.
#[must_use]
pub fn peak_rss() -> PeakRss {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return PeakRss::Unavailable;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let Ok(kb) = rest.trim().trim_end_matches("kB").trim().parse::<u64>() else {
                return PeakRss::Unavailable;
            };
            return PeakRss::Bytes(kb * 1024);
        }
    }
    PeakRss::Unavailable
}

/// [`peak_rss`] flattened to an `Option` (compatibility shim for the
/// flat-memory benches; prefer the typed [`PeakRss`]).
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    peak_rss().bytes()
}

// ---------------------------------------------------------------------
// Degradation warnings
// ---------------------------------------------------------------------

/// Whether degradation warnings are suppressed (`CML_QUIET=1`; read
/// once).
#[must_use]
pub fn quiet() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var(QUIET_ENV)
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
            })
            .unwrap_or(false)
    })
}

/// Emits a one-line warning to stderr, at most once per `code` per
/// process (silent degradations like the permanent dense fallback call
/// this so a 6× regression is no longer invisible). Suppressed entirely
/// by `CML_QUIET=1`. Independent of any [`Telemetry`] handle: the
/// warning fires even with telemetry disabled.
pub fn warn_once(code: &'static str, message: &str) {
    if quiet() {
        return;
    }
    static SEEN: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let seen = SEEN.get_or_init(|| Mutex::new(Vec::new()));
    let Ok(mut guard) = seen.lock() else {
        return;
    };
    if guard.contains(&code) {
        return;
    }
    guard.push(code);
    eprintln!("cml: warning [{code}]: {message} (once per process; silence with {QUIET_ENV}=1)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let _s = tel.span("analysis", "op");
            let _t = tel.timer(Phase::LintPrecheck);
            tel.count(|c| c.newton_solves += 1);
        }
        let report = tel.report();
        assert!(!report.enabled);
        assert_eq!(report.counters, Counters::default());
        assert!(report.spans.is_empty());
        assert!(tel.flush().unwrap().is_empty());
    }

    #[test]
    fn spans_nest_and_close() {
        let tel = Telemetry::enabled();
        {
            let _a = tel.span("analysis", "tran");
            {
                let _b = tel.span("phase", "stepping");
            }
        }
        let report = tel.report();
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.open_spans, 0);
        // Inner closes first.
        assert_eq!(report.spans[0].name, "stepping");
        assert_eq!(report.spans[0].depth, 1);
        assert_eq!(report.spans[1].name, "tran");
        assert_eq!(report.spans[1].depth, 0);
        report.check_well_nested().unwrap();
    }

    #[test]
    fn nesting_violation_is_detected() {
        let report = SolverReport {
            enabled: true,
            spans: vec![
                SpanRecord {
                    name: "a",
                    cat: "t",
                    tid: 0,
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 100,
                },
                SpanRecord {
                    name: "b",
                    cat: "t",
                    tid: 0,
                    depth: 1,
                    start_ns: 50,
                    dur_ns: 100,
                },
            ],
            ..SolverReport::default()
        };
        assert!(report.check_well_nested().is_err());
    }

    #[test]
    fn fine_spans_gated() {
        let coarse = Telemetry::enabled();
        {
            let _s = coarse.span_fine("solver", "newton");
        }
        assert!(coarse.report().spans.is_empty());
        let fine = Telemetry::enabled_fine();
        {
            let _s = fine.span_fine("solver", "newton");
        }
        assert_eq!(fine.report().spans.len(), 1);
    }

    #[test]
    fn probe_fork_and_absorb_merge_counters() {
        let tel = Telemetry::enabled();
        let probe = tel.probe();
        let parts: Vec<_> = (0..4)
            .map(|i| {
                let worker = probe.fork(i + 1);
                worker.count(|c| c.ac_points += 10);
                let _s = worker.span("phase", "ac_chunk");
                drop(_s);
                worker.into_parts()
            })
            .collect();
        for p in parts {
            tel.absorb(p);
        }
        let report = tel.report();
        assert_eq!(report.counters.ac_points, 40);
        assert_eq!(report.spans.len(), 4);
        // Distinct worker tids.
        let tids: Vec<u32> = report.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids, vec![1, 2, 3, 4]);
    }

    #[test]
    fn disabled_probe_forks_disabled() {
        let tel = Telemetry::disabled();
        let w = tel.probe().fork(1);
        assert!(!w.is_enabled());
        assert!(w.into_parts().is_none());
    }

    #[test]
    fn dt_histogram_buckets() {
        let mut c = Counters::default();
        c.record_dt(1e-12, 1e-12); // nominal
        c.record_dt(0.5e-12, 1e-12); // half
        c.record_dt(1e-12 / 4096.0, 1e-12); // max shrink
        c.record_dt(1e-9, 1e-12); // way past the top → clamped
        assert_eq!(c.dt_histogram[DT_BUCKET_ZERO], 1);
        assert_eq!(c.dt_histogram[DT_BUCKET_ZERO - 1], 1);
        assert_eq!(c.dt_histogram[0], 1);
        assert_eq!(c.dt_histogram[DT_BUCKETS - 1], 1);
    }

    #[test]
    fn derived_rates() {
        let mut c = Counters::default();
        assert_eq!(c.reuse_hit_rate(), 0.0);
        c.factor_reuse_hits = 3;
        c.full_factorizations = 1;
        assert!((c.reuse_hit_rate() - 0.75).abs() < 1e-12);
        c.lte_accepts = 9;
        c.lte_rejects = 1;
        assert!((c.lte_reject_ratio() - 0.1).abs() < 1e-12);
        c.ac_points = 4;
        c.ac_points_sparse = 3;
        assert!((c.ac_sparse_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(c.lane_occupancy(), 0.0);
        assert_eq!(c.lane_fallback_rate(), 0.0);
        c.batch_solves = 10;
        c.batch_lane_slots = 80;
        c.batch_lanes_active = 60;
        assert!((c.lane_occupancy() - 0.75).abs() < 1e-12);
        c.trials_total = 200;
        c.lane_fallbacks = 5;
        assert!((c.lane_fallback_rate() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn batch_counters_merge_and_render() {
        let mut a = Counters {
            trials_total: 100,
            batch_solves: 4,
            batch_lane_slots: 32,
            batch_lanes_active: 30,
            lane_fallbacks: 1,
            ..Counters::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.trials_total, 200);
        assert_eq!(a.batch_lane_slots, 64);
        assert_eq!(a.lane_fallbacks, 2);
        let Value::Obj(fields) = a.to_value() else {
            panic!("counters must render as an object")
        };
        for key in [
            "trials_total",
            "batch_solves",
            "batch_lane_slots",
            "batch_lanes_active",
            "lane_fallbacks",
        ] {
            assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
        }
    }

    #[test]
    fn counters_merge_is_fieldwise_sum() {
        let mut a = Counters {
            newton_solves: 1,
            ..Counters::default()
        };
        a.dt_histogram[3] = 2;
        let mut b = Counters {
            newton_solves: 2,
            dense_fallbacks: 1,
            ..Counters::default()
        };
        b.dt_histogram[3] = 5;
        a.merge(&b);
        assert_eq!(a.newton_solves, 3);
        assert_eq!(a.dense_fallbacks, 1);
        assert_eq!(a.dt_histogram[3], 7);
    }

    #[test]
    fn chrome_trace_renders_events() {
        let tel = Telemetry::enabled();
        {
            let _s = tel.span("analysis", "ac");
        }
        let trace = tel.report().chrome_trace_json();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\":\"ac\""));
        assert!(trace.contains("\"ph\":\"X\""));
        // Valid JSON (parseable by the vendored shim).
        let parsed: Value = serde_json::from_str(&trace).expect("trace must be valid JSON");
        let Value::Obj(fields) = parsed else {
            panic!("trace root must be an object")
        };
        assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
    }

    #[test]
    fn report_json_roundtrips_and_carries_schema() {
        let tel = Telemetry::enabled();
        tel.count(|c| c.newton_solves = 7);
        let json = serde_json::to_string_pretty(&tel.report().to_value()).unwrap();
        let parsed: Value = serde_json::from_str(&json).unwrap();
        let Value::Obj(fields) = &parsed else {
            panic!("report must be an object")
        };
        assert!(fields
            .iter()
            .any(|(k, v)| k == "schema" && *v == Value::Str(REPORT_SCHEMA.into())));
        assert!(fields.iter().any(|(k, _)| k == "counters"));
    }

    #[test]
    fn env_spec_parsing() {
        let tel = Telemetry::enabled()
            .with_env_spec("json:/tmp/a.json, trace:/tmp/b.json ,prom:/tmp/c.prom ,fine");
        assert!(tel.is_fine());
        assert_eq!(
            tel.sinks,
            vec![
                Sink::Json(PathBuf::from("/tmp/a.json")),
                Sink::Trace(PathBuf::from("/tmp/b.json")),
                Sink::Prom(PathBuf::from("/tmp/c.prom")),
            ]
        );
    }

    #[test]
    fn disabled_handle_skips_event_construction() {
        let tel = Telemetry::disabled();
        tel.event(|| panic!("EventKind must not be constructed on a disabled handle"));
        tel.trajectory_push(1.0);
        assert!(tel.events_snapshot().is_empty());
        assert!(tel.residual_trajectory().is_empty());
        assert_eq!(tel.events_dropped(), 0);
    }

    #[test]
    fn events_count_and_snapshot() {
        let tel = Telemetry::enabled();
        tel.event(|| EventKind::LintRejected { errors: 2 });
        tel.event(|| EventKind::LteReject { t: 1e-9, dt: 1e-12 });
        let report = tel.report();
        assert_eq!(report.counters.events_emitted, 2);
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].kind.name(), "lint_rejected");
        assert_eq!(report.events[1].seq, 1);
        // Timestamps strictly increase on one handle's timeline.
        assert!(report.events[1].t_ns > report.events[0].t_ns);
    }

    #[test]
    fn degradation_counts_and_logs() {
        let tel = Telemetry::enabled();
        tel.degradation("test-degradation-a", "a thing fell back");
        tel.degradation("test-degradation-a", "a thing fell back");
        let report = tel.report();
        assert_eq!(report.counters.degradation_warnings, 2);
        assert_eq!(report.counters.events_emitted, 2);
        assert!(matches!(
            &report.events[0].kind,
            EventKind::Degradation { code } if code == "test-degradation-a"
        ));
    }

    #[test]
    fn absorb_merges_events_thread_invariantly() {
        // The same 12 per-point events split over 1, 2 and 4 workers
        // must produce identical counter totals and event multisets.
        let totals: Vec<(u64, Vec<&'static str>)> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                let tel = Telemetry::enabled();
                let probe = tel.probe();
                let parts: Vec<_> = (0..workers)
                    .map(|w| {
                        let worker = probe.fork(w as u32 + 1);
                        for _ in 0..12 / workers {
                            worker.event(|| EventKind::LteReject { t: 0.0, dt: 1e-12 });
                        }
                        worker.into_parts()
                    })
                    .collect();
                for p in parts {
                    tel.absorb(p);
                }
                let r = tel.report();
                (
                    r.counters.events_emitted,
                    r.events.iter().map(|e| e.kind.name()).collect(),
                )
            })
            .collect();
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[1], totals[2]);
        assert_eq!(totals[0].0, 12);
    }

    #[test]
    fn trajectory_resets_per_attempt() {
        let tel = Telemetry::enabled();
        tel.trajectory_reset();
        tel.trajectory_push(1.0);
        tel.trajectory_push(0.1);
        assert_eq!(tel.residual_trajectory(), vec![1.0, 0.1]);
        tel.trajectory_reset();
        tel.trajectory_push(7.0);
        assert_eq!(tel.residual_trajectory(), vec![7.0]);
        assert_eq!(tel.report().residual_trajectory, vec![7.0]);
    }

    #[test]
    fn report_json_carries_events_and_peak_rss_marker() {
        let tel = Telemetry::enabled();
        tel.event(|| EventKind::PivotFallback {
            column: 3,
            pivot: 1e-320,
        });
        let json = serde_json::to_string_pretty(&tel.report().to_value()).unwrap();
        let parsed: Value = serde_json::from_str(&json).unwrap();
        let Value::Obj(fields) = &parsed else {
            panic!("report must be an object")
        };
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null)
        };
        assert!(matches!(get("events"), Value::Arr(a) if a.len() == 1));
        assert!(matches!(get("events_dropped"), Value::Num(_)));
        assert!(matches!(get("residual_trajectory"), Value::Arr(_)));
        // The gauge is either a number (Linux) or the typed marker —
        // never null, never a silent zero for the unavailable case.
        match get("peak_rss_bytes") {
            Value::Num(b) => assert!(*b > 0.0),
            Value::Str(s) => assert_eq!(s, "unavailable"),
            other => panic!("peak_rss_bytes must be number or marker, got {other:?}"),
        }
    }

    #[test]
    fn timer_accumulates() {
        let tel = Telemetry::enabled();
        {
            let _t = tel.timer(Phase::LintPrecheck);
        }
        {
            let _t = tel.timer(Phase::LintPrecheck);
        }
        let r = tel.report();
        assert_eq!(r.timings.calls[Phase::LintPrecheck.index()], 2);
        // Fine timers are inert on a coarse handle.
        {
            let _t = tel.timer_fine(Phase::Factor);
        }
        assert_eq!(tel.report().timings.calls[Phase::Factor.index()], 0);
    }
}
