//! Prometheus text-exposition rendering of a [`SolverReport`] — the
//! scrape surface a `cml-serve` daemon mounts.
//!
//! Format: the [Prometheus text exposition format], version 0.0.4 — one
//! `# TYPE` line per metric family followed by `name{labels} value`
//! sample lines. Counter families are derived *mechanically* from
//! [`Counters::to_value`], so a counter added to [`Counters`] appears
//! in the exposition without touching this module:
//!
//! * every numeric counter field `x` becomes `cml_x_total`,
//! * the `dt_histogram` array becomes
//!   `cml_dt_steps_total{log2_ratio="k"}` labelled samples,
//! * phase timings become `cml_phase_ns_total{phase="…"}` /
//!   `cml_phase_calls_total{phase="…"}`,
//! * derived rates and process gauges (peak RSS with its typed
//!   availability marker, span/event bookkeeping) become gauges.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::{Counters, PeakRss, Phase, SolverReport, DT_BUCKET_ZERO};
use serde::Value;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Metric name prefix for every exposed family.
const PREFIX: &str = "cml";

/// Formats one float the way Prometheus expects (`1`, `0.75`, `NaN`).
fn fmt_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn counter(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {PREFIX}_{name} {help}");
    let _ = writeln!(out, "# TYPE {PREFIX}_{name} counter");
    let _ = writeln!(out, "{PREFIX}_{name} {}", fmt_num(value));
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {PREFIX}_{name} {help}");
    let _ = writeln!(out, "# TYPE {PREFIX}_{name} gauge");
    let _ = writeln!(out, "{PREFIX}_{name} {}", fmt_num(value));
}

/// Renders the counters block: one `cml_<field>_total` counter per
/// numeric field (mechanically, off the JSON rendering, so new counters
/// auto-appear) and the labelled `cml_dt_steps_total` family for the
/// step-size histogram.
fn render_counters(out: &mut String, counters: &Counters) {
    let Value::Obj(fields) = counters.to_value() else {
        return;
    };
    for (name, value) in fields {
        match value {
            Value::Num(v) => counter(out, &format!("{name}_total"), "solver event count", v),
            Value::Arr(buckets) if name == "dt_histogram" => {
                let _ = writeln!(
                    out,
                    "# HELP {PREFIX}_dt_steps_total accepted steps by log2(dt/dt_nominal)"
                );
                let _ = writeln!(out, "# TYPE {PREFIX}_dt_steps_total counter");
                for (i, b) in buckets.iter().enumerate() {
                    let Value::Num(v) = b else { continue };
                    let log2 = i as i64 - DT_BUCKET_ZERO as i64;
                    let _ = writeln!(
                        out,
                        "{PREFIX}_dt_steps_total{{log2_ratio=\"{log2}\"}} {}",
                        fmt_num(*v)
                    );
                }
            }
            _ => {}
        }
    }
}

impl SolverReport {
    /// Renders the report in the Prometheus text exposition format.
    #[must_use]
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# {} prometheus exposition", crate::REPORT_SCHEMA);
        gauge(
            &mut out,
            "telemetry_enabled",
            "whether the producing handle was recording",
            if self.enabled { 1.0 } else { 0.0 },
        );
        render_counters(&mut out, &self.counters);
        // Derived rates (gauges: ratios, not monotone counts).
        gauge(
            &mut out,
            "reuse_hit_rate",
            "fraction of solve iterations served by a cached factorization",
            self.counters.reuse_hit_rate(),
        );
        gauge(
            &mut out,
            "lte_reject_ratio",
            "LTE rejections over adaptive step attempts",
            self.counters.lte_reject_ratio(),
        );
        gauge(
            &mut out,
            "ac_sparse_fraction",
            "AC points solved by sparse replay",
            self.counters.ac_sparse_fraction(),
        );
        gauge(
            &mut out,
            "lane_occupancy",
            "batched lane slots carrying live variants",
            self.counters.lane_occupancy(),
        );
        gauge(
            &mut out,
            "lane_fallback_rate",
            "Monte-Carlo trials that fell off the batch",
            self.counters.lane_fallback_rate(),
        );
        // Phase timers.
        let _ = writeln!(
            out,
            "# HELP {PREFIX}_phase_ns_total accumulated wall-clock per solver phase"
        );
        let _ = writeln!(out, "# TYPE {PREFIX}_phase_ns_total counter");
        for p in Phase::ALL {
            let _ = writeln!(
                out,
                "{PREFIX}_phase_ns_total{{phase=\"{}\"}} {}",
                p.name(),
                self.timings.ns[p.index()]
            );
        }
        let _ = writeln!(
            out,
            "# HELP {PREFIX}_phase_calls_total timed calls per solver phase"
        );
        let _ = writeln!(out, "# TYPE {PREFIX}_phase_calls_total counter");
        for p in Phase::ALL {
            let _ = writeln!(
                out,
                "{PREFIX}_phase_calls_total{{phase=\"{}\"}} {}",
                p.name(),
                self.timings.calls[p.index()]
            );
        }
        // Span / event-log bookkeeping.
        gauge(
            &mut out,
            "spans_recorded",
            "closed spans held by the report",
            self.spans.len() as f64,
        );
        gauge(
            &mut out,
            "open_spans",
            "spans still open at snapshot time",
            self.open_spans as f64,
        );
        counter(
            &mut out,
            "events_dropped_total",
            "events evicted from the bounded ring",
            self.events_dropped as f64,
        );
        gauge(
            &mut out,
            "events_held",
            "events currently held by the ring",
            self.events.len() as f64,
        );
        // Peak RSS with a typed availability marker: scrapers must be
        // able to tell "flat memory" from "platform cannot say".
        gauge(
            &mut out,
            "peak_rss_available",
            "1 when VmHWM is readable on this platform, else 0",
            match self.peak_rss {
                PeakRss::Bytes(_) => 1.0,
                PeakRss::Unavailable => 0.0,
            },
        );
        if let PeakRss::Bytes(b) = self.peak_rss {
            gauge(
                &mut out,
                "peak_rss_bytes",
                "process peak resident-set size (VmHWM)",
                b as f64,
            );
        }
        out
    }

    /// Writes the Prometheus exposition to `path` (the
    /// `CML_TELEMETRY=prom:<path>` sink).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_prometheus(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.prometheus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn exposition_is_line_oriented_and_typed() {
        let tel = Telemetry::enabled();
        tel.count(|c| {
            c.newton_solves = 3;
            c.dt_histogram[DT_BUCKET_ZERO] = 7;
        });
        let text = tel.report().prometheus();
        assert!(text.contains("# TYPE cml_newton_solves_total counter"));
        assert!(text.contains("cml_newton_solves_total 3"));
        assert!(text.contains("cml_dt_steps_total{log2_ratio=\"0\"} 7"));
        assert!(text.contains("# TYPE cml_reuse_hit_rate gauge"));
        assert!(text.contains("cml_telemetry_enabled 1"));
        assert!(text.contains("cml_peak_rss_available"));
        // Every sample line parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(name.starts_with("cml_"), "bad metric name in {line}");
            assert!(
                value.parse::<f64>().is_ok() || value == "NaN",
                "bad value in {line}"
            );
        }
    }

    #[test]
    fn every_counter_field_is_exposed() {
        let tel = Telemetry::enabled();
        let text = tel.report().prometheus();
        let Value::Obj(fields) = Counters::default().to_value() else {
            panic!("counters must render as an object")
        };
        for (name, v) in fields {
            if matches!(v, Value::Num(_)) {
                assert!(
                    text.contains(&format!("cml_{name}_total ")),
                    "counter {name} missing from exposition"
                );
            }
        }
    }
}
