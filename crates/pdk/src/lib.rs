//! A representative 0.18 µm CMOS process for the CML I/O reproduction.
//!
//! The paper was implemented in a proprietary TSMC 0.18 µm PDK. This crate
//! substitutes a parameter set assembled from public 0.18 µm-generation
//! data (tox = 4.1 nm, |VTH| ≈ 0.45 V, NMOS KP ≈ 170 µA/V², PMOS KP ≈
//! 60 µA/V², 1.8 V supply) — enough to reproduce first-order gm, output
//! resistance, capacitive loading and therefore the bandwidth/gain/power
//! trends the paper reports. It provides:
//!
//! * [`Pdk018`] — device model-card factory with process corner and
//!   temperature dependence ([`Corner`], mobility `∝ T^-1.5`, VTH drift
//!   −1 mV/°C),
//! * passive density parameters (poly sheet resistance, MIM capacitance),
//! * an analytical [`area`] model for layout-area accounting, including
//!   spiral versus active inductors — the basis of the paper's "80 % area
//!   reduction" claim and the Table I core-area comparison.
//!
//! # Example
//!
//! ```
//! use cml_pdk::{Corner, Pdk018};
//!
//! let pdk = Pdk018::typical();
//! let m = pdk.nmos(10e-6, 0.18e-6);
//! assert!(m.vth0 > 0.3 && m.vth0 < 0.6);
//!
//! let fast = Pdk018::new(Corner::Ff, 27.0);
//! assert!(fast.nmos(10e-6, 0.18e-6).kp > m.kp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod process;

pub use process::{Corner, Pdk018};

/// Nominal supply voltage of the process, volts.
pub const VDD: f64 = 1.8;

/// Minimum drawn channel length, meters.
pub const L_MIN: f64 = 0.18e-6;

/// Nominal junction temperature used for "typical" results, °C.
pub const T_NOMINAL: f64 = 27.0;
