//! Analytical layout-area model.
//!
//! The paper's headline area claims — 0.02 mm² input interface, 0.008 mm²
//! output interface, 0.028 mm² total ("almost equal to one on-chip spiral
//! inductor"), and "active inductors reduce 80 % of the circuit area
//! compared to on-chip inductors" — are layout-accounting statements, not
//! simulations. This module reproduces that accounting: device footprints
//! from drawn geometry plus a wiring overhead factor, and a spiral-inductor
//! footprint model calibrated to 0.18 µm-era spirals (a 2 nH spiral with
//! guard ring occupies roughly 0.025 mm²).

/// Wiring/spacing overhead multiplier applied to summed device areas.
/// Dense analog layout in this node typically lands between 3× and 6×
/// raw active area; 4.5 reproduces the paper's block areas for its
/// device budget.
pub const WIRING_OVERHEAD: f64 = 4.5;

/// Area of one MOSFET's active region including source/drain diffusions,
/// m²: `w · (l + 2·ldiff)`.
#[must_use]
pub fn mosfet(w: f64, l: f64, ldiff: f64) -> f64 {
    w * (l + 2.0 * ldiff)
}

/// Area of a poly resistor strip of `squares` squares at drawn width `w`,
/// m² (with end contacts counted as one extra square).
#[must_use]
pub fn poly_resistor(squares: f64, w: f64) -> f64 {
    (squares + 1.0) * w * w
}

/// Area of a MIM capacitor of value `c` at the process density
/// (1 fF/µm²), m².
#[must_use]
pub fn mim_capacitor(c: f64) -> f64 {
    c / crate::process::CMIM_DENSITY
}

/// Footprint of an on-chip spiral inductor of value `l_henry`, m².
///
/// Calibrated to 0.18 µm-era spirals: ~2 nH in ≈ 160 µm × 160 µm
/// including the guard ring; footprint grows roughly with L^0.8 (turns
/// add area sublinearly).
#[must_use]
pub fn spiral_inductor(l_henry: f64) -> f64 {
    const A_2NH: f64 = 0.0256e-6; // m² (0.0256 mm² = 160 µm square)
    A_2NH * (l_henry / 2e-9).powf(0.8)
}

/// Footprint of a PMOS active inductor replacing a spiral of comparable
/// peaking, m². Active inductors are just two transistors plus a bias
/// device; the paper's claim is that this is ≈ 20 % (or less) of the
/// spiral footprint.
#[must_use]
pub fn active_inductor(w: f64, l: f64, ldiff: f64) -> f64 {
    // PMOS load pair + gate bias resistor, with wiring overhead.
    (2.0 * mosfet(w, l, ldiff) + poly_resistor(10.0, 0.4e-6)) * WIRING_OVERHEAD
}

/// Converts m² to mm² for reporting.
#[must_use]
pub fn to_mm2(area_m2: f64) -> f64 {
    area_m2 * 1e6
}

/// An accumulating area budget for a circuit block.
///
/// ```
/// use cml_pdk::area::AreaBudget;
///
/// let mut b = AreaBudget::new("demo");
/// b.add_mosfet(10e-6, 0.18e-6, 0.48e-6);
/// b.add_mosfet(10e-6, 0.18e-6, 0.48e-6);
/// assert!(b.total_mm2() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AreaBudget {
    name: String,
    device_area: f64,
    /// Areas that already include their own overhead (spirals, pads).
    fixed_area: f64,
    devices: usize,
}

impl AreaBudget {
    /// Creates an empty budget for a named block.
    #[must_use]
    pub fn new(name: &str) -> Self {
        AreaBudget {
            name: name.to_string(),
            device_area: 0.0,
            fixed_area: 0.0,
            devices: 0,
        }
    }

    /// Block name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one MOSFET of the given geometry.
    pub fn add_mosfet(&mut self, w: f64, l: f64, ldiff: f64) {
        self.device_area += mosfet(w, l, ldiff);
        self.devices += 1;
    }

    /// Adds a poly resistor of the given value at the process sheet
    /// resistance and a 0.4 µm strip width.
    pub fn add_resistor(&mut self, ohms: f64) {
        let squares = ohms / crate::process::RPOLY_SHEET;
        self.device_area += poly_resistor(squares, 0.4e-6);
        self.devices += 1;
    }

    /// Adds a MIM capacitor of the given value.
    pub fn add_capacitor(&mut self, farads: f64) {
        self.device_area += mim_capacitor(farads);
        self.devices += 1;
    }

    /// Adds a spiral inductor (counted at full footprint, no overhead
    /// multiplier — spirals already include their keep-out).
    pub fn add_spiral(&mut self, l_henry: f64) {
        self.fixed_area += spiral_inductor(l_henry);
        self.devices += 1;
    }

    /// Merges another budget into this one.
    pub fn merge(&mut self, other: &AreaBudget) {
        self.device_area += other.device_area;
        self.fixed_area += other.fixed_area;
        self.devices += other.devices;
    }

    /// Number of devices counted.
    #[must_use]
    pub fn num_devices(&self) -> usize {
        self.devices
    }

    /// Total block area in m², wiring overhead applied to device area.
    #[must_use]
    pub fn total_m2(&self) -> f64 {
        self.device_area * WIRING_OVERHEAD + self.fixed_area
    }

    /// Total block area in mm².
    #[must_use]
    pub fn total_mm2(&self) -> f64 {
        to_mm2(self.total_m2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mosfet_area_formula() {
        let a = mosfet(10e-6, 0.18e-6, 0.48e-6);
        assert!((a - 10e-6 * 1.14e-6).abs() < 1e-18);
    }

    #[test]
    fn spiral_is_much_larger_than_active_inductor() {
        let spiral = spiral_inductor(2e-9);
        let active = active_inductor(8e-6, 0.18e-6, 0.48e-6);
        // The paper claims active inductors cut ≥ 80 % of the area.
        assert!(
            active < 0.2 * spiral,
            "active {active:.3e} vs spiral {spiral:.3e}"
        );
    }

    #[test]
    fn spiral_area_grows_sublinearly() {
        let a1 = spiral_inductor(1e-9);
        let a4 = spiral_inductor(4e-9);
        assert!(a4 > a1);
        assert!(a4 < 4.0 * a1);
    }

    #[test]
    fn budget_accumulates_and_merges() {
        let mut b1 = AreaBudget::new("block1");
        b1.add_mosfet(10e-6, 0.18e-6, 0.48e-6);
        b1.add_resistor(200.0);
        let mut b2 = AreaBudget::new("block2");
        b2.add_capacitor(50e-15);
        let solo1 = b1.total_m2();
        let solo2 = b2.total_m2();
        b1.merge(&b2);
        assert!((b1.total_m2() - (solo1 + solo2)).abs() < 1e-18);
        assert_eq!(b1.num_devices(), 3);
    }

    #[test]
    fn spiral_counts_without_overhead() {
        let mut b = AreaBudget::new("tank");
        b.add_spiral(2e-9);
        assert!((b.total_m2() - spiral_inductor(2e-9)).abs() < 1e-18);
    }

    #[test]
    fn unit_conversion() {
        assert!((to_mm2(1e-6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn typical_cml_cell_area_is_order_correct() {
        // A CML buffer: 6 transistors + 2 resistors should land in the
        // hundreds of µm² with overhead — the paper's 0.008 mm² output
        // interface holds three buffers plus peaking circuit.
        let mut b = AreaBudget::new("cml-buffer");
        for _ in 0..6 {
            b.add_mosfet(8e-6, 0.18e-6, 0.48e-6);
        }
        b.add_resistor(150.0);
        b.add_resistor(150.0);
        let mm2 = b.total_mm2();
        assert!(mm2 > 1e-4 && mm2 < 5e-3, "cell = {mm2} mm²");
    }
}
