//! Process corners, temperature models and device model-card factory.

use crate::{L_MIN, T_NOMINAL};
use cml_spice::devices::mosfet::{MosParams, MosType};

/// Gate-oxide capacitance per area for tox = 4.1 nm, F/m².
const COX: f64 = 8.42e-3;
/// Gate overlap capacitance per width, F/m.
const COV: f64 = 3.0e-10;
/// Junction capacitance per area, F/m².
const CJ: f64 = 1.0e-3;
/// Source/drain diffusion extension, m.
const LDIFF: f64 = 0.48e-6;

/// Typical NMOS transconductance parameter at 27 °C, A/V².
const KP_N: f64 = 170e-6;
/// Typical PMOS transconductance parameter at 27 °C, A/V².
const KP_P: f64 = 60e-6;
/// Typical threshold magnitude at 27 °C, V (both polarities).
const VTH0: f64 = 0.45;
/// Channel-length-modulation coefficient at L = 0.18 µm, 1/V.
/// Scaled with 1/L for longer devices.
const LAMBDA_LMIN: f64 = 0.30;

/// Threshold temperature drift, V/°C (magnitude decreases when hot).
const VTH_TC: f64 = -1.0e-3;
/// Mobility temperature exponent: µ ∝ (T/T0)^MU_EXP.
const MU_EXP: f64 = -1.5;

/// VTH shift applied by fast/slow corners, volts.
const CORNER_DVTH: f64 = 0.06;
/// Relative KP shift applied by fast/slow corners.
const CORNER_DKP: f64 = 0.12;

/// Poly resistor sheet resistance, Ω/square.
pub const RPOLY_SHEET: f64 = 7.8;
/// MIM capacitor density, F/m² (≈ 1 fF/µm²).
pub const CMIM_DENSITY: f64 = 1.0e-3;

/// Process corner: the first letter is the NMOS speed, the second the
/// PMOS speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Corner {
    /// Typical-typical.
    #[default]
    Tt,
    /// Fast-fast.
    Ff,
    /// Slow-slow.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl Corner {
    /// All five corners, for corner sweeps.
    pub const ALL: [Corner; 5] = [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf];

    /// Speed sign for the NMOS device: +1 fast, 0 typical, −1 slow.
    #[must_use]
    pub fn nmos_speed(self) -> f64 {
        match self {
            Corner::Tt => 0.0,
            Corner::Ff | Corner::Fs => 1.0,
            Corner::Ss | Corner::Sf => -1.0,
        }
    }

    /// Speed sign for the PMOS device: +1 fast, 0 typical, −1 slow.
    #[must_use]
    pub fn pmos_speed(self) -> f64 {
        match self {
            Corner::Tt => 0.0,
            Corner::Ff | Corner::Sf => 1.0,
            Corner::Ss | Corner::Fs => -1.0,
        }
    }

    /// Short display name (`"TT"`, `"FF"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
            Corner::Fs => "FS",
            Corner::Sf => "SF",
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A 0.18 µm process instance: one corner at one junction temperature.
///
/// All model cards handed out by this factory are consistent with each
/// other, so whole netlists can be generated under a single corner and
/// swept by rebuilding with another `Pdk018`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pdk018 {
    corner: Corner,
    temp_c: f64,
}

impl Default for Pdk018 {
    fn default() -> Self {
        Pdk018::typical()
    }
}

impl Pdk018 {
    /// Typical corner at the nominal 27 °C.
    #[must_use]
    pub fn typical() -> Self {
        Pdk018 {
            corner: Corner::Tt,
            temp_c: T_NOMINAL,
        }
    }

    /// A specific corner and junction temperature (−40 … 125 °C is the
    /// qualified range; values outside are accepted but extrapolated).
    #[must_use]
    pub fn new(corner: Corner, temp_c: f64) -> Self {
        Pdk018 { corner, temp_c }
    }

    /// The process corner.
    #[must_use]
    pub fn corner(&self) -> Corner {
        self.corner
    }

    /// Junction temperature, °C.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temp_c
    }

    fn mobility_factor(&self) -> f64 {
        ((self.temp_c + 273.15) / (T_NOMINAL + 273.15)).powf(MU_EXP)
    }

    fn vth(&self, speed: f64) -> f64 {
        (VTH0 + VTH_TC * (self.temp_c - T_NOMINAL) - speed * CORNER_DVTH).max(0.05)
    }

    fn kp(&self, nominal: f64, speed: f64) -> f64 {
        nominal * self.mobility_factor() * (1.0 + speed * CORNER_DKP)
    }

    /// NMOS model card for the given drawn width and length (meters).
    ///
    /// # Panics
    ///
    /// Panics if `l < L_MIN` or `w <= 0`.
    #[must_use]
    pub fn nmos(&self, w: f64, l: f64) -> MosParams {
        assert!(l >= L_MIN * 0.999, "channel length below process minimum");
        assert!(w > 0.0, "width must be positive");
        let speed = self.corner.nmos_speed();
        MosParams {
            mos_type: MosType::Nmos,
            w,
            l,
            vth0: self.vth(speed),
            kp: self.kp(KP_N, speed),
            lambda: LAMBDA_LMIN * L_MIN / l,
            cox: COX,
            cov: COV,
            cj: CJ,
            ldiff: LDIFF,
        }
    }

    /// PMOS model card for the given drawn width and length (meters).
    ///
    /// # Panics
    ///
    /// Panics if `l < L_MIN` or `w <= 0`.
    #[must_use]
    pub fn pmos(&self, w: f64, l: f64) -> MosParams {
        assert!(l >= L_MIN * 0.999, "channel length below process minimum");
        assert!(w > 0.0, "width must be positive");
        let speed = self.corner.pmos_speed();
        MosParams {
            mos_type: MosType::Pmos,
            w,
            l,
            vth0: self.vth(speed),
            kp: self.kp(KP_P, speed),
            lambda: LAMBDA_LMIN * L_MIN / l,
            cox: COX,
            cov: COV,
            cj: CJ,
            ldiff: LDIFF,
        }
    }

    /// Poly resistor value for a strip of the given width and length
    /// (meters): `RPOLY_SHEET · l / w`, with ±15 % across slow/fast corners.
    #[must_use]
    pub fn poly_resistor(&self, w: f64, l: f64) -> f64 {
        let speed = (self.corner.nmos_speed() + self.corner.pmos_speed()) / 2.0;
        RPOLY_SHEET * (l / w) * (1.0 - 0.15 * speed)
    }

    /// MIM capacitor value for the given plate area (m²).
    #[must_use]
    pub fn mim_capacitor(&self, area: f64) -> f64 {
        CMIM_DENSITY * area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_nmos_card_is_sane() {
        let pdk = Pdk018::typical();
        let m = pdk.nmos(10e-6, 0.18e-6);
        assert_eq!(m.mos_type, MosType::Nmos);
        assert!((m.vth0 - 0.45).abs() < 1e-12);
        assert!((m.kp - 170e-6).abs() < 1e-12);
        assert!((m.lambda - 0.30).abs() < 1e-12);
    }

    #[test]
    fn pmos_is_slower_than_nmos() {
        let pdk = Pdk018::typical();
        assert!(pdk.pmos(10e-6, 0.18e-6).kp < pdk.nmos(10e-6, 0.18e-6).kp);
    }

    #[test]
    fn lambda_shrinks_with_length() {
        let pdk = Pdk018::typical();
        let short = pdk.nmos(10e-6, 0.18e-6).lambda;
        let long = pdk.nmos(10e-6, 0.72e-6).lambda;
        assert!((long - short / 4.0).abs() < 1e-12);
    }

    #[test]
    fn hot_devices_are_slower() {
        let hot = Pdk018::new(Corner::Tt, 125.0);
        let cold = Pdk018::new(Corner::Tt, -40.0);
        assert!(hot.nmos(1e-6, L_MIN).kp < cold.nmos(1e-6, L_MIN).kp);
        // VTH magnitude shrinks when hot.
        assert!(hot.nmos(1e-6, L_MIN).vth0 < cold.nmos(1e-6, L_MIN).vth0);
    }

    #[test]
    fn corners_order_drive_strength() {
        let kp = |c: Corner| Pdk018::new(c, T_NOMINAL).nmos(1e-6, L_MIN).kp;
        assert!(kp(Corner::Ff) > kp(Corner::Tt));
        assert!(kp(Corner::Tt) > kp(Corner::Ss));
        // FS has a fast NMOS.
        assert!(kp(Corner::Fs) > kp(Corner::Tt));
        // SF has a slow NMOS.
        assert!(kp(Corner::Sf) < kp(Corner::Tt));
    }

    #[test]
    fn skewed_corners_split_polarities() {
        let fs = Pdk018::new(Corner::Fs, T_NOMINAL);
        assert!(fs.nmos(1e-6, L_MIN).kp > 170e-6);
        assert!(fs.pmos(1e-6, L_MIN).kp < 60e-6);
    }

    #[test]
    #[should_panic(expected = "below process minimum")]
    fn sub_minimum_length_rejected() {
        let _ = Pdk018::typical().nmos(1e-6, 0.1e-6);
    }

    #[test]
    fn poly_resistor_squares() {
        let pdk = Pdk018::typical();
        // 10 squares.
        let r = pdk.poly_resistor(0.4e-6, 4e-6);
        assert!((r - 78.0).abs() < 1e-9);
    }

    #[test]
    fn mim_density() {
        let pdk = Pdk018::typical();
        // 100 µm² → 100 fF.
        let c = pdk.mim_capacitor(100e-12);
        assert!((c - 100e-15).abs() < 1e-20);
    }

    #[test]
    fn corner_names_and_all() {
        assert_eq!(Corner::ALL.len(), 5);
        assert_eq!(Corner::Tt.to_string(), "TT");
        assert_eq!(Corner::Sf.name(), "SF");
    }
}
