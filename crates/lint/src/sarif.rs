//! SARIF 2.1.0 rendering for lint and analysis reports.
//!
//! One run per invocation, one [rule] per stable diagnostic code — `L001`…
//! for the netlist linter, `A001`… for the static analyzer — so that SARIF
//! viewers (GitHub code scanning, VS Code) can group, filter, and suppress
//! by code. Severities map `error → error`, `warning → warning`,
//! `info → note`. Circuits have no file/line provenance, so findings carry
//! [logical locations] (element and node names) instead of physical ones.
//!
//! [rule]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html#_Toc34317556
//! [logical locations]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html#_Toc34317670

use crate::{Diagnostic, LintCode, LintReport, Severity};
use cml_spice::analyze::{AnalysisReport, AnalyzeCode, Finding};
use serde::Value;

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

fn text(s: &str) -> Value {
    Value::Obj(vec![("text".into(), Value::Str(s.into()))])
}

fn rule(id: &str, title: &str, hint: &str, sev: Severity) -> Value {
    Value::Obj(vec![
        ("id".into(), Value::Str(id.into())),
        ("name".into(), Value::Str(title.into())),
        ("shortDescription".into(), text(title)),
        ("help".into(), text(hint)),
        (
            "defaultConfiguration".into(),
            Value::Obj(vec![("level".into(), Value::Str(level(sev).into()))]),
        ),
    ])
}

/// One SARIF `result` object. `input` labels which netlist/builtin the
/// finding came from (SARIF has no native multi-input notion for logical
/// locations, so it rides in `properties`).
fn result(
    input: &str,
    code: &str,
    sev: Severity,
    message: &str,
    element: Option<&str>,
    nodes: &[String],
) -> Value {
    let mut logical = Vec::new();
    if let Some(e) = element {
        logical.push(Value::Obj(vec![
            ("name".into(), Value::Str(e.into())),
            ("kind".into(), Value::Str("element".into())),
        ]));
    }
    for n in nodes {
        logical.push(Value::Obj(vec![
            ("name".into(), Value::Str(n.clone())),
            ("kind".into(), Value::Str("node".into())),
        ]));
    }
    Value::Obj(vec![
        ("ruleId".into(), Value::Str(code.into())),
        ("level".into(), Value::Str(level(sev).into())),
        ("message".into(), text(message)),
        (
            "locations".into(),
            Value::Arr(vec![Value::Obj(vec![(
                "logicalLocations".into(),
                Value::Arr(logical),
            )])]),
        ),
        (
            "properties".into(),
            Value::Obj(vec![("input".into(), Value::Str(input.into()))]),
        ),
    ])
}

fn sarif_log(rules: Vec<Value>, results: Vec<Value>) -> Value {
    let driver = Value::Obj(vec![
        ("name".into(), Value::Str("cml-lint".into())),
        (
            "version".into(),
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("rules".into(), Value::Arr(rules)),
    ]);
    Value::Obj(vec![
        (
            "$schema".into(),
            Value::Str("https://json.schemastore.org/sarif-2.1.0.json".into()),
        ),
        ("version".into(), Value::Str("2.1.0".into())),
        (
            "runs".into(),
            Value::Arr(vec![Value::Obj(vec![
                ("tool".into(), Value::Obj(vec![("driver".into(), driver)])),
                ("results".into(), Value::Arr(results)),
            ])]),
        ),
    ])
}

fn diag_result(input: &str, d: &Diagnostic) -> Value {
    result(
        input,
        d.code.as_str(),
        d.severity(),
        &d.message,
        d.element.as_deref(),
        &d.nodes,
    )
}

fn finding_result(input: &str, f: &Finding) -> Value {
    result(
        input,
        f.code.as_str(),
        f.severity(),
        &f.message,
        f.element.as_deref(),
        &f.nodes,
    )
}

/// SARIF log for a batch of linted inputs, one rule per `L` code.
#[must_use]
pub fn lint_to_sarif(inputs: &[(String, LintReport)], min: Severity) -> Value {
    let rules = LintCode::ALL
        .iter()
        .map(|c| rule(c.as_str(), c.title(), c.hint(), c.severity()))
        .collect();
    let results = inputs
        .iter()
        .flat_map(|(label, report)| report.at_least(min).map(|d| diag_result(label, d)))
        .collect();
    sarif_log(rules, results)
}

/// SARIF log for a batch of analyzed inputs, one rule per `A` code.
#[must_use]
pub fn analyze_to_sarif(inputs: &[(String, AnalysisReport)], min: Severity) -> Value {
    let rules = AnalyzeCode::ALL
        .iter()
        .map(|c| rule(c.as_str(), c.title(), c.hint(), c.severity()))
        .collect();
    let results = inputs
        .iter()
        .flat_map(|(label, report)| {
            report
                .findings
                .iter()
                .filter(move |f| f.severity() >= min)
                .map(|f| finding_result(label, f))
        })
        .collect();
    sarif_log(rules, results)
}
