//! `cml-lint` — lint or statically analyze SPICE netlists (or the paper's
//! generated blocks) without running any simulation.
//!
//! ```text
//! cml-lint [analyze] [--format text|json|sarif] [--level error|warning|info]
//!          [--builtin buffer|equalizer|bmvr|la|all] [--codes]
//!          [FILES... | -]
//! cml-lint cache stats|clear|verify [--format text|json]
//! cml-lint forensics BUNDLE... [--format text|json] [--replay]
//! ```
//!
//! The default mode runs the structural netlist linter (`L` codes). The
//! `analyze` subcommand runs the abstract-interpretation circuit analyzer
//! instead (`A` codes): interval operating-point bounds, conditioning
//! prediction, and the stiffness spectrum. The `cache` subcommand
//! inspects and manages the on-disk topology artifact store
//! (`CML_CACHE_DIR`): `stats` summarizes it, `clear` empties it, and
//! `verify` re-validates every entry's header and checksum, deleting
//! any corrupt file. The `forensics` subcommand validates and inspects
//! the `CMLF` flight bundles the solver dumps on failure
//! (`CML_FLIGHT_DIR`); with `--replay` it re-runs the recorded failure
//! and checks the residual trajectory reproduces bit-for-bit.
//!
//! Each positional argument is a netlist file in the dialect emitted by
//! `Circuit::netlist()` (`-` reads stdin). Exit status: 0 when every
//! input is free of error-level diagnostics, 1 when any input has
//! errors, 2 on usage or parse failure.

use cml_lint::{
    analysis_to_json, builtin_circuit, forensics, lint, parse_netlist, report_to_json, sarif,
    LintCode, LintReport, Severity, BUILTIN_NAMES,
};
use cml_spice::analyze::{self, AnalysisReport, AnalyzeCode};
use cml_spice::flight::FlightBundle;
use cml_spice::Circuit;
use serde::Value;
use std::io::Read;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    analyze: bool,
    format: Format,
    min: Severity,
    builtins: Vec<String>,
    files: Vec<String>,
    codes: bool,
}

fn usage() -> &'static str {
    "usage: cml-lint [analyze] [--format text|json|sarif] [--level error|warning|info]\n\
     \x20               [--builtin buffer|equalizer|bmvr|la|all] [--codes] [FILES... | -]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        analyze: false,
        format: Format::Text,
        min: Severity::Info,
        builtins: Vec::new(),
        files: Vec::new(),
        codes: false,
    };
    let mut it = args.iter().enumerate();
    while let Some((i, arg)) = it.next() {
        match arg.as_str() {
            "analyze" if i == 0 => opts.analyze = true,
            "--format" => match it.next().map(|(_, s)| s.as_str()) {
                Some("json") => opts.format = Format::Json,
                Some("text") => opts.format = Format::Text,
                Some("sarif") => opts.format = Format::Sarif,
                other => return Err(format!("--format expects text|json|sarif, got {other:?}")),
            },
            "--level" => match it.next().map(|(_, s)| s.as_str()) {
                Some("error") => opts.min = Severity::Error,
                Some("warning") => opts.min = Severity::Warning,
                Some("info") => opts.min = Severity::Info,
                other => return Err(format!("--level expects error|warning|info, got {other:?}")),
            },
            "--builtin" => match it.next().map(|(_, s)| s.as_str()) {
                Some("all") => opts
                    .builtins
                    .extend(BUILTIN_NAMES.iter().map(|s| (*s).to_string())),
                Some(name) if BUILTIN_NAMES.contains(&name) => {
                    opts.builtins.push(name.to_string());
                }
                other => {
                    return Err(format!(
                        "--builtin expects {}|all, got {other:?}",
                        BUILTIN_NAMES.join("|")
                    ))
                }
            },
            "--codes" => opts.codes = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.codes && opts.files.is_empty() && opts.builtins.is_empty() {
        return Err("no inputs: give netlist files, '-', or --builtin".to_string());
    }
    Ok(opts)
}

fn print_code_table(analyze_mode: bool) {
    if analyze_mode {
        for code in AnalyzeCode::ALL {
            println!(
                "{}  {:<7}  {}",
                code.as_str(),
                code.severity(),
                code.title()
            );
        }
    } else {
        for code in LintCode::ALL {
            println!(
                "{}  {:<7}  {}",
                code.as_str(),
                code.severity(),
                code.title()
            );
        }
    }
}

/// Lints one named circuit; returns (had_errors, report).
fn lint_one(label: &str, ckt: &Circuit, opts: &Options) -> (bool, LintReport) {
    let report = lint(ckt);
    let had_errors = report.has_errors();
    if opts.format == Format::Text {
        let body = report.render(opts.min);
        let shown = report.at_least(opts.min).count();
        if shown == 0 {
            println!("{label}: clean");
        } else {
            println!(
                "{label}: {} error(s), {} warning(s), {} info(s)",
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info)
            );
            print!("{body}");
        }
    }
    (had_errors, report)
}

/// Analyzes one named circuit; returns (had_errors, report).
fn analyze_one(label: &str, ckt: &Circuit, opts: &Options) -> (bool, AnalysisReport) {
    let report = analyze::analyze(ckt);
    let had_errors = report.has_errors();
    if opts.format == Format::Text {
        let body = report.render(opts.min);
        if body.is_empty() {
            println!("{label}: clean");
        } else {
            println!(
                "{label}: {} error(s), {} warning(s), {} info(s)",
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info)
            );
            print!("{body}");
        }
        if let Some(s) = &report.stiffness {
            println!(
                "  spectrum: tau in [{:.3e}, {:.3e}] s over {} reactive node(s), dt0 ~ {:.3e} s",
                s.tau_min, s.tau_max, s.reactive_nodes, s.recommended_dt
            );
        }
        let c = &report.conditioning;
        println!(
            "  matrix: dim {} nnz {} ({}), worst row spread {:.1e}",
            c.dim,
            c.nnz,
            if c.recommended_sparse {
                "prefer sparse"
            } else {
                "prefer dense"
            },
            c.max_row_spread
        );
    }
    (had_errors, report)
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn print_json(v: &Value) -> Result<(), ExitCode> {
    match serde_json::to_string_pretty(v) {
        Ok(s) => {
            println!("{s}");
            Ok(())
        }
        Err(e) => {
            eprintln!("cml-lint: json: {e}");
            Err(ExitCode::from(2))
        }
    }
}

/// `cml-lint forensics BUNDLE... [--format text|json] [--replay]`.
///
/// Validates each `CMLF` flight bundle (magic, version, checksum,
/// content fingerprint) and prints its contents; with `--replay`, also
/// re-runs the recorded failure and checks the residual trajectory
/// reproduces bit-for-bit. Exit status: 0 when every bundle validates
/// (and, with `--replay`, reproduces), 1 when any check fails, 2 on
/// usage errors.
fn forensics_main(args: &[String]) -> ExitCode {
    const FORENSICS_USAGE: &str =
        "usage: cml-lint forensics BUNDLE... [--format text|json] [--replay]";
    let mut json = false;
    let mut replay = false;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "cml-lint: --format expects text|json, got {other:?}\n{FORENSICS_USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--replay" => replay = true,
            "--help" | "-h" => {
                println!("{FORENSICS_USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => files.push(arg),
            other => {
                eprintln!("cml-lint: unknown forensics argument '{other}'\n{FORENSICS_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if files.is_empty() {
        eprintln!("cml-lint: forensics needs at least one bundle file\n{FORENSICS_USAGE}");
        return ExitCode::from(2);
    }
    let mut any_bad = false;
    let mut rendered = Vec::new();
    for path in files {
        let bundle = match FlightBundle::read(std::path::Path::new(path)) {
            Ok(b) => b,
            Err(e) => {
                any_bad = true;
                if json {
                    rendered.push(Value::Obj(vec![
                        ("file".to_string(), Value::Str(path.clone())),
                        ("valid".to_string(), Value::Bool(false)),
                        ("error".to_string(), Value::Str(e.to_string())),
                    ]));
                } else {
                    println!("{path}: INVALID — {e}");
                }
                continue;
            }
        };
        let replay_report = if replay {
            match forensics::replay_check(&bundle) {
                Ok(r) => {
                    any_bad |= !r.ok();
                    Some(r)
                }
                Err(msg) => {
                    any_bad = true;
                    if !json {
                        println!("{path}: replay failed — {msg}");
                    }
                    None
                }
            }
        } else {
            None
        };
        if json {
            let mut obj = vec![
                ("file".to_string(), Value::Str(path.clone())),
                ("valid".to_string(), Value::Bool(true)),
                ("bundle".to_string(), bundle.to_value()),
            ];
            if let Some(r) = &replay_report {
                obj.push(("replay".to_string(), r.to_value()));
            }
            rendered.push(Value::Obj(obj));
        } else {
            let error = bundle
                .error
                .as_ref()
                .map_or("none (snapshot)".to_string(), |(_, msg)| msg.clone());
            println!("{path}: VALID (cml-flight-v{})", bundle.version);
            println!("  analysis:    {}", bundle.analysis);
            println!("  content:     {:016x}", bundle.content_hash);
            println!("  topology:    {:016x}", bundle.topology_hash);
            println!("  error:       {error}");
            println!(
                "  trajectory:  {} iterations, {} events held ({} dropped)",
                bundle.trajectory.len(),
                bundle.events.len(),
                bundle.events_dropped
            );
            if let Some(r) = &replay_report {
                println!(
                    "  replay:      {}",
                    if !r.supported {
                        "not supported for this analysis".to_string()
                    } else if r.ok() {
                        "reproduced (trajectory bit-exact)".to_string()
                    } else {
                        format!(
                            "MISMATCH (error_reproduced={}, trajectory_match={})",
                            r.error_reproduced, r.trajectory_match
                        )
                    }
                );
            }
        }
    }
    if json {
        if let Err(code) = print_json(&Value::Arr(rendered)) {
            return code;
        }
    }
    if any_bad {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `cml-lint cache stats|clear|verify [--format text|json]`.
fn cache_main(args: &[String]) -> ExitCode {
    const CACHE_USAGE: &str = "usage: cml-lint cache stats|clear|verify [--format text|json]";
    let mut action: Option<&str> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            a @ ("stats" | "clear" | "verify") if action.is_none() => action = Some(a),
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("cml-lint: --format expects text|json, got {other:?}\n{CACHE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{CACHE_USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("cml-lint: unknown cache argument '{other}'\n{CACHE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(action) = action else {
        eprintln!("cml-lint: cache needs an action\n{CACHE_USAGE}");
        return ExitCode::from(2);
    };
    if cml_cache::disk_dir().is_none() {
        eprintln!(
            "cml-lint: no disk cache configured (set CML_CACHE_DIR, and keep CML_CACHE enabled)"
        );
        return ExitCode::from(2);
    }
    match action {
        "stats" => {
            let stats = cml_cache::disk::disk_stats();
            let dir = stats
                .dir
                .as_ref()
                .map_or_else(String::new, |d| d.display().to_string());
            if json {
                let per_kind: Vec<Value> = stats
                    .per_kind
                    .iter()
                    .map(|(kind, n)| {
                        Value::Obj(vec![
                            ("kind".to_string(), Value::Str((*kind).to_string())),
                            ("entries".to_string(), Value::Num(*n as f64)),
                        ])
                    })
                    .collect();
                let v = Value::Obj(vec![
                    ("dir".to_string(), Value::Str(dir)),
                    ("entries".to_string(), Value::Num(stats.entries as f64)),
                    (
                        "total_bytes".to_string(),
                        Value::Num(stats.total_bytes as f64),
                    ),
                    ("per_kind".to_string(), Value::Arr(per_kind)),
                ]);
                if let Err(code) = print_json(&v) {
                    return code;
                }
            } else {
                println!("cache dir: {dir}");
                println!("entries:   {} ({} bytes)", stats.entries, stats.total_bytes);
                for (kind, n) in &stats.per_kind {
                    if *n > 0 {
                        println!("  {kind:<6} {n}");
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "clear" => {
            let removed = cml_cache::disk::clear();
            if json {
                let v = Value::Obj(vec![("removed".to_string(), Value::Num(removed as f64))]);
                if let Err(code) = print_json(&v) {
                    return code;
                }
            } else {
                println!(
                    "removed {removed} cache entr{}",
                    if removed == 1 { "y" } else { "ies" }
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            let report = cml_cache::disk::verify();
            if json {
                let v = Value::Obj(vec![
                    ("ok".to_string(), Value::Num(report.ok as f64)),
                    ("corrupt".to_string(), Value::Num(report.corrupt as f64)),
                    (
                        "corrupt_files".to_string(),
                        Value::Arr(
                            report
                                .corrupt_files
                                .iter()
                                .map(|f| Value::Str(f.clone()))
                                .collect(),
                        ),
                    ),
                ]);
                if let Err(code) = print_json(&v) {
                    return code;
                }
            } else {
                println!(
                    "{} entr{} valid",
                    report.ok,
                    if report.ok == 1 { "y" } else { "ies" }
                );
                for f in &report.corrupt_files {
                    println!("  removed corrupt entry {f}");
                }
            }
            if report.corrupt > 0 {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("cache") {
        return cache_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("forensics") {
        return forensics_main(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("cml-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.codes {
        print_code_table(opts.analyze);
        if opts.files.is_empty() && opts.builtins.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let mut inputs: Vec<(String, Circuit)> = Vec::new();
    for name in &opts.builtins {
        let Some(ckt) = builtin_circuit(name) else {
            eprintln!("cml-lint: unknown builtin '{name}'");
            return ExitCode::from(2);
        };
        inputs.push((format!("builtin:{name}"), ckt));
    }
    for path in &opts.files {
        let text = match read_input(path) {
            Ok(t) => t,
            Err(msg) => {
                eprintln!("cml-lint: {msg}");
                return ExitCode::from(2);
            }
        };
        match parse_netlist(&text) {
            Ok(c) => inputs.push((path.clone(), c)),
            Err(e) => {
                eprintln!("cml-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut any_errors = false;
    let rendered = if opts.analyze {
        let mut reports = Vec::new();
        for (label, ckt) in &inputs {
            let (errs, report) = analyze_one(label, ckt, &opts);
            any_errors |= errs;
            reports.push((label.clone(), report));
        }
        match opts.format {
            Format::Text => None,
            Format::Json => Some(Value::Arr(
                reports
                    .iter()
                    .map(|(label, r)| {
                        let mut obj = vec![("input".to_string(), Value::Str(label.clone()))];
                        if let Value::Obj(fields) = analysis_to_json(r, opts.min) {
                            obj.extend(fields);
                        }
                        Value::Obj(obj)
                    })
                    .collect(),
            )),
            Format::Sarif => Some(sarif::analyze_to_sarif(&reports, opts.min)),
        }
    } else {
        let mut reports = Vec::new();
        for (label, ckt) in &inputs {
            let (errs, report) = lint_one(label, ckt, &opts);
            any_errors |= errs;
            reports.push((label.clone(), report));
        }
        match opts.format {
            Format::Text => None,
            Format::Json => Some(Value::Arr(
                reports
                    .iter()
                    .map(|(label, r)| {
                        let mut obj = vec![("input".to_string(), Value::Str(label.clone()))];
                        if let Value::Obj(fields) = report_to_json(r, opts.min) {
                            obj.extend(fields);
                        }
                        Value::Obj(obj)
                    })
                    .collect(),
            )),
            Format::Sarif => Some(sarif::lint_to_sarif(&reports, opts.min)),
        }
    };

    if let Some(v) = rendered {
        if let Err(code) = print_json(&v) {
            return code;
        }
    }
    if any_errors {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
