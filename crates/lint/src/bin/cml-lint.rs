//! `cml-lint` — lint SPICE netlists (or the paper's generated blocks)
//! without running any simulation.
//!
//! ```text
//! cml-lint [--format text|json] [--level error|warning|info]
//!          [--builtin buffer|equalizer|bmvr|la|all] [--codes]
//!          [FILES... | -]
//! ```
//!
//! Each positional argument is a netlist file in the dialect emitted by
//! `Circuit::netlist()` (`-` reads stdin). Exit status: 0 when every
//! input lints free of error-level diagnostics, 1 when any input has
//! errors, 2 on usage or parse failure.

use cml_lint::{
    builtin_circuit, lint, parse_netlist, report_to_json, LintCode, Severity, BUILTIN_NAMES,
};
use serde::Value;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    json: bool,
    min: Severity,
    builtins: Vec<String>,
    files: Vec<String>,
    codes: bool,
}

fn usage() -> &'static str {
    "usage: cml-lint [--format text|json] [--level error|warning|info]\n\
     \x20               [--builtin buffer|equalizer|bmvr|la|all] [--codes] [FILES... | -]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        min: Severity::Info,
        builtins: Vec::new(),
        files: Vec::new(),
        codes: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--level" => match it.next().map(String::as_str) {
                Some("error") => opts.min = Severity::Error,
                Some("warning") => opts.min = Severity::Warning,
                Some("info") => opts.min = Severity::Info,
                other => return Err(format!("--level expects error|warning|info, got {other:?}")),
            },
            "--builtin" => match it.next().map(String::as_str) {
                Some("all") => opts
                    .builtins
                    .extend(BUILTIN_NAMES.iter().map(|s| (*s).to_string())),
                Some(name) if BUILTIN_NAMES.contains(&name) => {
                    opts.builtins.push(name.to_string());
                }
                other => {
                    return Err(format!(
                        "--builtin expects {}|all, got {other:?}",
                        BUILTIN_NAMES.join("|")
                    ))
                }
            },
            "--codes" => opts.codes = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.codes && opts.files.is_empty() && opts.builtins.is_empty() {
        return Err("no inputs: give netlist files, '-', or --builtin".to_string());
    }
    Ok(opts)
}

fn print_code_table() {
    for code in LintCode::ALL {
        println!(
            "{}  {:<7}  {}",
            code.as_str(),
            code.severity(),
            code.title()
        );
    }
}

/// Lints one named circuit; returns (had_errors, json fragment).
fn lint_one(label: &str, ckt: &cml_spice::Circuit, opts: &Options) -> (bool, Value) {
    let report = lint(ckt);
    let had_errors = report.has_errors();
    if !opts.json {
        let body = report.render(opts.min);
        let shown = report.at_least(opts.min).count();
        if shown == 0 {
            println!("{label}: clean");
        } else {
            println!(
                "{label}: {} error(s), {} warning(s), {} info(s)",
                report.count(Severity::Error),
                report.count(Severity::Warning),
                report.count(Severity::Info)
            );
            print!("{body}");
        }
    }
    let mut obj = vec![("input".to_string(), Value::Str(label.to_string()))];
    if let Value::Obj(fields) = report_to_json(&report, opts.min) {
        obj.extend(fields);
    }
    (had_errors, Value::Obj(obj))
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("cml-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if opts.codes {
        print_code_table();
        if opts.files.is_empty() && opts.builtins.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let mut results: Vec<Value> = Vec::new();
    let mut any_errors = false;
    for name in &opts.builtins {
        let Some(ckt) = builtin_circuit(name) else {
            eprintln!("cml-lint: unknown builtin '{name}'");
            return ExitCode::from(2);
        };
        let (errs, json) = lint_one(&format!("builtin:{name}"), &ckt, &opts);
        any_errors |= errs;
        results.push(json);
    }
    for path in &opts.files {
        let text = match read_input(path) {
            Ok(t) => t,
            Err(msg) => {
                eprintln!("cml-lint: {msg}");
                return ExitCode::from(2);
            }
        };
        let ckt = match parse_netlist(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cml-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let (errs, json) = lint_one(path, &ckt, &opts);
        any_errors |= errs;
        results.push(json);
    }

    if opts.json {
        match serde_json::to_string_pretty(&Value::Arr(results)) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("cml-lint: json: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if any_errors {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
