//! Flight-bundle forensics: inspect and replay-check the `CMLF`
//! bundles the solver's flight recorder dumps on failure
//! (`cml_spice::flight`, enabled by `CML_FLIGHT_DIR`).
//!
//! This lives in `cml-lint` rather than `cml-spice` because replay
//! needs the netlist *parser* (the simulator only prints netlists), and
//! the parser lives here. The `cml-lint forensics` subcommand is a thin
//! CLI over these functions; tests drive them directly.
//!
//! Two checks are offered:
//!
//! * **validate** — [`FlightBundle::read`] already verifies magic,
//!   version, length, checksum and the content fingerprint; a bundle
//!   that loads at all is structurally sound.
//! * **replay** — re-parse the embedded netlist, re-run the recorded
//!   analysis with the recorded [`NewtonOptions`], and compare the
//!   fresh residual trajectory against the recorded one **bit for
//!   bit**. A failing solve is deterministic, so anything short of an
//!   exact match means the bundle and the code have drifted apart
//!   (or the bundle lies about its options).

use crate::parse_netlist;
use cml_spice::analysis::op;
use cml_spice::flight::FlightBundle;
use cml_telemetry::Telemetry;
use serde::Value;

/// Outcome of replaying a bundle's recorded failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The analysis the bundle recorded.
    pub analysis: String,
    /// Whether this analysis kind can be replayed standalone. Only
    /// operating-point bundles are (`"op"`, plus the `"dc"` sweep-level
    /// duplicates that wrap a failing op rung); transient/AC replays
    /// would need the full sweep context the bundle doesn't carry.
    pub supported: bool,
    /// Whether the re-run failed again (a flight bundle records a
    /// failure, so a replay that *succeeds* is itself a finding).
    pub error_reproduced: bool,
    /// The re-run's error rendering, when it failed.
    pub replayed_error: Option<String>,
    /// Residual trajectory of the re-run's final Newton attempt.
    pub replayed_trajectory: Vec<f64>,
    /// Whether the re-run trajectory matches the recorded one
    /// bit-for-bit (vacuously `false` for unsupported analyses).
    pub trajectory_match: bool,
}

impl ReplayReport {
    /// Overall verdict: the replay either doesn't apply or fully
    /// reproduced the recorded failure.
    #[must_use]
    pub fn ok(&self) -> bool {
        !self.supported || (self.error_reproduced && self.trajectory_match)
    }

    /// JSON rendering for `--format json`.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("analysis".into(), Value::Str(self.analysis.clone())),
            ("supported".into(), Value::Bool(self.supported)),
            (
                "error_reproduced".into(),
                Value::Bool(self.error_reproduced),
            ),
            (
                "replayed_error".into(),
                self.replayed_error.clone().map_or(Value::Null, Value::Str),
            ),
            (
                "replayed_iterations".into(),
                Value::Num(self.replayed_trajectory.len() as f64),
            ),
            (
                "trajectory_match".into(),
                Value::Bool(self.trajectory_match),
            ),
            ("ok".into(), Value::Bool(self.ok())),
        ])
    }
}

/// Re-runs the failure a bundle recorded and compares trajectories.
///
/// The replay runs with a private enabled [`Telemetry`] handle so the
/// fresh residual trajectory can be captured without touching the
/// caller's counters. If a flight directory is configured in this
/// process, the replayed failure dumps its *own* bundle like any other
/// failing solve — forensics on that second bundle converges (same
/// fingerprint), so this is surprising but harmless.
///
/// # Errors
///
/// A human-readable message when the embedded netlist does not parse —
/// which, for a bundle that passed fingerprint validation, means the
/// printer and parser have diverged.
pub fn replay_check(bundle: &FlightBundle) -> Result<ReplayReport, String> {
    let ckt = parse_netlist(&bundle.netlist)
        .map_err(|e| format!("embedded netlist line {}: {}", e.line, e.message))?;
    let supported = matches!(bundle.analysis.as_str(), "op" | "dc");
    if !supported {
        return Ok(ReplayReport {
            analysis: bundle.analysis.clone(),
            supported: false,
            error_reproduced: false,
            replayed_error: None,
            replayed_trajectory: Vec::new(),
            trajectory_match: false,
        });
    }
    let tel = Telemetry::enabled();
    let res = op::solve_traced(&ckt, &bundle.options, None, &tel);
    let replayed_trajectory = tel.residual_trajectory();
    let trajectory_match = bundle.trajectory_matches(&replayed_trajectory);
    Ok(ReplayReport {
        analysis: bundle.analysis.clone(),
        supported: true,
        error_reproduced: res.is_err(),
        replayed_error: res.err().map(|e| e.to_string()),
        replayed_trajectory,
        trajectory_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_spice::analysis::NewtonOptions;
    use cml_spice::flight::FLIGHT_VERSION;

    fn divider_bundle(analysis: &str, trajectory: Vec<f64>) -> FlightBundle {
        FlightBundle {
            version: FLIGHT_VERSION,
            content_hash: 1,
            topology_hash: 2,
            analysis: analysis.to_string(),
            error: None,
            netlist: "* divider\nV1 in 0 DC 1\nR1 in out 1000\nR2 out 0 1000\n.end\n".to_string(),
            options: NewtonOptions::default(),
            seed: None,
            trajectory,
            events: Vec::new(),
            events_dropped: 0,
            fingerprint: 0,
            report_json: "{}".to_string(),
        }
    }

    #[test]
    fn replay_of_healthy_op_bundle_solves_and_flags_mismatch() {
        // A bundle claiming a divider "failed" with some trajectory:
        // replay solves fine, so error_reproduced is false and the
        // made-up trajectory doesn't match.
        let report = replay_check(&divider_bundle("op", vec![9.0, 8.0])).unwrap();
        assert!(report.supported);
        assert!(!report.error_reproduced);
        assert!(!report.trajectory_match);
        assert!(!report.ok());
    }

    #[test]
    fn unsupported_analysis_is_vacuously_ok() {
        let report = replay_check(&divider_bundle("tran", Vec::new())).unwrap();
        assert!(!report.supported);
        assert!(report.ok());
    }

    #[test]
    fn bad_netlist_is_a_typed_message() {
        let mut b = divider_bundle("op", Vec::new());
        b.netlist = "Q1 what is this 1000\n".to_string();
        assert!(replay_check(&b).is_err());
    }
}
