//! `cml-lint` — user-facing front end for the pre-simulation netlist
//! linter.
//!
//! The diagnostics engine itself lives in [`cml_spice::lint`] (it needs
//! the element introspection API and is run by every analysis entry
//! point as a mandatory precheck); this crate adds what a *tool* needs
//! on top of the engine:
//!
//! * a parser for the SPICE-card netlist format that
//!   [`cml_spice::Circuit::netlist`] emits (see [`parse_netlist`]), so
//!   exported netlists round-trip back into lintable circuits,
//! * machine-readable JSON rendering of a [`LintReport`]
//!   ([`report_to_json`]),
//! * builders for the paper's generated blocks ([`builtin_circuit`]),
//!   mirroring `examples/netlist_export.rs`,
//! * the `cml-lint` CLI binary (`src/bin/cml-lint.rs`).
//!
//! # Example
//!
//! ```
//! use cml_lint::{lint, parse_netlist, Severity};
//!
//! let ckt = parse_netlist(
//!     "V1 in 0 DC 1.0\n\
//!      R1 in out 1e3\n\
//!      R2 out 0 1e3\n\
//!      .end\n",
//! )
//! .unwrap();
//! assert!(!lint(&ckt).has_errors());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cml_spice::devices::diode::{Diode, DiodeParams};
use cml_spice::devices::mosfet::{MosParams, Mosfet};
use cml_spice::elements::sources::{Isource, Vsource};
use cml_spice::elements::two_terminal::{Capacitor, Inductor, Resistor};
use cml_spice::Circuit;
use serde::Value;
use std::fmt;

pub use cml_spice::lint::{
    duplicate_element_names, lint, precheck, Diagnostic, LintCode, LintReport, Severity,
};

pub mod forensics;
pub mod sarif;

/// Error from [`parse_netlist`]: the offending line and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_f64(tok: &str, line: usize, what: &str) -> Result<f64, ParseError> {
    tok.parse::<f64>()
        .map_err(|_| err(line, format!("invalid {what} '{tok}'")))
}

/// Value of a `KEY=number` token, case-insensitive on the key.
fn keyed_f64(tok: &str, key: &str, line: usize) -> Result<Option<f64>, ParseError> {
    let Some((k, v)) = tok.split_once('=') else {
        return Ok(None);
    };
    if !k.eq_ignore_ascii_case(key) {
        return Ok(None);
    }
    parse_f64(v, line, key).map(Some)
}

/// Parses the netlist-card dialect emitted by
/// [`cml_spice::Circuit::netlist`]:
///
/// * `R<name> a b <ohms>` / `C<name> a b <farads>` / `L<name> a b <henries>`
/// * `V<name> a b DC <volts>` / `I<name> a b DC <amps>`
/// * `M<name> d g s b nmos|pmos W=<m> L=<m>`
/// * `D<name> a k IS=<amps> N=<n>`
/// * `*` comment lines, blank lines, and a terminating `.end`
///
/// Node `0` (or `gnd`, any case) is ground. MOSFET cards get the typical
/// 0.18 µm process parameters from [`cml_pdk::Pdk018`] at the card's
/// W/L. Unsupported cards are an error — better to refuse than to lint a
/// circuit that is not the one described.
///
/// # Errors
///
/// [`ParseError`] with the 1-based line number on the first malformed or
/// unsupported card.
pub fn parse_netlist(text: &str) -> Result<Circuit, ParseError> {
    let pdk = cml_pdk::Pdk018::typical();
    let mut ckt = Circuit::new();
    for (i, raw_line) in text.lines().enumerate() {
        let lno = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if line.eq_ignore_ascii_case(".end") {
            break;
        }
        if line.starts_with('.') {
            return Err(err(lno, format!("unsupported directive '{line}'")));
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let head = toks[0];
        let Some(kind) = head.chars().next() else {
            continue;
        };
        // The full token is the element name, SPICE-style: `R1` and `V1`
        // are distinct elements even though both end in `1`.
        let name = head;
        if head.len() == kind.len_utf8() {
            return Err(err(lno, format!("element card '{head}' has no name")));
        }
        match kind.to_ascii_uppercase() {
            'R' | 'C' | 'L' => {
                if toks.len() != 4 {
                    return Err(err(lno, format!("expected '{head} a b value'")));
                }
                let a = ckt.node(toks[1]);
                let b = ckt.node(toks[2]);
                let v = parse_f64(toks[3], lno, "value")?;
                match kind.to_ascii_uppercase() {
                    'R' => ckt.add(Resistor::new(name, a, b, v)),
                    'C' => ckt.add(Capacitor::new(name, a, b, v)),
                    _ => ckt.add(Inductor::new(name, a, b, v)),
                }
            }
            'V' | 'I' => {
                if toks.len() != 5 || !toks[3].eq_ignore_ascii_case("dc") {
                    return Err(err(lno, format!("expected '{head} a b DC value'")));
                }
                let a = ckt.node(toks[1]);
                let b = ckt.node(toks[2]);
                let v = parse_f64(toks[4], lno, "value")?;
                if kind.eq_ignore_ascii_case(&'V') {
                    ckt.add(Vsource::dc(name, a, b, v));
                } else {
                    ckt.add(Isource::dc(name, a, b, v));
                }
            }
            'M' => {
                if toks.len() != 8 {
                    return Err(err(
                        lno,
                        format!("expected '{head} d g s b nmos|pmos W=.. L=..'"),
                    ));
                }
                let d = ckt.node(toks[1]);
                let g = ckt.node(toks[2]);
                let s = ckt.node(toks[3]);
                let b = ckt.node(toks[4]);
                let w = keyed_f64(toks[6], "W", lno)?
                    .ok_or_else(|| err(lno, format!("expected W=.., got '{}'", toks[6])))?;
                let l = keyed_f64(toks[7], "L", lno)?
                    .ok_or_else(|| err(lno, format!("expected L=.., got '{}'", toks[7])))?;
                let params: MosParams = match toks[5].to_ascii_lowercase().as_str() {
                    "nmos" => pdk.nmos(w, l),
                    "pmos" => pdk.pmos(w, l),
                    other => return Err(err(lno, format!("unknown MOSFET type '{other}'"))),
                };
                ckt.add(Mosfet::new(name, d, g, s, b, params));
            }
            'D' => {
                if toks.len() != 5 {
                    return Err(err(lno, format!("expected '{head} a k IS=.. N=..'")));
                }
                let a = ckt.node(toks[1]);
                let k = ckt.node(toks[2]);
                let is = keyed_f64(toks[3], "IS", lno)?
                    .ok_or_else(|| err(lno, format!("expected IS=.., got '{}'", toks[3])))?;
                let n = keyed_f64(toks[4], "N", lno)?
                    .ok_or_else(|| err(lno, format!("expected N=.., got '{}'", toks[4])))?;
                let params = DiodeParams {
                    is,
                    n,
                    ..DiodeParams::default()
                };
                ckt.add(Diode::new(name, a, k, params));
            }
            other => {
                return Err(err(lno, format!("unsupported element card '{other}'")));
            }
        }
    }
    Ok(ckt)
}

/// Builds one of the paper's generated blocks — the same circuits
/// `examples/netlist_export.rs` exports, plus the composed interface
/// blocks. `which` is one of `buffer`, `equalizer`, `bmvr`, `la`, `gain`,
/// `input` or `output`; returns `None` for anything else.
#[must_use]
pub fn builtin_circuit(which: &str) -> Option<Circuit> {
    use cml_core::cells::{
        add_diff_drive, add_supply, bmvr, cml_buffer, equalizer, gain_stage, input_interface,
        limiting_amp, output_stage, DiffPort,
    };
    let pdk = cml_pdk::Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    match which {
        "buffer" => {
            let cfg = cml_buffer::CmlBufferConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                cml_buffer::output_common_mode(&cfg),
                None,
            );
            cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
        }
        "equalizer" => {
            let cfg = equalizer::EqualizerConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
            equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
        }
        "bmvr" => {
            bmvr::build(
                &mut ckt,
                &pdk,
                &bmvr::BmvrConfig::paper_default(),
                "bmvr",
                vdd,
            );
        }
        "la" => {
            let cfg = limiting_amp::LimitingAmpConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                limiting_amp::common_mode(&cfg),
                None,
            );
            limiting_amp::build(&mut ckt, &pdk, &cfg, "la", input, output, vdd);
        }
        "gain" => {
            let cfg = gain_stage::GainStageConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                gain_stage::output_common_mode(&cfg),
                None,
            );
            gain_stage::build(&mut ckt, &pdk, &cfg, "gs", input, output, vdd);
        }
        "input" => {
            let cfg = input_interface::InputInterfaceConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                cfg.equalizer.input_common_mode(),
                None,
            );
            input_interface::build(&mut ckt, &pdk, &cfg, "ii", input, output, vdd);
        }
        "output" => {
            let cfg = output_stage::OutputInterfaceConfig::paper_default();
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(&mut ckt, "VIN", input, 1.55, None);
            output_stage::build_output_interface(&mut ckt, &pdk, &cfg, "oi", input, output, vdd);
            ckt.add(Resistor::new("RTp", vdd, output.p, 50.0));
            ckt.add(Resistor::new("RTn", vdd, output.n, 50.0));
        }
        _ => return None,
    }
    Some(ckt)
}

/// Names of all builtin blocks, in the order the CLI lints them for
/// `--builtin all`.
pub const BUILTIN_NAMES: [&str; 7] = [
    "buffer",
    "equalizer",
    "bmvr",
    "la",
    "gain",
    "input",
    "output",
];

/// Converts one diagnostic to a JSON value.
#[must_use]
pub fn diagnostic_to_json(d: &Diagnostic) -> Value {
    Value::Obj(vec![
        ("code".into(), Value::Str(d.code.as_str().into())),
        ("severity".into(), Value::Str(d.severity().to_string())),
        ("title".into(), Value::Str(d.code.title().into())),
        (
            "element".into(),
            match &d.element {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        ),
        (
            "nodes".into(),
            Value::Arr(d.nodes.iter().map(|n| Value::Str(n.clone())).collect()),
        ),
        ("message".into(), Value::Str(d.message.clone())),
        ("hint".into(), Value::Str(d.code.hint().into())),
    ])
}

/// Converts a report to a JSON value: a summary plus the diagnostics at
/// or above `min`.
#[must_use]
pub fn report_to_json(report: &LintReport, min: Severity) -> Value {
    let diags: Vec<Value> = report.at_least(min).map(diagnostic_to_json).collect();
    Value::Obj(vec![
        (
            "errors".into(),
            Value::Num(report.count(Severity::Error) as f64),
        ),
        (
            "warnings".into(),
            Value::Num(report.count(Severity::Warning) as f64),
        ),
        (
            "infos".into(),
            Value::Num(report.count(Severity::Info) as f64),
        ),
        ("diagnostics".into(), Value::Arr(diags)),
    ])
}

/// Converts one analyzer finding to a JSON value.
#[must_use]
pub fn finding_to_json(f: &cml_spice::analyze::Finding) -> Value {
    Value::Obj(vec![
        ("code".into(), Value::Str(f.code.as_str().into())),
        ("severity".into(), Value::Str(f.severity().to_string())),
        ("title".into(), Value::Str(f.code.title().into())),
        (
            "element".into(),
            match &f.element {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        ),
        (
            "nodes".into(),
            Value::Arr(f.nodes.iter().map(|n| Value::Str(n.clone())).collect()),
        ),
        ("message".into(), Value::Str(f.message.clone())),
        ("hint".into(), Value::Str(f.code.hint().into())),
    ])
}

/// Converts a static-analysis report to a JSON value: node bounds, per-pass
/// summaries, and the findings at or above `min`.
#[must_use]
pub fn analysis_to_json(report: &cml_spice::analyze::AnalysisReport, min: Severity) -> Value {
    let num = |x: f64| {
        if x.is_finite() {
            Value::Num(x)
        } else {
            Value::Null // JSON has no ±inf; null marks an unbounded side
        }
    };
    let bounds: Vec<Value> = report
        .node_bounds
        .iter()
        .map(|b| {
            Value::Obj(vec![
                ("node".into(), Value::Str(b.node.clone())),
                ("lo".into(), num(b.lo)),
                ("hi".into(), num(b.hi)),
            ])
        })
        .collect();
    let mosfets: Vec<Value> = report
        .mosfets
        .iter()
        .map(|m| {
            Value::Obj(vec![
                ("element".into(), Value::Str(m.element.clone())),
                ("vgs_lo".into(), num(m.vgs.0)),
                ("vgs_hi".into(), num(m.vgs.1)),
                ("vds_lo".into(), num(m.vds.0)),
                ("vds_hi".into(), num(m.vds.1)),
                (
                    "regions".into(),
                    Value::Arr(
                        m.regions()
                            .iter()
                            .map(|r| Value::Str((*r).into()))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let c = &report.conditioning;
    let conditioning = Value::Obj(vec![
        ("dim".into(), Value::Num(c.dim as f64)),
        ("nnz".into(), Value::Num(c.nnz as f64)),
        ("density".into(), num(c.density)),
        (
            "recommended_sparse".into(),
            Value::Bool(c.recommended_sparse),
        ),
        ("max_row_spread".into(), num(c.max_row_spread)),
        (
            "worst_row".into(),
            match &c.worst_row {
                Some(r) => Value::Str(r.clone()),
                None => Value::Null,
            },
        ),
        (
            "empty_rows".into(),
            Value::Arr(c.empty_rows.iter().map(|r| Value::Str(r.clone())).collect()),
        ),
    ]);
    let stiffness = match &report.stiffness {
        Some(s) => Value::Obj(vec![
            ("tau_min".into(), num(s.tau_min)),
            ("tau_max".into(), num(s.tau_max)),
            ("tau_min_node".into(), Value::Str(s.tau_min_node.clone())),
            ("tau_max_node".into(), Value::Str(s.tau_max_node.clone())),
            ("stiffness_ratio".into(), num(s.stiffness_ratio)),
            ("recommended_dt".into(), num(s.recommended_dt)),
            ("reactive_nodes".into(), Value::Num(s.reactive_nodes as f64)),
        ]),
        None => Value::Null,
    };
    let findings: Vec<Value> = report
        .findings
        .iter()
        .filter(|f| f.severity() >= min)
        .map(finding_to_json)
        .collect();
    Value::Obj(vec![
        (
            "fixpoint".into(),
            Value::Obj(vec![
                ("sweeps".into(), Value::Num(report.fixpoint.sweeps as f64)),
                ("converged".into(), Value::Bool(report.fixpoint.converged)),
                (
                    "conflicts".into(),
                    Value::Num(report.fixpoint.conflicts as f64),
                ),
            ]),
        ),
        ("node_bounds".into(), Value::Arr(bounds)),
        ("mosfets".into(), Value::Arr(mosfets)),
        ("conditioning".into(), conditioning),
        ("stiffness".into(), stiffness),
        ("findings".into(), Value::Arr(findings)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_roundtrip_divider() {
        let text = "* comment\nV1 in 0 DC 1.8\nR1 in out 5e4\nR2 out gnd 5e4\n.end\n";
        let ckt = parse_netlist(text).expect("parse");
        assert_eq!(ckt.num_elements(), 3);
        let report = lint(&ckt);
        assert!(!report.has_errors(), "{}", report.render(Severity::Info));
    }

    #[test]
    fn exported_netlists_reparse() {
        use cml_spice::element::DcTransfer;
        for which in BUILTIN_NAMES {
            let ckt = builtin_circuit(which).expect("builtin");
            let text = ckt.netlist();
            // Vcvs/Vccs render as comment cards and are exactly the
            // elements with an opaque DC transfer (the output driver's
            // peaking Vccs, for instance); everything else must
            // round-trip through the exporter and parser.
            let concrete = ckt
                .elements()
                .filter(|e| !matches!(e.dc_transfer(), DcTransfer::Opaque))
                .count();
            let reparsed =
                parse_netlist(&text).unwrap_or_else(|e| panic!("reparse of '{which}' failed: {e}"));
            assert_eq!(reparsed.num_elements(), concrete, "{which}");
            assert_eq!(reparsed.num_nodes(), ckt.num_nodes(), "{which}");
        }
    }

    #[test]
    fn parse_error_reports_line() {
        let e = parse_netlist("V1 in 0 DC 1.0\nQ1 a b c\n").expect_err("must fail");
        assert_eq!(e.line, 2);
        assert!(e.message.contains('Q'));
    }

    #[test]
    fn mosfet_card_parses_type_and_dims() {
        let text = "V1 d 0 DC 1.8\nVG g 0 DC 1.0\nM1 d g 0 0 nmos W=2.000e-5 L=1.800e-7\n.end\n";
        let ckt = parse_netlist(text).expect("parse");
        assert_eq!(ckt.num_elements(), 3);
        assert!(!lint(&ckt).has_errors());
    }

    #[test]
    fn json_report_shape() {
        let ckt = parse_netlist("I1 0 x DC 1e-3\nR1 x 0 1e3\n.end\n").expect("parse");
        let report = lint(&ckt);
        let json = report_to_json(&report, Severity::Info);
        let text = serde_json::to_string(&json).expect("json");
        let parsed = serde_json::parse(&text).expect("reparse");
        assert_eq!(parsed.get("errors"), Some(&Value::Num(0.0)));
        assert!(parsed.get("diagnostics").is_some());
    }
}
