//! Closed-loop soundness suite for the static analyzer.
//!
//! The analyzer's core contract: the interval operating-point bounds must
//! contain the converged Newton solution for every circuit the solver can
//! handle — checked here over every builtin seed cell, plus the telemetry
//! cross-checks and the warm-start path.

use cml_lint::{builtin_circuit, BUILTIN_NAMES};
use cml_spice::analysis::op;
use cml_spice::analysis::NewtonOptions;
use cml_spice::analyze;
use cml_spice::circuit::Circuit;
use cml_spice::element::DcTransfer;
use cml_spice::telemetry::Telemetry;
use cml_spice::NodeId;

/// Whether the cell contains elements the interval pass cannot model
/// (controlled sources); for those, unbounded boxes and `A001` are the
/// *correct* sound answer, not a defect.
fn has_opaque(ckt: &Circuit) -> bool {
    ckt.elements()
        .any(|e| matches!(e.dc_transfer(), DcTransfer::Opaque))
}

#[test]
fn interval_bounds_contain_op_on_every_builtin() {
    for which in BUILTIN_NAMES {
        let ckt = builtin_circuit(which).expect("builtin");
        let report = analyze::analyze(&ckt);
        let op = op::solve(&ckt).unwrap_or_else(|e| panic!("op({which}) failed: {e}"));
        let violations = analyze::check_op(&ckt, &report, &op);
        assert!(
            violations.is_empty(),
            "{which}: {} prediction violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The fixpoint must actually do useful work on fully-modeled cells:
        // every node bounded, no feasibility conflicts. Opaque-containing
        // cells are allowed unbounded nodes (sound ignorance near the
        // controlled source) but must still satisfy containment above.
        assert_eq!(report.fixpoint.conflicts, 0, "{which}: conflicts");
        if !has_opaque(&ckt) {
            for nb in &report.node_bounds {
                assert!(
                    nb.lo.is_finite() && nb.hi.is_finite(),
                    "{which}: node {} unbounded [{}, {}]",
                    nb.node,
                    nb.lo,
                    nb.hi
                );
            }
        }
    }
}

#[test]
fn no_analysis_findings_above_warning_on_builtins() {
    use cml_lint::Severity;
    for which in BUILTIN_NAMES {
        let ckt = builtin_circuit(which).expect("builtin");
        let report = analyze::analyze(&ckt);
        assert!(
            !report.at_least(Severity::Error),
            "{which}:\n{}",
            report.render(Severity::Info)
        );
        // A001 fires exactly when the cell contains an opaque element.
        let a001 = report
            .findings
            .iter()
            .any(|f| f.code == analyze::AnalyzeCode::UnmodeledElement);
        assert_eq!(
            a001,
            has_opaque(&ckt),
            "{which}: A001 mismatch\n{}",
            report.render(Severity::Info)
        );
    }
}

#[test]
fn telemetry_cross_check_is_clean_on_builtins() {
    for which in BUILTIN_NAMES {
        let ckt = builtin_circuit(which).expect("builtin");
        let tel = Telemetry::enabled();
        let report = analyze::analyze_traced(&ckt, &analyze::AnalyzeOptions::default(), &tel);
        let _op = op::solve_traced(&ckt, &NewtonOptions::default(), None, &tel)
            .unwrap_or_else(|e| panic!("op({which}) failed: {e}"));
        let counters = tel.report().counters;
        assert!(counters.analyze_runs >= 1, "{which}: analyze_runs");
        let violations = analyze::check_counters_traced(&report, &counters, &tel);
        assert!(
            violations.is_empty(),
            "{which}: conditioning prediction contradicted: {}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn warm_start_converges_to_same_operating_point() {
    for which in BUILTIN_NAMES {
        let ckt = builtin_circuit(which).expect("builtin");
        let cold = op::solve(&ckt).unwrap_or_else(|e| panic!("cold op({which}): {e}"));
        let warm_opts = NewtonOptions {
            warm_start_from_analysis: true,
            ..NewtonOptions::default()
        };
        let warm = op::solve_with(&ckt, &warm_opts, None)
            .unwrap_or_else(|e| panic!("warm op({which}): {e}"));
        for raw in 1..ckt.num_nodes() {
            let node = NodeId::from_raw(u32::try_from(raw).expect("node id"));
            let (vc, vw) = (cold.voltage(node), warm.voltage(node));
            assert!(
                (vc - vw).abs() <= 1e-4 + 1e-3 * vc.abs(),
                "{which}: node {} cold {vc} vs warm {vw}",
                ckt.node_name(node)
            );
        }
    }
}

#[test]
fn midpoints_are_inside_bounds_and_finite() {
    for which in BUILTIN_NAMES {
        let ckt = builtin_circuit(which).expect("builtin");
        let bounds = analyze::dc_bounds(&ckt, 1e-12);
        assert_eq!(bounds.len(), ckt.num_nodes());
        for (raw, b) in bounds.iter().enumerate().skip(1) {
            let m = b.midpoint();
            assert!(m.is_finite(), "{which}: node {raw} midpoint");
            assert!(
                b.contains(m),
                "{which}: node {raw} midpoint {m} outside [{}, {}]",
                b.lo,
                b.hi
            );
        }
    }
}
