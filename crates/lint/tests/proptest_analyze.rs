//! Property test for the analyzer's central soundness claim: on any
//! randomly generated circuit whose error-level lint is clean and whose
//! operating point converges, the interval bounds from the abstract
//! interpretation contain the converged node voltages — for every node,
//! every time. A single containment violation would mean the interval
//! transfer functions are unsound, not just imprecise.

use cml_lint::{lint, Severity};
use cml_spice::analysis::op;
use cml_spice::analyze;
use cml_spice::prelude::*;
use proptest::prelude::*;

const NODE_POOL: [&str; 5] = ["n0", "n1", "n2", "n3", "n4"];

/// Builds a random circuit from a seed: elements drawn from
/// {R, C, V, I, D} with random terminals over a small node pool (ground
/// included), unique names, sane values. Diodes join the pool here —
/// unlike the lint proptest — because the analyzer has a nonlinear
/// junction transfer function worth stressing.
fn random_circuit(seed: u64, n_elems: usize) -> Circuit {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = NODE_POOL.iter().map(|n| ckt.node(n)).collect();
    let pick_node = |r: u32| -> NodeId {
        let i = (r as usize) % (nodes.len() + 1);
        if i == nodes.len() {
            Circuit::GROUND
        } else {
            nodes[i]
        }
    };
    for k in 0..n_elems {
        let a = pick_node(next());
        let b = pick_node(next());
        match next() % 5 {
            0 => ckt.add(Resistor::new(
                &format!("R{k}"),
                a,
                b,
                10.0 + f64::from(next() % 100_000),
            )),
            1 => ckt.add(Capacitor::new(&format!("C{k}"), a, b, 1e-12)),
            2 => ckt.add(Vsource::dc(
                &format!("V{k}"),
                a,
                b,
                f64::from(next() % 300) / 100.0,
            )),
            3 => ckt.add(Isource::dc(
                &format!("I{k}"),
                a,
                b,
                f64::from(next() % 1000) * 1e-5,
            )),
            _ => ckt.add(Diode::new(&format!("D{k}"), a, b, DiodeParams::default())),
        }
    }
    ckt
}

proptest! {
    /// Interval op bounds contain the converged op on every lint-clean,
    /// solvable random circuit, and the closed-loop check agrees.
    #[test]
    fn interval_bounds_contain_converged_op(
        seed in any::<u64>(),
        n_elems in 1usize..12,
    ) {
        let ckt = random_circuit(seed, n_elems);
        if lint(&ckt).has_errors() {
            return Ok(()); // linter rejects it before any analysis would run
        }
        let Ok(op) = op::solve(&ckt) else {
            return Ok(()); // analyzer only promises containment of a converged op
        };
        let report = analyze::analyze(&ckt);
        let violations = analyze::check_op(&ckt, &report, &op);
        prop_assert!(
            violations.is_empty(),
            "containment violated on seed {seed} ({n_elems} elems):\n{}\nreport:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n"),
            report.render(Severity::Info)
        );
        // Spot-check the raw bounds too: check_op and dc_bounds must agree.
        let bounds = analyze::dc_bounds(&ckt, 1e-12);
        for (raw, b) in bounds.iter().enumerate().take(ckt.num_nodes()).skip(1) {
            let node = NodeId::from_raw(u32::try_from(raw).expect("node id"));
            let v = op.voltage(node);
            prop_assert!(
                b.contains(v),
                "node {} = {v} outside [{}, {}] (seed {seed})",
                ckt.node_name(node),
                b.lo,
                b.hi
            );
        }
    }
}
