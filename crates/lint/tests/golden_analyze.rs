//! Golden-code fixtures for the static analyzer: one minimal circuit per
//! `A` code, each asserting that exactly that code fires — the mirror of
//! `golden_codes.rs` for the lint `L` codes. Also carries the unit-aware
//! L009 regression fixtures (a 1 fF parasitic must lint clean while a
//! 1 fΩ "resistor" must not).

use cml_lint::{lint, LintCode, Severity};
use cml_spice::analysis::op;
use cml_spice::analyze::{self, AnalyzeCode};
use cml_spice::prelude::*;

/// All distinct codes present in a full analysis of `ckt`.
fn fired(report: &analyze::AnalysisReport) -> Vec<AnalyzeCode> {
    let mut codes: Vec<AnalyzeCode> = report.findings.iter().map(|f| f.code).collect();
    codes.dedup();
    codes
}

/// Asserts the circuit's analysis fires `code` and nothing else.
fn assert_only(ckt: &Circuit, code: AnalyzeCode) -> analyze::AnalysisReport {
    let report = analyze::analyze(ckt);
    assert_eq!(
        fired(&report),
        vec![code],
        "expected only {code:?}, got:\n{}",
        report.render(Severity::Info)
    );
    report
}

/// A grounded resistive divider driven by a 1 V source.
fn divider() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, out, 1e3));
    ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e3));
    ckt
}

#[test]
fn clean_divider_fires_nothing_and_bounds_tightly() {
    let ckt = divider();
    let report = analyze::analyze(&ckt);
    assert!(
        report.is_clean(),
        "divider should analyze clean:\n{}",
        report.render(Severity::Info)
    );
    assert!(report.fixpoint.converged);
    // The divider midpoint is exactly computable: 0.5 V within the pad.
    let b = report.bound_for("out").expect("out bound");
    assert!(b.lo <= 0.5 && 0.5 <= b.hi, "out: [{}, {}]", b.lo, b.hi);
    assert!(b.hi - b.lo < 0.1, "out box too wide: [{}, {}]", b.lo, b.hi);
}

#[test]
fn a001_unmodeled_element() {
    let mut ckt = divider();
    let out = ckt.node("out");
    let vin = ckt.node("in");
    let x = ckt.node("x");
    ckt.add(Vccs::new("G1", x, Circuit::GROUND, vin, out, 1e-3));
    ckt.add(Resistor::new("R3", x, Circuit::GROUND, 1e3));
    let report = assert_only(&ckt, AnalyzeCode::UnmodeledElement);
    assert_eq!(report.findings[0].element.as_deref(), Some("G1"));
}

#[test]
fn a002_predicted_cutoff() {
    // Common-source NMOS with its gate provably far below vth: the gate
    // divider tops out at 0.2 V while vth0 ≈ 0.5 V.
    let pdk = cml_pdk::Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
    ckt.add(Resistor::new("RG1", vdd, g, 8e3));
    ckt.add(Resistor::new("RG2", g, Circuit::GROUND, 1e3));
    ckt.add(Resistor::new("RD", vdd, d, 1e3));
    ckt.add(Mosfet::new(
        "M1",
        d,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        pdk.nmos(2e-6, 0.18e-6),
    ));
    let report = assert_only(&ckt, AnalyzeCode::PredictedCutoff);
    assert_eq!(report.findings[0].element.as_deref(), Some("M1"));
    let m = &report.mosfets[0];
    assert!(m.definite_cutoff, "prediction: {m:?}");
}

#[test]
fn a003_row_scale_imbalance() {
    // A node mixing a 1 mΩ and a 100 MΩ conductance: row magnitudes span
    // 1e11, past the 1e10 limit, while every resistor stays inside the
    // L009 plausible band.
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    let out = ckt.node("out");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, mid, 1e-3));
    ckt.add(Resistor::new("R2", mid, out, 1e8));
    ckt.add(Resistor::new("R3", out, Circuit::GROUND, 1e8));
    assert!(
        !lint(&ckt).has_errors(),
        "fixture should be lint-clean of errors"
    );
    assert_only(&ckt, AnalyzeCode::RowScaleImbalance);
}

#[test]
fn a004_empty_row() {
    // A node held only by a capacitor: at DC the capacitor stamps
    // nothing, so the node's row is numerically empty at every sampled
    // corner — the unknown is held by gmin alone.
    let mut ckt = Circuit::new();
    let x = ckt.node("x");
    let y = ckt.node("y");
    ckt.add(Vsource::dc("V1", x, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", x, Circuit::GROUND, 1e3));
    ckt.add(Capacitor::new("C1", x, y, 1e-12));
    assert_only(&ckt, AnalyzeCode::EmptyRow);
}

#[test]
fn a005_stiff_spectrum() {
    // Two RC poles seven decades apart: 1 kΩ‖1 pF (1 ns) versus
    // 1 kΩ‖10 µF (10 ms).
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let fast = ckt.node("fast");
    let slow = ckt.node("slow");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, fast, 1e3));
    ckt.add(Capacitor::new("C1", fast, Circuit::GROUND, 1e-12));
    ckt.add(Resistor::new("R2", vin, slow, 1e3));
    ckt.add(Capacitor::new("C2", slow, Circuit::GROUND, 1e-5));
    let report = assert_only(&ckt, AnalyzeCode::StiffSpectrum);
    let s = report.stiffness.as_ref().expect("stiffness summary");
    assert!(
        s.stiffness_ratio > 1e6,
        "ratio {:.3e} should exceed the limit",
        s.stiffness_ratio
    );
}

#[test]
fn a006_prediction_violation() {
    // A006 only comes from the closed-loop check: feed `check_op` an
    // operating point that provably lies outside the analyzed bounds —
    // here, the op of a 9:1 divider (out = 0.9 V) checked against the
    // analysis of the 1:1 divider (out ∈ ~[0.5, 0.5]). Both circuits
    // share the same node layout, so the op is structurally compatible.
    let ckt = divider();
    let report = analyze::analyze(&ckt);
    assert!(report.is_clean());

    let mut skewed = Circuit::new();
    let vin = skewed.node("in");
    let out = skewed.node("out");
    skewed.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    skewed.add(Resistor::new("R1", vin, out, 1e3));
    skewed.add(Resistor::new("R2", out, Circuit::GROUND, 9e3));
    let op = op::solve(&skewed).expect("op");

    let violations = analyze::check_op(&ckt, &report, &op);
    assert_eq!(violations.len(), 1, "one violated bound");
    assert_eq!(violations[0].code, AnalyzeCode::PredictionViolation);
}

// --- L009 unit-aware regression fixtures -------------------------------

/// All distinct lint codes fired by `ckt`.
fn lint_codes(ckt: &Circuit) -> Vec<LintCode> {
    let mut codes: Vec<LintCode> = lint(ckt).diagnostics.iter().map(|d| d.code).collect();
    codes.dedup();
    codes
}

#[test]
fn l009_femtofarad_parasitic_is_clean() {
    let mut ckt = divider();
    let out = ckt.node("out");
    ckt.add(Capacitor::new("Cp", out, Circuit::GROUND, 1e-15)); // 1 fF
    assert!(
        lint(&ckt).is_clean(),
        "1 fF parasitic must not fire L009:\n{}",
        lint(&ckt).render(Severity::Info)
    );
}

#[test]
fn l009_femtoohm_resistor_fires() {
    let mut ckt = divider();
    let out = ckt.node("out");
    ckt.add(Resistor::new("Rt", out, Circuit::GROUND, 1e-15)); // 1 fΩ typo
    assert!(lint_codes(&ckt).contains(&LintCode::ExtremeParameter));
}

#[test]
fn l009_zeptofarad_capacitor_fires() {
    let mut ckt = divider();
    let out = ckt.node("out");
    ckt.add(Capacitor::new("Cz", out, Circuit::GROUND, 1e-21));
    assert!(lint_codes(&ckt).contains(&LintCode::ExtremeParameter));
}

#[test]
fn l009_attohenry_inductor_fires() {
    let mut ckt = divider();
    let out = ckt.node("out");
    ckt.add(Inductor::new("Lz", out, Circuit::GROUND, 1e-18));
    assert!(lint_codes(&ckt).contains(&LintCode::ExtremeParameter));
}
