//! Property test for the linter's central soundness claim: any randomly
//! generated circuit that passes error-level lint has a solvable DC
//! system — `op()` never comes back with `Singular` (or panics) on a
//! circuit the linter waved through. Conversely, when the linter rejects
//! a circuit, the rejection must be a typed `LintRejected`, never a
//! panic.

use cml_lint::lint;
use cml_spice::prelude::*;
use cml_spice::SpiceError;
use proptest::prelude::*;

const NODE_POOL: [&str; 5] = ["n0", "n1", "n2", "n3", "n4"];

/// Builds a random linear circuit from a seed: elements drawn from
/// {R, C, V, I} with random terminals over a small node pool (ground
/// included), unique names, sane values.
fn random_circuit(seed: u64, n_elems: usize) -> Circuit {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = NODE_POOL.iter().map(|n| ckt.node(n)).collect();
    let pick_node = |r: u32| -> NodeId {
        let i = (r as usize) % (nodes.len() + 1);
        if i == nodes.len() {
            Circuit::GROUND
        } else {
            nodes[i]
        }
    };
    for k in 0..n_elems {
        let a = pick_node(next());
        let b = pick_node(next());
        match next() % 4 {
            0 => ckt.add(Resistor::new(
                &format!("R{k}"),
                a,
                b,
                10.0 + f64::from(next() % 100_000),
            )),
            1 => ckt.add(Capacitor::new(&format!("C{k}"), a, b, 1e-12)),
            2 => ckt.add(Vsource::dc(
                &format!("V{k}"),
                a,
                b,
                f64::from(next() % 300) / 100.0,
            )),
            _ => ckt.add(Isource::dc(
                &format!("I{k}"),
                a,
                b,
                f64::from(next() % 1000) * 1e-5,
            )),
        }
    }
    ckt
}

proptest! {
    /// Error-level-clean circuits solve; rejected circuits fail typed.
    #[test]
    fn lint_clean_implies_solvable_dc(
        seed in any::<u64>(),
        n_elems in 1usize..12,
    ) {
        let ckt = random_circuit(seed, n_elems);
        let report = lint(&ckt);
        let result = op::solve(&ckt);
        if report.has_errors() {
            // The precheck must reject with the structured error —
            // never a panic, never a bare Singular from inside Newton.
            prop_assert!(
                matches!(result, Err(SpiceError::LintRejected { .. })),
                "lint found errors but op returned {result:?}"
            );
        } else {
            // The linter passed it: the DC system must be solvable.
            prop_assert!(
                !matches!(result, Err(SpiceError::Singular { .. })),
                "lint-clean circuit came back singular: {result:?}\nnetlist:\n{}",
                ckt.netlist()
            );
            prop_assert!(
                !matches!(result, Err(SpiceError::LintRejected { .. })),
                "full lint clean but precheck rejected: {result:?}"
            );
        }
    }
}
