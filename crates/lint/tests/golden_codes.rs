//! Golden-code fixtures: one minimal circuit per diagnostic code, each
//! asserting that exactly that code fires — so a lint-pass change that
//! makes a code mis-fire (or leak a second code into a fixture) fails
//! loudly here, and the code table in DESIGN.md §9 stays honest.

use cml_lint::{lint, LintCode, Severity};
use cml_spice::prelude::*;

/// All distinct codes present in a full lint of `ckt`.
fn fired(ckt: &Circuit) -> Vec<LintCode> {
    let mut codes: Vec<LintCode> = lint(ckt).diagnostics.iter().map(|d| d.code).collect();
    codes.dedup();
    codes
}

/// Asserts the circuit fires `code` and nothing else.
fn assert_only(ckt: &Circuit, code: LintCode) {
    let report = lint(ckt);
    let codes = fired(ckt);
    assert_eq!(
        codes,
        vec![code],
        "expected only {code:?}, got:\n{}",
        report.render(Severity::Info)
    );
}

/// A grounded resistive divider driven by a 1 V source — the base
/// topology several fixtures extend.
fn divider() -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, out, 1e3));
    ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e3));
    ckt
}

#[test]
fn clean_circuit_fires_nothing() {
    let report = lint(&divider());
    assert!(
        report.is_clean(),
        "divider should be clean:\n{}",
        report.render(Severity::Info)
    );
}

#[test]
fn l001_floating_node() {
    let mut ckt = divider();
    ckt.node("orphan");
    assert_only(&ckt, LintCode::FloatingNode);
    let report = lint(&ckt);
    assert_eq!(report.diagnostics[0].nodes, vec!["orphan".to_string()]);
}

#[test]
fn l002_no_dc_path() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let x = ckt.node("x");
    let y = ckt.node("y");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("RL", vin, Circuit::GROUND, 1e3));
    ckt.add(Capacitor::new("C1", vin, x, 1e-12)); // caps are open at DC
    ckt.add(Resistor::new("R1", x, y, 1e3));
    assert_only(&ckt, LintCode::NoDcPath);
    let report = lint(&ckt);
    assert!(report.diagnostics[0].nodes.contains(&"x".to_string()));
    assert!(report.diagnostics[0].nodes.contains(&"y".to_string()));
}

#[test]
fn l003_voltage_loop() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
    ckt.add(Vsource::dc("V2", a, Circuit::GROUND, 1.0)); // parallel: KVL loop
    ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
    assert_only(&ckt, LintCode::VoltageLoop);
    let report = lint(&ckt);
    assert_eq!(report.diagnostics[0].element.as_deref(), Some("V2"));
}

#[test]
fn l004_current_cutset() {
    let mut ckt = Circuit::new();
    let x = ckt.node("x");
    ckt.add(Isource::dc("I1", Circuit::GROUND, x, 1e-3));
    ckt.add(Isource::dc("I2", x, Circuit::GROUND, 1e-3));
    assert_only(&ckt, LintCode::CurrentCutset);
}

#[test]
fn l005_structurally_singular() {
    // The VCCS output node is graph-connected (the linter treats the
    // output pair generously as conductive) but its matrix COLUMN is
    // empty: no equation depends on v(out), which only the structural
    // rank pass can see.
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, Circuit::GROUND, 1e3));
    ckt.add(Vccs::new(
        "G1",
        out,
        Circuit::GROUND,
        vin,
        Circuit::GROUND,
        1e-3,
    ));
    assert_only(&ckt, LintCode::StructuralSingular);
    let report = lint(&ckt);
    assert!(report.diagnostics[0].nodes.contains(&"out".to_string()));
}

#[test]
fn l006_duplicate_name() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, Circuit::GROUND, 1e3));
    ckt.add(Resistor::new("R1", vin, Circuit::GROUND, 2e3));
    assert_only(&ckt, LintCode::DuplicateName);
}

#[test]
fn l007_mosfet_drain_source_shorted() {
    let mut ckt = Circuit::new();
    let g = ckt.node("g");
    let x = ckt.node("x");
    let pdk = cml_pdk::Pdk018::typical();
    ckt.add(Vsource::dc("VG", g, Circuit::GROUND, 1.0));
    ckt.add(Mosfet::new(
        "M1",
        x,
        g,
        x,
        Circuit::GROUND,
        pdk.nmos(2e-6, 0.18e-6),
    ));
    ckt.add(Resistor::new("R1", x, Circuit::GROUND, 1e3));
    assert_only(&ckt, LintCode::MosfetDegenerate);
}

#[test]
fn l008_dead_source() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 0.0));
    ckt.add(Resistor::new("R1", vin, Circuit::GROUND, 1e3));
    assert_only(&ckt, LintCode::DeadSource);
}

#[test]
fn l009_extreme_parameter() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 1.0));
    ckt.add(Resistor::new("R1", vin, Circuit::GROUND, 1e12)); // 1 TΩ
    assert_only(&ckt, LintCode::ExtremeParameter);
}

#[test]
fn l010_unreferenced_bias() {
    // A tail current source feeding a transistor whose gate network has
    // no voltage source anywhere: every gate sits at 0 V and the tail
    // current has nowhere sensible to flow — the BMVR bias bug class.
    let mut ckt = Circuit::new();
    let d = ckt.node("d");
    let g = ckt.node("g");
    let tail = ckt.node("tail");
    let pdk = cml_pdk::Pdk018::typical();
    ckt.add(Mosfet::new(
        "M1",
        d,
        g,
        tail,
        Circuit::GROUND,
        pdk.nmos(2e-6, 0.18e-6),
    ));
    ckt.add(Resistor::new("RD", d, Circuit::GROUND, 1e3));
    ckt.add(Resistor::new("RG", g, Circuit::GROUND, 1e3));
    ckt.add(Resistor::new("RT", tail, Circuit::GROUND, 1e3));
    ckt.add(Isource::dc("IT", tail, Circuit::GROUND, 1e-3));
    assert_only(&ckt, LintCode::UnreferencedBias);
    let report = lint(&ckt);
    assert_eq!(report.diagnostics[0].element.as_deref(), Some("IT"));
}

#[test]
fn l011_dangling_stub() {
    let mut ckt = divider();
    let out = ckt.node("out");
    let stub = ckt.node("stub");
    ckt.add(Resistor::new("R3", out, stub, 1e3));
    assert_only(&ckt, LintCode::DanglingStub);
    let report = lint(&ckt);
    assert_eq!(report.diagnostics[0].nodes, vec!["stub".to_string()]);
}

#[test]
fn l012_self_loop() {
    let mut ckt = divider();
    let out = ckt.node("out");
    ckt.add(Resistor::new("RX", out, out, 1e3));
    assert_only(&ckt, LintCode::SelfLoop);
}

#[test]
fn builtin_blocks_lint_clean_at_error_level() {
    for which in cml_lint::BUILTIN_NAMES {
        let ckt = cml_lint::builtin_circuit(which).unwrap_or_else(|| panic!("builtin {which}"));
        let report = lint(&ckt);
        assert!(
            !report.has_errors(),
            "generated block '{which}' fails error-level lint:\n{}",
            report.render(Severity::Error)
        );
    }
}

#[test]
fn every_documented_code_has_a_fixture() {
    // The 12 fixtures above cover LintCode::ALL exactly; this test keeps
    // the claim in sync if a code is ever added.
    assert_eq!(LintCode::ALL.len(), 12);
}

#[test]
fn op_on_floating_node_returns_lint_rejected_with_node_name() {
    let mut ckt = divider();
    ckt.node("nowhere");
    let err = cml_spice::analysis::op::solve(&ckt).expect_err("must be rejected");
    match err {
        cml_spice::SpiceError::LintRejected { diagnostics } => {
            assert!(diagnostics
                .iter()
                .any(|d| d.code == LintCode::FloatingNode
                    && d.nodes.contains(&"nowhere".to_string())));
        }
        other => panic!("expected LintRejected, got {other:?}"),
    }
}

#[test]
fn tran_and_ac_also_precheck() {
    let mut ckt = divider();
    ckt.node("nowhere");
    let cfg = tran::TranConfig::new(1e-9, 1e-12);
    assert!(matches!(
        tran::run(&ckt, &cfg),
        Err(cml_spice::SpiceError::LintRejected { .. })
    ));
    assert!(matches!(
        ac::sweep(&ckt, &[0.0; 4], &[1e9]),
        Err(cml_spice::SpiceError::LintRejected { .. })
    ));
}

#[test]
fn error_display_carries_diagnostics() {
    let mut ckt = divider();
    ckt.node("nowhere");
    let err = cml_spice::analysis::op::solve(&ckt).expect_err("must be rejected");
    let text = err.to_string();
    assert!(text.contains("L001"), "{text}");
    assert!(text.contains("nowhere"), "{text}");
    assert!(text.contains("CML_LINT=off"), "{text}");
}
