//! Published comparison designs from Table I.
//!
//! The paper compares against two 0.18 µm 10 Gb/s limiting amplifiers:
//!
//! * **\[7\] Tao & Berroth, ESSCIRC 2003** — resistive-load limiting
//!   amplifier at 2.4 V: 120 mW, 6.5 GHz, 30 dB, 0.39 mm².
//! * **\[5\] Galal & Razavi, ISSCC 2003** — Cherry-Hooper with on-chip
//!   spiral inductors: 100 mW, 9.4 GHz, 50 dB, 0.75 mm².
//!
//! Each baseline carries its published figures *and* a behavioural model
//! built from its architecture, so benches can compare both "paper says"
//! and "our model of their topology reproduces the ordering".

use cml_numeric::Complex64;
use cml_sig::Bode;

/// A published design's Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedDesign {
    /// Short citation tag.
    pub name: &'static str,
    /// Process node description.
    pub process: &'static str,
    /// Supply voltage, volts.
    pub supply: f64,
    /// Power consumption, watts.
    pub power: f64,
    /// Operating data rate, bit/s.
    pub data_rate: f64,
    /// −3 dB bandwidth, Hz.
    pub bandwidth: f64,
    /// Differential DC gain, dB.
    pub dc_gain_db: f64,
    /// Core chip area, mm².
    pub area_mm2: f64,
    /// Number of amplifier stages in the published topology.
    pub stages: usize,
    /// Whether the design spends area on spiral inductors.
    pub uses_spirals: bool,
}

impl PublishedDesign {
    /// Reference \[7\]: Tao & Berroth 10 Gb/s limiting amplifier.
    #[must_use]
    pub fn tao_berroth() -> Self {
        PublishedDesign {
            name: "[7] Tao/Berroth",
            process: "0.18um CMOS",
            supply: 2.4,
            power: 120e-3,
            data_rate: 10e9,
            bandwidth: 6.5e9,
            dc_gain_db: 30.0,
            area_mm2: 0.39,
            stages: 5,
            uses_spirals: false,
        }
    }

    /// Reference \[5\]: Galal & Razavi 10 Gb/s limiting amplifier +
    /// laser/modulator driver.
    #[must_use]
    pub fn galal_razavi() -> Self {
        PublishedDesign {
            name: "[5] Galal/Razavi",
            process: "0.18um CMOS",
            supply: 1.8,
            power: 100e-3,
            data_rate: 10e9,
            bandwidth: 9.4e9,
            dc_gain_db: 50.0,
            area_mm2: 0.75,
            stages: 4,
            uses_spirals: true,
        }
    }

    /// Behavioural small-signal model of the published topology: `stages`
    /// identical sections whose per-stage gain and bandwidth are chosen
    /// so the cascade reproduces the published DC gain and −3 dB corner.
    #[must_use]
    pub fn small_signal(&self, f: f64) -> Complex64 {
        let stage_gain = 10f64.powf(self.dc_gain_db / 20.0 / self.stages as f64);
        // Per-stage bandwidth so that the cascade hits the published BW:
        // cascade shrink for n identical 1-pole stages = sqrt(2^{1/n}-1).
        let shrink = ((2f64).powf(1.0 / self.stages as f64) - 1.0).sqrt();
        let f_stage = self.bandwidth / shrink;
        let stage = Complex64::from_real(stage_gain) / Complex64::new(1.0, f / f_stage);
        let mut h = Complex64::ONE;
        for _ in 0..self.stages {
            h *= stage;
        }
        h
    }

    /// Bode response of the behavioural model.
    #[must_use]
    pub fn bode(&self, freqs: &[f64]) -> Bode {
        Bode::new(
            freqs.to_vec(),
            freqs.iter().map(|&f| self.small_signal(f)).collect(),
        )
    }

    /// Energy per bit, J/bit — the figure of merit that makes the
    /// paper's 70 mW row meaningful.
    #[must_use]
    pub fn energy_per_bit(&self) -> f64 {
        self.power / self.data_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_numeric::logspace;

    #[test]
    fn model_reproduces_published_dc_gain() {
        for d in [
            PublishedDesign::tao_berroth(),
            PublishedDesign::galal_razavi(),
        ] {
            let g = d.small_signal(1e3).abs();
            let g_db = 20.0 * g.log10();
            assert!(
                (g_db - d.dc_gain_db).abs() < 0.1,
                "{}: {g_db} vs {}",
                d.name,
                d.dc_gain_db
            );
        }
    }

    #[test]
    fn model_reproduces_published_bandwidth() {
        for d in [
            PublishedDesign::tao_berroth(),
            PublishedDesign::galal_razavi(),
        ] {
            let freqs = logspace(1e6, 60e9, 400);
            let bw = d.bode(&freqs).bandwidth_3db().expect("rolls off");
            assert!(
                (bw - d.bandwidth).abs() / d.bandwidth < 0.05,
                "{}: {bw:.3e} vs {:.3e}",
                d.name,
                d.bandwidth
            );
        }
    }

    #[test]
    fn energy_per_bit_ordering() {
        // Table I's story: this work (70 mW) beats both baselines.
        let ours = 70e-3 / 10e9;
        assert!(ours < PublishedDesign::tao_berroth().energy_per_bit());
        assert!(ours < PublishedDesign::galal_razavi().energy_per_bit());
    }
}
