//! Frequency-response helpers shared by the cell reproductions.
//!
//! Every transistor-level figure in this crate is an AC sweep of a
//! generated netlist followed by a differential probe: the equalizer's
//! tunable zero (Fig. 5), the wide-band buffer's voltage peaking
//! (Fig. 7), the limiting amplifier's gain/bandwidth and the full input
//! interface. These helpers route all of them through one entry point so
//! they share the sparse complex AC engine and its deterministic
//! parallel sweep — `CML_SPARSE_THRESHOLD` and `CML_THREADS` govern
//! every frequency-response reproduction from here.

use crate::cells::DiffPort;
use cml_sig::Bode;
use cml_spice::analysis::ac::{self, AcResult};
use cml_spice::analysis::NewtonOptions;
use cml_spice::telemetry::Telemetry;
use cml_spice::{Circuit, SpiceError};

/// Runs an AC sweep of `ckt` over `freqs` (Hz): operating point, then
/// the sparse/parallel sweep engine with environment-resolved settings
/// (`CML_SPARSE_THRESHOLD` for the dense/sparse crossover,
/// `CML_THREADS` for the worker count). Returns the raw [`AcResult`]
/// for callers that probe single-ended quantities (e.g. the equalizer's
/// input impedance).
///
/// # Errors
///
/// Propagates operating-point and AC solve failures.
pub fn response(ckt: &Circuit, freqs: &[f64]) -> Result<AcResult, SpiceError> {
    response_traced(ckt, freqs, &Telemetry::disabled())
}

/// [`response`] recording solver telemetry into `tel` (see
/// `cml_spice::telemetry`): every figure-reproduction sweep can attach a
/// counter report without changing its own plumbing.
///
/// # Errors
///
/// Propagates operating-point and AC solve failures.
pub fn response_traced(
    ckt: &Circuit,
    freqs: &[f64],
    tel: &Telemetry,
) -> Result<AcResult, SpiceError> {
    ac::sweep_auto_traced(
        ckt,
        freqs,
        &NewtonOptions::default(),
        cml_runner::threads(None),
        tel,
    )
}

/// [`response`] followed by a differential probe of `output`: the Bode
/// curve of `v(out.p) − v(out.n)` across the sweep — the shape every
/// cell-level figure reduces to.
///
/// # Errors
///
/// Propagates operating-point and AC solve failures.
pub fn differential_bode(
    ckt: &Circuit,
    output: DiffPort,
    freqs: &[f64],
) -> Result<Bode, SpiceError> {
    differential_bode_traced(ckt, output, freqs, &Telemetry::disabled())
}

/// [`differential_bode`] recording solver telemetry into `tel`.
///
/// # Errors
///
/// Propagates operating-point and AC solve failures.
pub fn differential_bode_traced(
    ckt: &Circuit,
    output: DiffPort,
    freqs: &[f64],
    tel: &Telemetry,
) -> Result<Bode, SpiceError> {
    let ac = response_traced(ckt, freqs, tel)?;
    Ok(Bode::new(
        freqs.to_vec(),
        ac.differential_trace(output.p, output.n),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_spice::prelude::*;

    #[test]
    fn differential_bode_matches_manual_probe() {
        // Differential RC: the helper must agree with probing the raw
        // sweep by hand.
        let mut ckt = Circuit::new();
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        ckt.add(Vsource::dc("VP", input.p, Circuit::GROUND, 0.9).with_ac(0.5));
        ckt.add(Vsource::dc("VN", input.n, Circuit::GROUND, 0.9).with_ac(-0.5));
        ckt.add(Resistor::new("RP", input.p, output.p, 1e3));
        ckt.add(Resistor::new("RN", input.n, output.n, 1e3));
        ckt.add(Capacitor::new("CP", output.p, Circuit::GROUND, 1e-12));
        ckt.add(Capacitor::new("CN", output.n, Circuit::GROUND, 1e-12));
        let freqs = cml_numeric::logspace(1e6, 10e9, 25);
        let bode = differential_bode(&ckt, output, &freqs).unwrap();
        let raw = response(&ckt, &freqs).unwrap();
        for (i, g) in bode.gains().iter().enumerate() {
            let manual = raw.voltage(output.p, i) - raw.voltage(output.n, i);
            assert_eq!(g.re.to_bits(), manual.re.to_bits());
            assert_eq!(g.im.to_bits(), manual.im.to_bits());
        }
        // Unity differential drive into a single-pole RC: 0 dB at DC.
        assert!(bode.gains()[0].abs() > 0.99);
    }
}
