//! Importance-sampled V_TH-mismatch **yield estimation** at scale.
//!
//! The §III.C argument for offset cancellation is statistical: Pelgrom
//! mismatch decides whether the limiting amplifier smears the eye, so
//! the deliverable is a *yield number* — the probability that the
//! offset stays inside a threshold — not one nominal run. This module
//! turns the [`crate::montecarlo`] trial into a streaming estimator
//! that scales to tens of millions of trials:
//!
//! * **Streaming fold** — trials are processed in fixed-size chunks
//!   through [`cml_runner::par_fold`]; each chunk reduces to a small
//!   weighted-count accumulator, merged in input order, so memory is
//!   O(chunk) regardless of trial count and the result is bit-identical
//!   for any thread count.
//! * **Importance sampling** — mismatch draws can be widened by
//!   [`YieldConfig::sigma_scale`] (κ) so rare threshold crossings are
//!   hit orders of magnitude more often; each trial carries the
//!   gaussian likelihood ratio as a weight, keeping the estimator
//!   unbiased while concentrating samples in the tail.
//! * **Two fidelity levels** — a behavioral estimator propagating the
//!   four-stage clamped gain chain through the eight-wide lane-packed
//!   kernel, and a transistor-level estimator solving an NMOS
//!   differential pair per trial through the batched operating-point
//!   engine ([`cml_spice::analysis::batch`]), importance draws ×
//!   process corners, warm-started from the nominal bias point.
//!
//! Every trial derives its own RNG stream from
//! [`cml_runner::point_seed`], so estimates are a pure function of
//! `(parameters, seed)` — independent of thread count, chunk size and
//! lane width.

use cml_pdk::{Corner, Pdk018};
use cml_runner::{par_fold, point_seed};
use cml_spice::analysis::{batch, op, NewtonOptions};
use cml_spice::prelude::*;
use cml_spice::telemetry::{Parts, Telemetry};
use cml_spice::SpiceError;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::montecarlo;

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// How a yield sweep is run: trial count, seeding, scheduling and the
/// importance-sampling widening factor.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldConfig {
    /// Total Monte-Carlo trials.
    pub trials: usize,
    /// Study seed; every trial derives its own stream via
    /// [`cml_runner::point_seed`].
    pub seed: u64,
    /// Worker threads for the streaming fold (clamped to ≥ 1).
    pub threads: usize,
    /// Trials per streamed chunk — the memory high-water mark of the
    /// sweep. Chunk boundaries are fixed by this value alone, so the
    /// estimate does not depend on the thread count.
    pub chunk: usize,
    /// Importance-sampling widening factor κ: draws use σ′ = κ·σ and
    /// carry the likelihood ratio as a weight. `1.0` is plain Monte
    /// Carlo (all weights exactly 1).
    pub sigma_scale: f64,
    /// Batch lane width for the transistor-level path (1, 2, 4 or 8);
    /// `0` uses the process default ([`batch::batch_lanes`], i.e. the
    /// `CML_BATCH_LANES` environment variable).
    pub lanes: usize,
    /// Warm-start every batched solve from the nominal bias point —
    /// the main throughput lever for small-perturbation sweeps. Turn
    /// off to make the batched Newton trajectory identical to the cold
    /// scalar ladder (useful for agreement assertions).
    pub warm_start: bool,
}

impl YieldConfig {
    /// A single-threaded plain-Monte-Carlo sweep of `trials` trials.
    #[must_use]
    pub fn new(trials: usize, seed: u64) -> Self {
        YieldConfig {
            trials,
            seed,
            threads: 1,
            chunk: 2048,
            sigma_scale: 1.0,
            lanes: 0,
            warm_start: true,
        }
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the streamed chunk size.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Sets the importance-sampling widening factor κ.
    #[must_use]
    pub fn with_sigma_scale(mut self, kappa: f64) -> Self {
        self.sigma_scale = kappa;
        self
    }

    /// Sets the batch lane width (transistor-level path).
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Enables or disables nominal-bias warm starting.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    fn validate(&self) {
        assert!(self.trials > 0, "need at least one trial");
        assert!(self.chunk > 0, "chunk size must be positive");
        assert!(
            self.sigma_scale.is_finite() && self.sigma_scale > 0.0,
            "sigma_scale must be a positive finite widening factor"
        );
    }

    /// The fixed `(start, len)` chunk grid — a function of `trials` and
    /// `chunk` only, never of the thread count.
    fn chunk_list(&self) -> Vec<(usize, usize)> {
        (0..self.trials)
            .step_by(self.chunk)
            .map(|start| (start, self.chunk.min(self.trials - start)))
            .collect()
    }

    fn resolved_lanes(&self) -> usize {
        if self.lanes == 0 {
            batch::batch_lanes()
        } else {
            self.lanes
        }
    }
}

// ---------------------------------------------------------------------
// Estimate
// ---------------------------------------------------------------------

/// A per-threshold yield table from a weighted (importance-sampled)
/// Monte-Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldEstimate {
    /// The offset thresholds, volts, in caller order.
    pub thresholds: Vec<f64>,
    /// Total trials behind the estimate.
    pub trials: u64,
    /// Σ of the importance weights (≈ `trials` when the widening is
    /// well matched; exactly `trials` for plain Monte Carlo).
    pub weight_sum: f64,
    /// Σ of squared importance weights, for the effective sample size.
    pub weight_sq_sum: f64,
    /// Per-threshold Σ w·1{|offset| > threshold}.
    pub fail_weight: Vec<f64>,
}

impl YieldEstimate {
    fn new(thresholds: &[f64]) -> Self {
        YieldEstimate {
            thresholds: thresholds.to_vec(),
            trials: 0,
            weight_sum: 0.0,
            weight_sq_sum: 0.0,
            fail_weight: vec![0.0; thresholds.len()],
        }
    }

    /// Estimated probability that `|offset|` exceeds threshold `i`
    /// (the unbiased importance estimator `Σ w·1{fail} / N`).
    #[must_use]
    pub fn fail_prob(&self, i: usize) -> f64 {
        self.fail_weight[i] / self.trials.max(1) as f64
    }

    /// Estimated yield at threshold `i`: `1 − fail_prob`.
    #[must_use]
    pub fn yield_frac(&self, i: usize) -> f64 {
        1.0 - self.fail_prob(i)
    }

    /// Kish effective sample size `(Σw)² / Σw²` — how many plain-MC
    /// trials the weighted sweep is worth. Equals `trials` for κ = 1.
    #[must_use]
    pub fn effective_samples(&self) -> f64 {
        if self.weight_sq_sum > 0.0 {
            self.weight_sum * self.weight_sum / self.weight_sq_sum
        } else {
            0.0
        }
    }

    fn add(&mut self, offset_abs: f64, w: f64) {
        self.trials += 1;
        self.weight_sum += w;
        self.weight_sq_sum += w * w;
        for (fail, &thr) in self.fail_weight.iter_mut().zip(&self.thresholds) {
            if offset_abs > thr {
                *fail += w;
            }
        }
    }

    fn merge(&mut self, other: &YieldEstimate) {
        self.trials += other.trials;
        self.weight_sum += other.weight_sum;
        self.weight_sq_sum += other.weight_sq_sum;
        for (a, b) in self.fail_weight.iter_mut().zip(&other.fail_weight) {
            *a += b;
        }
    }
}

/// The gaussian importance weight of a draw `x` taken from `N(0, σ′)`
/// but scored against the target `N(0, σ)`.
fn likelihood_ratio(x: f64, sigma: f64, sigma_w: f64) -> f64 {
    let r = sigma_w / sigma;
    r * (0.5 * x * x * (1.0 / (sigma_w * sigma_w) - 1.0 / (sigma * sigma))).exp()
}

// ---------------------------------------------------------------------
// Behavioral estimator
// ---------------------------------------------------------------------

/// The behavioral four-stage limiting-amplifier chain of §III.C.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainSpec {
    /// Per-stage voltage gain.
    pub stage_gain: f64,
    /// Per-stage input-pair mismatch σ, volts.
    pub sigma_vth: f64,
    /// Output swing, volts (each stage clamps to ±swing/2).
    pub swing: f64,
    /// DC gain of the offset-cancellation loop.
    pub loop_gain: f64,
}

impl ChainSpec {
    /// The paper-default chain: LA stage gain 2.3, Pelgrom mismatch of
    /// the W = 34 µm input pairs, 500 mV swing, 30 dB cancellation.
    #[must_use]
    pub fn paper_default() -> Self {
        ChainSpec {
            stage_gain: 2.3,
            sigma_vth: montecarlo::vth_sigma(34e-6, cml_pdk::L_MIN),
            swing: 0.5,
            loop_gain: 31.6,
        }
    }

    fn validate(&self) {
        assert!(
            self.stage_gain > 0.0
                && self.sigma_vth > 0.0
                && self.swing > 0.0
                && self.loop_gain >= 0.0,
            "chain parameters must be positive"
        );
    }
}

/// Result of a behavioral yield sweep: the raw (uncancelled) and
/// cancelled output-offset yield tables over the same thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralYield {
    /// Yield of the raw output offset.
    pub raw: YieldEstimate,
    /// Yield of the offset after the cancellation loop.
    pub cancelled: YieldEstimate,
}

impl BehavioralYield {
    fn new(thresholds: &[f64]) -> Self {
        BehavioralYield {
            raw: YieldEstimate::new(thresholds),
            cancelled: YieldEstimate::new(thresholds),
        }
    }

    fn merge(mut self, other: BehavioralYield) -> Self {
        self.raw.merge(&other.raw);
        self.cancelled.merge(&other.cancelled);
        self
    }
}

/// Streams `cfg.trials` behavioral trials through the lane-packed gain
/// chain and folds them into per-threshold yield tables at O(chunk)
/// memory. Bit-identical for any thread count, and bit-identical to
/// [`behavioral_offset_yield_scalar`] (the packed kernel performs the
/// same `f64` operations per lane).
///
/// # Panics
///
/// Panics when the config or chain parameters are invalid.
#[must_use]
pub fn behavioral_offset_yield(
    cfg: &YieldConfig,
    chain: &ChainSpec,
    thresholds: &[f64],
) -> BehavioralYield {
    behavioral_offset_yield_traced(cfg, chain, thresholds, &Telemetry::disabled())
}

/// [`behavioral_offset_yield`] counting `trials_total` into `tel`.
///
/// # Panics
///
/// See [`behavioral_offset_yield`].
#[must_use]
pub fn behavioral_offset_yield_traced(
    cfg: &YieldConfig,
    chain: &ChainSpec,
    thresholds: &[f64],
    tel: &Telemetry,
) -> BehavioralYield {
    behavioral_impl(cfg, chain, thresholds, tel, true)
}

/// Scalar reference path of [`behavioral_offset_yield`]: one trial at a
/// time through the plain-`f64` chain. Exists so the batched path has a
/// bit-exact baseline to be asserted against (`--no-batch` in the
/// Monte-Carlo bench).
///
/// # Panics
///
/// See [`behavioral_offset_yield`].
#[must_use]
pub fn behavioral_offset_yield_scalar(
    cfg: &YieldConfig,
    chain: &ChainSpec,
    thresholds: &[f64],
) -> BehavioralYield {
    behavioral_impl(cfg, chain, thresholds, &Telemetry::disabled(), false)
}

// `cfg.validate()` guarantees at least one Monte Carlo chunk, so the
// fold over chunks always produces a value.
#[allow(clippy::expect_used)]
fn behavioral_impl(
    cfg: &YieldConfig,
    chain: &ChainSpec,
    thresholds: &[f64],
    tel: &Telemetry,
    packed: bool,
) -> BehavioralYield {
    cfg.validate();
    chain.validate();
    let sigma_w = chain.sigma_vth * cfg.sigma_scale;
    let chunks = cfg.chunk_list();
    let folded = par_fold(
        cfg.threads,
        &chunks,
        |_, &(start, len)| {
            let mut offs = Vec::with_capacity(len);
            let mut weights = Vec::with_capacity(len);
            for t in 0..len {
                let mut rng = StdRng::seed_from_u64(point_seed(cfg.seed, start + t));
                let o = montecarlo::stage_offsets(&mut rng, sigma_w);
                let w = if cfg.sigma_scale == 1.0 {
                    1.0
                } else {
                    o.iter()
                        .map(|&x| likelihood_ratio(x, chain.sigma_vth, sigma_w))
                        .product()
                };
                offs.push(o);
                weights.push(w);
            }
            let raws: Vec<f64> = if packed {
                montecarlo::chain_raw_packed(&offs, chain.stage_gain, chain.swing)
            } else {
                offs.iter()
                    .map(|o| montecarlo::chain_raw(o, chain.stage_gain, chain.swing))
                    .collect()
            };
            let mut acc = BehavioralYield::new(thresholds);
            for (v, w) in raws.into_iter().zip(weights) {
                acc.raw.add(v.abs(), w);
                acc.cancelled.add((v / (1.0 + chain.loop_gain)).abs(), w);
            }
            acc
        },
        BehavioralYield::merge,
    );
    tel.count(|c| c.trials_total += cfg.trials as u64);
    folded.expect("validated config has at least one chunk")
}

// ---------------------------------------------------------------------
// Transistor-level estimator
// ---------------------------------------------------------------------

/// The transistor-level yield workload: a DC-coupled cascade of NMOS
/// differential pairs with resistor loads — the §III.C limiting
/// amplifier — with independent Pelgrom V_TH mismatch per stage, split
/// ±ΔV_TH/2 across each pair, swept over the given process corners.
#[derive(Debug, Clone, PartialEq)]
pub struct PairYieldSpec {
    /// Input-device gate width, m.
    pub w: f64,
    /// Input-device gate length, m.
    pub l: f64,
    /// Load resistance per side, Ω.
    pub r_load: f64,
    /// Tail current per stage, A.
    pub i_tail: f64,
    /// First-stage input common-mode voltage, V (later stages are
    /// DC-coupled at `VDD − R·I/2`).
    pub vcm: f64,
    /// Junction temperature, °C.
    pub temp_c: f64,
    /// Cascaded gain stages, each drawing its own pair mismatch — the
    /// transistor-level mirror of the behavioral [`ChainSpec`] chain.
    pub stages: usize,
    /// Process corners cycled per trial (`trial % corners.len()`).
    pub corners: Vec<Corner>,
}

impl PairYieldSpec {
    /// One stage of the paper's LA: W = 34 µm / L = 0.18 µm pair,
    /// 350 Ω loads, 4 mA tail, at the typical corner.
    #[must_use]
    pub fn paper_default() -> Self {
        PairYieldSpec {
            w: 34e-6,
            l: cml_pdk::L_MIN,
            r_load: 350.0,
            i_tail: 4e-3,
            vcm: 1.2,
            temp_c: 27.0,
            stages: 1,
            corners: vec![Corner::Tt],
        }
    }

    /// The full §III.C four-stage limiting-amplifier chain.
    #[must_use]
    pub fn paper_chain() -> Self {
        PairYieldSpec {
            stages: 4,
            ..Self::paper_default()
        }
    }

    /// Sweeps all five process corners instead of TT only.
    #[must_use]
    pub fn all_corners(mut self) -> Self {
        self.corners = Corner::ALL.to_vec();
        self
    }

    /// Pelgrom σ of one pair's threshold mismatch ΔV_TH, volts.
    #[must_use]
    pub fn sigma_dvth(&self) -> f64 {
        montecarlo::vth_sigma(self.w, self.l)
    }

    fn validate(&self) {
        assert!(
            self.r_load > 0.0 && self.i_tail > 0.0 && self.vcm > 0.0,
            "pair bias parameters must be positive"
        );
        assert!(self.stages > 0, "need at least one gain stage");
        assert!(!self.corners.is_empty(), "need at least one corner");
        // W/L validated by vth_sigma / try_vth_sigma at draw time.
    }
}

/// Result of a transistor-level yield sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorYield {
    /// Per-threshold yield of the differential output offset.
    pub estimate: YieldEstimate,
    /// Trials whose lane was evicted to the scalar fallback ladder.
    pub fallbacks: u64,
    /// Nominal (zero-mismatch) output offset per corner, volts —
    /// ≈ 0 by symmetry; a sanity anchor for the yield table.
    pub nominal_offsets: Vec<f64>,
}

/// Node and element name strings for one stage of the chain.
struct StageNames {
    outp: String,
    outn: String,
    tail: String,
    rl_p: String,
    rl_n: String,
    m_p: String,
    m_n: String,
    it: String,
}

/// All per-stage name strings of an `stages`-deep chain, built **once
/// per sweep** — every trial's circuit reuses the same topology, and
/// formatting the same handful of names millions of times was a
/// measurable slice of batched per-trial cost.
struct ChainNames(Vec<StageNames>);

impl ChainNames {
    fn new(stages: usize) -> Self {
        Self(
            (0..stages)
                .map(|s| StageNames {
                    outp: format!("outp{s}"),
                    outn: format!("outn{s}"),
                    tail: format!("tail{s}"),
                    rl_p: format!("RL{s}p"),
                    rl_n: format!("RL{s}n"),
                    m_p: format!("M{s}p"),
                    m_n: format!("M{s}n"),
                    it: format!("IT{s}"),
                })
                .collect(),
        )
    }
}

/// Builds one chain variant: the shared cascade topology with stage
/// `s`'s pair mismatch `dvths[s]` split ±ΔV_TH/2 across that stage's
/// M1/M2. Returns the circuit and the final stage's output nodes
/// (identical ids in every variant — the build order is fixed).
fn pair_circuit(
    spec: &PairYieldSpec,
    pdk: &Pdk018,
    dvths: &[f64],
    names: &ChainNames,
) -> (Circuit, NodeId, NodeId) {
    let base = pdk.nmos(spec.w, spec.l);
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, cml_pdk::VDD));
    ckt.add(Vsource::dc("VBP", inp, Circuit::GROUND, spec.vcm));
    ckt.add(Vsource::dc("VBN", inn, Circuit::GROUND, spec.vcm));
    let (mut sp, mut sn) = (inp, inn);
    let (mut outp, mut outn) = (inp, inn);
    for (s, &dvth) in dvths.iter().enumerate() {
        let n = &names.0[s];
        let mut m1 = base.clone();
        m1.vth0 += dvth / 2.0;
        let mut m2 = base.clone();
        m2.vth0 -= dvth / 2.0;
        outp = ckt.node(&n.outp);
        outn = ckt.node(&n.outn);
        let tail = ckt.node(&n.tail);
        ckt.add(Resistor::new(&n.rl_p, vdd, outp, spec.r_load));
        ckt.add(Resistor::new(&n.rl_n, vdd, outn, spec.r_load));
        // Outputs cross to the next stage so the signal polarity is
        // preserved through each inverting stage.
        ckt.add(Mosfet::new(&n.m_p, outn, sp, tail, Circuit::GROUND, m1));
        ckt.add(Mosfet::new(&n.m_n, outp, sn, tail, Circuit::GROUND, m2));
        ckt.add(Isource::dc(&n.it, tail, Circuit::GROUND, spec.i_tail));
        (sp, sn) = (outp, outn);
    }
    (ckt, outp, outn)
}

/// The deterministic draw of one transistor-level trial: which corner,
/// the per-stage pair mismatches ΔV_TH (from the widened
/// distribution, in stage order), and the trial's importance weight.
fn pair_draw(cfg: &YieldConfig, spec: &PairYieldSpec, idx: usize) -> (usize, Vec<f64>, f64) {
    let corner_idx = idx % spec.corners.len();
    let sigma = spec.sigma_dvth();
    let sigma_w = sigma * cfg.sigma_scale;
    let mut rng = StdRng::seed_from_u64(point_seed(cfg.seed, idx));
    let dvths: Vec<f64> = (0..spec.stages)
        .map(|_| montecarlo::gauss(&mut rng, sigma_w))
        .collect();
    let w = if cfg.sigma_scale == 1.0 {
        1.0
    } else {
        dvths
            .iter()
            .map(|&x| likelihood_ratio(x, sigma, sigma_w))
            .product()
    };
    (corner_idx, dvths, w)
}

/// One chunk's worth of the transistor sweep, reduced to its
/// accumulator plus the worker's telemetry parts.
struct ChunkOut {
    estimate: YieldEstimate,
    fallbacks: u64,
    parts: Vec<Option<Parts>>,
}

/// Streams `cfg.trials` transistor-level trials — importance-sampled
/// ΔV_TH × process corners on the differential pair — through the
/// batched operating-point engine, folding a per-threshold yield table
/// at O(chunk) memory. Warm-started from the per-corner nominal bias
/// point when [`YieldConfig::warm_start`] is set. Bit-identical for any
/// thread count.
///
/// # Errors
///
/// Propagates the first [`SpiceError`] from any trial (lint rejection
/// or a variant that fails even the scalar fallback ladder).
///
/// # Panics
///
/// Panics when the config or pair spec is invalid.
pub fn transistor_offset_yield(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
    thresholds: &[f64],
) -> Result<TransistorYield, SpiceError> {
    transistor_offset_yield_traced(cfg, spec, thresholds, &Telemetry::disabled())
}

/// [`transistor_offset_yield`] with solver telemetry: batch counters
/// from every worker are absorbed in chunk order, so the report is as
/// thread-count-invariant as the estimate itself.
///
/// # Errors
///
/// See [`transistor_offset_yield`].
pub fn transistor_offset_yield_traced(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
    thresholds: &[f64],
    tel: &Telemetry,
) -> Result<TransistorYield, SpiceError> {
    transistor_impl(cfg, spec, thresholds, tel, true)
}

/// Per-trial scalar baseline of [`transistor_offset_yield`]: the same
/// draws and the same streaming fold, but every trial runs the full
/// scalar Newton ladder independently — the pre-batch Monte-Carlo flow,
/// kept as the `--no-batch` reference and the bench baseline.
///
/// # Errors
///
/// See [`transistor_offset_yield`].
pub fn transistor_offset_yield_scalar(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
    thresholds: &[f64],
) -> Result<TransistorYield, SpiceError> {
    transistor_impl(cfg, spec, thresholds, &Telemetry::disabled(), false)
}

// The validated spec has at least one corner and one chunk, so the
// corner loop binds `out_nodes` and the chunk fold produces a value.
#[allow(clippy::expect_used)]
fn transistor_impl(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
    thresholds: &[f64],
    tel: &Telemetry,
    use_batch: bool,
) -> Result<TransistorYield, SpiceError> {
    cfg.validate();
    spec.validate();
    let opts = NewtonOptions::default();
    let lanes = cfg.resolved_lanes();
    let nominal_dvths = vec![0.0; spec.stages];
    let names = ChainNames::new(spec.stages);

    // Per-corner nominal bias points: the warm starts for every chunk
    // and the ≈0 sanity anchors of the yield table. Computed once,
    // before the fold, so they cannot depend on scheduling.
    let mut warms = Vec::with_capacity(spec.corners.len());
    let mut nominal_offsets = Vec::with_capacity(spec.corners.len());
    let mut out_nodes = None;
    for &corner in &spec.corners {
        let pdk = Pdk018::new(corner, spec.temp_c);
        let (ckt, outp, outn) = pair_circuit(spec, &pdk, &nominal_dvths, &names);
        let nominal = op::solve_with(&ckt, &opts, None)?;
        nominal_offsets.push(nominal.voltage(outp) - nominal.voltage(outn));
        warms.push(nominal.solution().to_vec());
        out_nodes = Some((outp, outn));
    }
    let (outp, outn) = out_nodes.expect("validated spec has at least one corner");
    let pdks: Vec<Pdk018> = spec
        .corners
        .iter()
        .map(|&c| Pdk018::new(c, spec.temp_c))
        .collect();

    let chunks = cfg.chunk_list();
    let probe = tel.probe();
    let folded = par_fold(
        cfg.threads,
        &chunks,
        |chunk_idx, &(start, len)| -> Result<ChunkOut, SpiceError> {
            let wtel = probe.fork(chunk_idx as u32 + 1);
            let mut weights = Vec::with_capacity(len);
            let mut ckts = Vec::with_capacity(len);
            for t in 0..len {
                let (ci, dvths, w) = pair_draw(cfg, spec, start + t);
                let (ckt, _, _) = pair_circuit(spec, &pdks[ci], &dvths, &names);
                ckts.push(ckt);
                weights.push(w);
            }
            let mut estimate = YieldEstimate::new(thresholds);
            let mut fallbacks = 0u64;
            if use_batch {
                let warm = cfg
                    .warm_start
                    .then(|| warms[start % spec.corners.len()].as_slice());
                let res = batch::op_batch_with_lanes(&ckts, &opts, warm, lanes, &wtel)?;
                for (v, &w) in weights.iter().enumerate() {
                    let off = res.voltage(v, outp) - res.voltage(v, outn);
                    estimate.add(off.abs(), w);
                }
                fallbacks += res.fallback_count() as u64;
            } else {
                for (ckt, &w) in ckts.iter().zip(&weights) {
                    let sol = op::solve_traced(ckt, &opts, None, &wtel)?;
                    let off = sol.voltage(outp) - sol.voltage(outn);
                    estimate.add(off.abs(), w);
                }
            }
            wtel.count(|c| c.trials_total += len as u64);
            Ok(ChunkOut {
                estimate,
                fallbacks,
                parts: vec![wtel.into_parts()],
            })
        },
        |a, b| match (a, b) {
            (Ok(mut a), Ok(b)) => {
                a.estimate.merge(&b.estimate);
                a.fallbacks += b.fallbacks;
                a.parts.extend(b.parts);
                Ok(a)
            }
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
    );
    let out = folded.expect("validated config has at least one chunk")?;
    for p in out.parts {
        tel.absorb(p);
    }
    Ok(TransistorYield {
        estimate: out.estimate,
        fallbacks: out.fallbacks,
        nominal_offsets,
    })
}

/// Validation helper: the per-trial pair offsets (volts, signed) of the
/// first `cfg.trials` trials, computed through the batched engine.
/// Materializes O(trials) — meant for agreement assertions at modest
/// trial counts, not production sweeps. Returns the offsets plus the
/// scalar-fallback count.
///
/// # Errors
///
/// See [`transistor_offset_yield`].
pub fn pair_offsets_batched(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
) -> Result<(Vec<f64>, u64), SpiceError> {
    cfg.validate();
    spec.validate();
    let opts = NewtonOptions::default();
    let lanes = cfg.resolved_lanes();
    let nominal_dvths = vec![0.0; spec.stages];
    let names = ChainNames::new(spec.stages);
    let pdks: Vec<Pdk018> = spec
        .corners
        .iter()
        .map(|&c| Pdk018::new(c, spec.temp_c))
        .collect();
    let warm = if cfg.warm_start {
        let (ckt, _, _) = pair_circuit(spec, &pdks[0], &nominal_dvths, &names);
        Some(op::solve_with(&ckt, &opts, None)?.solution().to_vec())
    } else {
        None
    };
    let mut offsets = Vec::with_capacity(cfg.trials);
    let mut fallbacks = 0u64;
    let (_, outp, outn) = pair_circuit(spec, &pdks[0], &nominal_dvths, &names);
    for (start, len) in cfg.chunk_list() {
        let ckts: Vec<Circuit> = (0..len)
            .map(|t| {
                let (ci, dvths, _) = pair_draw(cfg, spec, start + t);
                pair_circuit(spec, &pdks[ci], &dvths, &names).0
            })
            .collect();
        let res = batch::op_batch_with_lanes(
            &ckts,
            &opts,
            warm.as_deref(),
            lanes,
            &Telemetry::disabled(),
        )?;
        for v in 0..res.len() {
            offsets.push(res.voltage(v, outp) - res.voltage(v, outn));
        }
        fallbacks += res.fallback_count() as u64;
    }
    Ok((offsets, fallbacks))
}

/// Scalar companion of [`pair_offsets_batched`]: the same trials, each
/// through the independent scalar Newton ladder.
///
/// # Errors
///
/// See [`transistor_offset_yield`].
pub fn pair_offsets_scalar(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
) -> Result<Vec<f64>, SpiceError> {
    cfg.validate();
    spec.validate();
    let opts = NewtonOptions::default();
    let names = ChainNames::new(spec.stages);
    let pdks: Vec<Pdk018> = spec
        .corners
        .iter()
        .map(|&c| Pdk018::new(c, spec.temp_c))
        .collect();
    (0..cfg.trials)
        .map(|idx| {
            let (ci, dvths, _) = pair_draw(cfg, spec, idx);
            let (ckt, outp, outn) = pair_circuit(spec, &pdks[ci], &dvths, &names);
            let sol = op::solve_with(&ckt, &opts, None)?;
            Ok(sol.voltage(outp) - sol.voltage(outn))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thresholds() -> Vec<f64> {
        vec![0.05, 0.1, 0.2, 0.25]
    }

    #[test]
    fn behavioral_packed_equals_scalar_bitwise() {
        let cfg = YieldConfig::new(1000, 7).with_chunk(128);
        let chain = ChainSpec::paper_default();
        let packed = behavioral_offset_yield(&cfg, &chain, &thresholds());
        let scalar = behavioral_offset_yield_scalar(&cfg, &chain, &thresholds());
        assert_eq!(packed, scalar, "lane packing changed the estimate");
    }

    #[test]
    fn behavioral_yield_thread_invariant() {
        let chain = ChainSpec::paper_default();
        let reference = behavioral_offset_yield(
            &YieldConfig::new(4096, 3).with_chunk(256),
            &chain,
            &thresholds(),
        );
        for threads in [2, 3, 8] {
            let run = behavioral_offset_yield(
                &YieldConfig::new(4096, 3)
                    .with_chunk(256)
                    .with_threads(threads),
                &chain,
                &thresholds(),
            );
            assert_eq!(reference, run, "thread count {threads} changed the yield");
        }
    }

    #[test]
    fn importance_sampling_stays_unbiased() {
        // Widened draws + likelihood weights must reproduce the plain
        // Monte-Carlo tail probability within sampling noise.
        let chain = ChainSpec {
            sigma_vth: 5e-3,
            ..ChainSpec::paper_default()
        };
        let thr = vec![0.2];
        let plain =
            behavioral_offset_yield(&YieldConfig::new(200_000, 11).with_threads(4), &chain, &thr);
        let widened = behavioral_offset_yield(
            &YieldConfig::new(200_000, 12)
                .with_threads(4)
                .with_sigma_scale(2.0),
            &chain,
            &thr,
        );
        let (p, q) = (plain.raw.fail_prob(0), widened.raw.fail_prob(0));
        assert!(p > 1e-3, "tail not exercised: plain p = {p}");
        let rel = (p - q).abs() / p;
        assert!(rel < 0.1, "importance estimate biased: {p} vs {q} ({rel})");
        // Weights average to ~1 when the proposal covers the target.
        let mean_w = widened.raw.weight_sum / widened.raw.trials as f64;
        assert!((mean_w - 1.0).abs() < 0.05, "mean weight {mean_w}");
        assert!(widened.raw.effective_samples() < widened.raw.trials as f64);
    }

    #[test]
    fn plain_mc_weights_are_exactly_one_each() {
        let est = behavioral_offset_yield(
            &YieldConfig::new(333, 5),
            &ChainSpec::paper_default(),
            &thresholds(),
        );
        assert_eq!(est.raw.weight_sum, 333.0);
        assert_eq!(est.raw.weight_sq_sum, 333.0);
        assert_eq!(est.raw.effective_samples(), 333.0);
    }

    #[test]
    fn transistor_yield_matches_scalar_flow_and_threads() {
        let spec = PairYieldSpec::paper_default();
        // Cold start: the batched lockstep then takes the same Newton
        // trajectory as the scalar ladder, so the tables agree exactly.
        let cfg = YieldConfig::new(64, 9)
            .with_chunk(16)
            .with_warm_start(false);
        let thr = vec![1e-3, 5e-3, 10e-3];
        let batched = transistor_offset_yield(&cfg, &spec, &thr).unwrap();
        let scalar = transistor_offset_yield_scalar(&cfg, &spec, &thr).unwrap();
        assert_eq!(batched.estimate, scalar.estimate);
        for threads in [2, 8] {
            let t =
                transistor_offset_yield(&cfg.clone().with_threads(threads), &spec, &thr).unwrap();
            assert_eq!(
                batched.estimate, t.estimate,
                "threads {threads} changed yield"
            );
        }
        // The nominal pair is symmetric; mismatch must cross the small
        // thresholds for some trials but never all of them.
        assert!(batched.nominal_offsets[0].abs() < 1e-6);
        assert!(batched.estimate.fail_prob(0) > 0.0);
        assert!(batched.estimate.yield_frac(2) > 0.5);
    }

    #[test]
    fn transistor_offsets_batched_agree_with_scalar() {
        let spec = PairYieldSpec::paper_default().all_corners();
        let cfg = YieldConfig::new(40, 21)
            .with_chunk(16)
            .with_warm_start(false);
        let (batched, _fallbacks) = pair_offsets_batched(&cfg, &spec).unwrap();
        let scalar = pair_offsets_scalar(&cfg, &spec).unwrap();
        assert_eq!(batched.len(), scalar.len());
        for (i, (b, s)) in batched.iter().zip(&scalar).enumerate() {
            assert!(
                (b - s).abs() <= 1e-9,
                "trial {i}: batched {b} vs scalar {s}"
            );
        }
    }

    #[test]
    fn warm_start_changes_path_not_answer() {
        let spec = PairYieldSpec::paper_default();
        let cold = YieldConfig::new(32, 33)
            .with_chunk(16)
            .with_warm_start(false);
        let warm = YieldConfig::new(32, 33).with_chunk(16);
        let (a, _) = pair_offsets_batched(&cold, &spec).unwrap();
        let (b, _) = pair_offsets_batched(&warm, &spec).unwrap();
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x - y).abs() <= 1e-6,
                "trial {i}: cold {x} vs warm {y} beyond Newton tolerance"
            );
        }
    }

    #[test]
    fn transistor_telemetry_counts_batch_activity() {
        let tel = Telemetry::enabled();
        let cfg = YieldConfig::new(32, 13).with_chunk(16);
        let spec = PairYieldSpec::paper_default();
        let _ = transistor_offset_yield_traced(&cfg, &spec, &[5e-3], &tel).unwrap();
        let report = tel.report();
        assert_eq!(report.counters.trials_total, 32);
        assert!(report.counters.batch_solves > 0, "no batch solves counted");
        assert!(report.counters.batch_lane_slots >= report.counters.batch_lanes_active);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ =
            behavioral_offset_yield(&YieldConfig::new(0, 1), &ChainSpec::paper_default(), &[0.1]);
    }
}
