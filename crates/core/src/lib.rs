//! The paper's contribution: a 10 Gb/s wide-band CML I/O interface.
//!
//! This crate reproduces every circuit block of Chiu et al., "A 10 Gb/s
//! Wide-Band Current-Mode Logic I/O Interface for High-Speed Interconnect
//! in 0.18 µm CMOS Technology" (SOCC 2005), on two coordinated levels:
//!
//! * **Transistor level** ([`cells`]) — netlist generators that build
//!   `cml_spice` circuits from `cml_pdk` device cards: the wide-band CML
//!   buffer with PMOS active-inductor load, active feedback and negative
//!   Miller capacitance; the Cherry-Hooper input equalizer with its
//!   tunable zero; the gain-stage amplifier; and the beta-multiplier
//!   voltage reference. These are used for the cell-level figures
//!   (Fig. 5, Fig. 7, §III.E) and to calibrate the behavioural layer.
//!
//! * **Behavioural level** ([`behav`]) — waveform-in/waveform-out models
//!   of the same blocks (transfer functions + tanh limiting), fast enough
//!   to run full 10 Gb/s PRBS links end to end for the eye-diagram
//!   figures (Fig. 14–16).
//!
//! [`design`] holds the sizing equations of §III, [`power`] and [`area`]
//! the accounting behind Table I, [`baselines`] the two published
//! comparison designs, and [`report`] assembles the Table I rows.
//!
//! # Example
//!
//! ```
//! use cml_core::behav::{Block, CmlBuffer};
//! use cml_sig::nrz::NrzConfig;
//! use cml_sig::prbs::Prbs;
//!
//! let bits: Vec<bool> = Prbs::prbs7().take(127).collect();
//! let input = NrzConfig::new(100e-12, 0.05).render(&bits); // 50 mV in
//! let buf = CmlBuffer::paper_default();
//! let out = buf.process(&input);
//! assert_eq!(out.len(), input.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod baselines;
pub mod behav;
pub mod cells;
pub mod design;
pub mod freq;
pub mod montecarlo;
pub mod power;
pub mod report;
pub mod stream;
pub mod yield_est;
