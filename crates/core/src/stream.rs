//! [`WaveSink`] adapters bridging `cml_spice` streaming transient runs
//! into the `cml_sig` streaming accumulators.
//!
//! `cml_spice` emits columnar waveform chunks; `cml_sig` folds single
//! waveforms into eyes, metrics and BER counts. These adapters connect
//! one selected chunk column to one accumulator so a transistor-level
//! PRBS run produces its eye diagram **during** the simulation, holding
//! O(chunk) waveform data instead of the full dense record:
//!
//! ```ignore
//! let probes = TranProbes::new().differential("vout", out_p, out_n);
//! let mut eye = EyeSink::new("vout", EyeAccumulatorConfig::new(ui, dt, -0.4, 0.4));
//! tran::run_streaming(&ckt, &cfg, &probes, &mut eye)?;
//! let metrics = eye.accumulator().metrics();
//! ```
//!
//! Both adapters resolve their column by **name** in
//! [`WaveSink::begin`], so they compose with any probe set and with
//! [`cml_spice::prelude::Tee`] fan-out. For parallel sweeps, build one
//! accumulator per segment and fan in with `cml_runner::par_fold` +
//! [`cml_sig::streaming::EyeAccumulator::merge`] — the accumulators are
//! chunk-invariant, so the merged result is bit-identical to a single
//! serial pass.

use cml_sig::streaming::{BerCounter, EyeAccumulator, EyeAccumulatorConfig, StreamMetrics};
use cml_spice::prelude::{TranMeta, WaveChunk, WaveSink};
use cml_spice::SpiceError;

/// Finds the chunk-column index for `name`, erring at `begin` time so a
/// typo fails before any stepping happens.
fn resolve_col(meta: &TranMeta, name: &str) -> Result<usize, SpiceError> {
    meta.col_names
        .iter()
        .position(|c| c == name)
        .ok_or_else(|| SpiceError::NotFound {
            what: "streamed probe column",
            name: name.to_string(),
        })
}

/// Streams one probe column into an [`EyeAccumulator`]: the eye diagram
/// and jitter statistics of a transient run, computed on the fly in
/// O(grid) memory.
#[derive(Debug)]
pub struct EyeSink {
    col_name: String,
    col: usize,
    acc: EyeAccumulator,
}

impl EyeSink {
    /// Folds the column named `col_name` (as declared in the run's
    /// `TranProbes`) into an eye with the given config.
    #[must_use]
    pub fn new(col_name: impl Into<String>, cfg: EyeAccumulatorConfig) -> Self {
        EyeSink {
            col_name: col_name.into(),
            col: 0,
            acc: EyeAccumulator::new(cfg),
        }
    }

    /// The accumulator (metrics, render, merge) after — or during — a run.
    #[must_use]
    pub fn accumulator(&self) -> &EyeAccumulator {
        &self.acc
    }

    /// Consumes the sink into its accumulator (for `merge` fan-in).
    #[must_use]
    pub fn into_accumulator(self) -> EyeAccumulator {
        self.acc
    }
}

impl WaveSink for EyeSink {
    fn begin(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        self.col = resolve_col(meta, &self.col_name)?;
        Ok(())
    }

    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        self.acc.feed(chunk.times, &chunk.cols[self.col]);
        Ok(())
    }
}

/// Streams one probe column into a [`StreamMetrics`] block (count, min,
/// max, mean, RMS, threshold crossings) in O(1) memory.
#[derive(Debug)]
pub struct MetricsSink {
    col_name: String,
    col: usize,
    metrics: StreamMetrics,
}

impl MetricsSink {
    /// Accumulates metrics of the column named `col_name`, counting
    /// crossings of `threshold`.
    #[must_use]
    pub fn new(col_name: impl Into<String>, threshold: f64) -> Self {
        MetricsSink {
            col_name: col_name.into(),
            col: 0,
            metrics: StreamMetrics::new(threshold),
        }
    }

    /// The accumulated metrics.
    #[must_use]
    pub fn metrics(&self) -> &StreamMetrics {
        &self.metrics
    }
}

impl WaveSink for MetricsSink {
    fn begin(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        self.col = resolve_col(meta, &self.col_name)?;
        Ok(())
    }

    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        for &v in &chunk.cols[self.col] {
            self.metrics.push(v);
        }
        Ok(())
    }
}

/// Streams one probe column into a [`BerCounter`]: slices the waveform
/// at bit centers and compares against the expected bit sequence.
#[derive(Debug)]
pub struct BerSink<I> {
    col_name: String,
    col: usize,
    counter: BerCounter<I>,
}

impl<I: Iterator<Item = bool>> BerSink<I> {
    /// Counts bit errors on the column named `col_name` with the given
    /// pre-built counter (UI, threshold, first decision instant,
    /// expected-bit iterator).
    #[must_use]
    pub fn new(col_name: impl Into<String>, counter: BerCounter<I>) -> Self {
        BerSink {
            col_name: col_name.into(),
            col: 0,
            counter,
        }
    }

    /// The counter (bits, errors, BER).
    #[must_use]
    pub fn counter(&self) -> &BerCounter<I> {
        &self.counter
    }
}

impl<I: Iterator<Item = bool>> WaveSink for BerSink<I> {
    fn begin(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        self.col = resolve_col(meta, &self.col_name)?;
        Ok(())
    }

    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        for (&t, &v) in chunk.times.iter().zip(&chunk.cols[self.col]) {
            self.counter.push(t, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_spice::prelude::*;

    /// An RC low-pass driven by a pulse source: enough dynamics to give
    /// every adapter real crossings to chew on.
    fn pulse_rc() -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(Vsource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-10,
                fall: 1e-10,
                width: 0.9e-9,
                period: 2e-9,
            },
        ));
        ckt.add(Resistor::new("R1", a, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-13));
        (ckt, out)
    }

    #[test]
    fn metrics_sink_matches_dense_run() {
        let (ckt, out) = pulse_rc();
        let cfg = TranConfig::new(8e-9, 1e-11);
        let probes = TranProbes::new().voltage("vout", out);
        let mut sink = MetricsSink::new("vout", 0.5);
        tran::run_streaming(&ckt, &cfg, &probes, &mut sink).unwrap();

        let dense = tran::run(&ckt, &cfg).unwrap();
        let wave = dense.voltage(out);
        let mut reference = cml_sig::streaming::StreamMetrics::new(0.5);
        for &v in &wave {
            reference.push(v);
        }
        assert_eq!(sink.metrics().count(), reference.count());
        assert_eq!(sink.metrics().min().to_bits(), reference.min().to_bits());
        assert_eq!(sink.metrics().max().to_bits(), reference.max().to_bits());
        assert_eq!(sink.metrics().crossings(), reference.crossings());
        assert!(sink.metrics().crossings() >= 2, "pulse produced no edges");
    }

    #[test]
    fn eye_sink_matches_dense_fold_bit_for_bit() {
        let (ckt, out) = pulse_rc();
        let cfg = TranConfig::new(16e-9, 1e-11);
        let ui = 2e-9;
        let eye_cfg = cml_sig::streaming::EyeAccumulatorConfig::new(ui, 1e-11, -0.1, 1.1);
        let probes = TranProbes::new().voltage("vout", out);
        let mut sink = EyeSink::new("vout", eye_cfg.clone());
        tran::run_streaming(&ckt, &cfg, &probes, &mut sink).unwrap();

        // Reference: same accumulator fed from the dense record in one
        // call. Chunk-invariance makes these bit-identical.
        let dense = tran::run(&ckt, &cfg).unwrap();
        let mut reference = cml_sig::streaming::EyeAccumulator::new(eye_cfg);
        reference.feed(dense.times(), &dense.voltage(out));

        assert_eq!(sink.accumulator().samples(), reference.samples());
        assert_eq!(sink.accumulator().crossings(), reference.crossings());
        let a = sink.accumulator().metrics();
        let b = reference.metrics();
        assert_eq!(a.height.to_bits(), b.height.to_bits());
        assert_eq!(a.width.to_bits(), b.width.to_bits());
        assert_eq!(a.rms_jitter.to_bits(), b.rms_jitter.to_bits());
    }

    #[test]
    fn unknown_column_fails_at_begin() {
        let (ckt, out) = pulse_rc();
        let cfg = TranConfig::new(1e-9, 1e-11);
        let probes = TranProbes::new().voltage("vout", out);
        let mut sink = MetricsSink::new("nope", 0.0);
        let err = tran::run_streaming(&ckt, &cfg, &probes, &mut sink).unwrap_err();
        assert!(matches!(err, SpiceError::NotFound { .. }), "{err}");
    }
}
