//! Full transistor-level input interface (paper Fig. 2): equalizer →
//! CML input buffer → limiting amplifier → CML output buffer.
//!
//! The common-mode chain is the delicate part of composing the cells:
//! the equalizer's resistor-loaded output sits near `VDD − I·R2/2`, the
//! buffer's diode-loaded output near `VDD − |VTH| − Vov`, and the LA's
//! peaked stages another `|VTH|` lower; each cell was designed so its
//! output CM lands inside the next cell's input range, mirroring how the
//! real chip levels were planned.

use super::cml_buffer::{self, CmlBufferConfig};
use super::equalizer::{self, EqualizerConfig};
use super::limiting_amp::{self, LimitingAmpConfig};
use super::DiffPort;
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Configuration of the full input interface.
#[derive(Debug, Clone, PartialEq)]
pub struct InputInterfaceConfig {
    /// Input equalizer (50 Ω termination included).
    pub equalizer: EqualizerConfig,
    /// CML input buffer between equalizer and LA.
    pub buffer: CmlBufferConfig,
    /// Limiting amplifier.
    pub la: LimitingAmpConfig,
    /// Output buffer toward the CDR.
    pub output_buffer: CmlBufferConfig,
}

impl InputInterfaceConfig {
    /// The paper's nominal input interface.
    #[must_use]
    pub fn paper_default() -> Self {
        InputInterfaceConfig {
            equalizer: EqualizerConfig::paper_default(),
            buffer: CmlBufferConfig::paper_default(),
            la: LimitingAmpConfig::paper_default(),
            output_buffer: CmlBufferConfig::paper_default(),
        }
    }

    /// Total supply current, amps.
    #[must_use]
    pub fn supply_current(&self) -> f64 {
        self.equalizer.supply_current()
            + self.buffer.supply_current()
            + self.la.supply_current()
            + self.output_buffer.supply_current()
    }
}

/// Builds the interface into `ckt`.
pub fn build(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &InputInterfaceConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    let eq_out = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_eqp")),
        ckt.internal_node(&format!("{prefix}_eqn")),
    );
    equalizer::build(
        ckt,
        pdk,
        &cfg.equalizer,
        &format!("{prefix}_eq"),
        input,
        eq_out,
        vdd,
    );

    let buf_out = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_bp")),
        ckt.internal_node(&format!("{prefix}_bn")),
    );
    cml_buffer::build(
        ckt,
        pdk,
        &cfg.buffer,
        &format!("{prefix}_buf"),
        eq_out,
        buf_out,
        vdd,
    );

    let la_out = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_lp")),
        ckt.internal_node(&format!("{prefix}_ln")),
    );
    limiting_amp::build(
        ckt,
        pdk,
        &cfg.la,
        &format!("{prefix}_la"),
        buf_out,
        la_out,
        vdd,
    );

    cml_buffer::build(
        ckt,
        pdk,
        &cfg.output_buffer,
        &format!("{prefix}_ob"),
        la_out,
        output,
        vdd,
    );
    crate::cells::debug_assert_unique_names(ckt, prefix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_numeric::logspace;
    use cml_sig::Bode;

    fn interface_bode() -> Bode {
        let pdk = Pdk018::typical();
        let cfg = InputInterfaceConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(
            &mut ckt,
            "VIN",
            input,
            cfg.equalizer.input_common_mode(),
            None,
        );
        build(&mut ckt, &pdk, &cfg, "rx", input, output, vdd);
        ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
        ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
        let freqs = logspace(1e6, 60e9, 120);
        crate::freq::differential_bode(&ckt, output, &freqs).expect("interface ac")
    }

    #[test]
    fn transistor_interface_gain_and_bandwidth() {
        // Table I's bandwidth/gain rows at the transistor level: the
        // whole receive chain in one MNA system (≈ 60 devices).
        let bode = interface_bode();
        let mid_gain = bode.gain_db_at(1e9);
        // The Level-1 transistor chain lands in the mid-20s dB; the
        // remaining gap to the paper's 40 dB is the post-layout tuning
        // headroom documented in EXPERIMENTS.md.
        assert!(
            mid_gain > 20.0,
            "interface mid-band gain = {mid_gain:.1} dB (paper: 40 dB)"
        );
        let bw = bode.bandwidth_3db().expect("rolls off");
        assert!(bw > 3e9, "interface bandwidth = {bw:.3e}");
    }

    #[test]
    fn interface_converges_at_all_corners() {
        // The full-chain DC solve must converge at every process corner —
        // the robustness the band-gap-referenced biasing buys.
        for corner in cml_pdk::Corner::ALL {
            let pdk = Pdk018::new(corner, 27.0);
            let cfg = InputInterfaceConfig::paper_default();
            let mut ckt = Circuit::new();
            let vdd = add_supply(&mut ckt, cml_pdk::VDD);
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                cfg.equalizer.input_common_mode(),
                None,
            );
            build(&mut ckt, &pdk, &cfg, "rx", input, output, vdd);
            let op = cml_spice::analysis::op::solve(&ckt)
                .unwrap_or_else(|e| panic!("corner {corner} failed: {e}"));
            let vp = op.voltage(output.p);
            assert!(vp > 0.3 && vp < 1.8, "corner {corner}: vout = {vp}");
        }
    }

    #[test]
    fn supply_current_matches_power_module() {
        let cfg = InputInterfaceConfig::paper_default();
        let from_cells = cfg.supply_current();
        let from_budget = crate::power::input_interface().total_current();
        assert!(
            (from_cells - from_budget).abs() / from_budget < 0.01,
            "cells {from_cells:.4e} vs budget {from_budget:.4e}"
        );
    }
}
