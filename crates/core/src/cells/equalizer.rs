//! Cherry-Hooper input equalizer with tunable zero (paper Fig. 4).
//!
//! Two-stage Cherry-Hooper amplifier:
//!
//! * **Stage 1** — transconductance pair with a *split tail* and an NMOS
//!   triode degeneration resistor bridging the two source nodes, shunted
//!   by a degeneration capacitor. The R·C degeneration creates the
//!   equalizer's zero: at low frequency the gain is reduced by
//!   `1 + gm·R_s/2`, above `1/(2π·R_s·C_s)` the capacitor shorts the
//!   degeneration and the full gm returns. The NMOS gate voltage `V1`
//!   tunes `R_s` and therefore the low-frequency attenuation — the
//!   paper's Fig. 5 control knob.
//! * **Stage 2** — transimpedance stage: a second differential pair with
//!   feedback resistors `R_f` from its outputs back to its inputs, which
//!   presents a low-impedance load to stage 1 (the Cherry-Hooper trick
//!   that pushes the interstage pole out).
//! * **Active feedback** — a weak differential pair sensing the stage-2
//!   outputs and feeding current back to the stage-1 outputs (the
//!   paper's current buffers M1/M2), raising gain and linearity
//!   (Fig. 5(b) vs 5(a)).
//!
//! The cell includes the 50 Ω input termination of the input interface.

use super::DiffPort;
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Configuration of the equalizer cell.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualizerConfig {
    /// Per-side tail current of stage 1, amps (total stage-1 current is
    /// twice this).
    pub i_half: f64,
    /// Stage-1 load resistors, ohms.
    pub r1: f64,
    /// Stage-2 load resistors, ohms.
    pub r2: f64,
    /// Cherry-Hooper feedback resistors, ohms.
    pub rf: f64,
    /// Stage-2 tail current, amps.
    pub i2: f64,
    /// Degeneration NMOS gate voltage `V1`, volts — the tuning input.
    /// Higher `V1` = smaller `R_s` = less low-frequency attenuation =
    /// less equalization.
    pub v_control: f64,
    /// Degeneration capacitance, farads (MOS capacitor on chip).
    pub c_deg: f64,
    /// Degeneration NMOS width, meters.
    pub w_deg: f64,
    /// Input pair width, meters.
    pub w_in: f64,
    /// Active feedback (current buffers M1/M2) enabled — Fig. 5(b) vs (a).
    pub active_feedback: bool,
    /// Feedback pair tail current, amps.
    pub i_fb: f64,
    /// 50 Ω input termination to the termination rail (VDD), present in
    /// the input interface.
    pub input_termination: bool,
}

impl EqualizerConfig {
    /// The paper's nominal equalizer design point at mid tuning.
    #[must_use]
    pub fn paper_default() -> Self {
        EqualizerConfig {
            i_half: 1e-3,
            r1: 250.0,
            r2: 250.0,
            rf: 400.0,
            i2: 2e-3,
            v_control: 1.2,
            c_deg: 400e-15,
            w_deg: 4e-6,
            w_in: 20e-6,
            active_feedback: true,
            i_fb: 0.4e-3,
            input_termination: true,
        }
    }

    /// Tuned for maximum boost (largest degeneration resistance).
    #[must_use]
    pub fn max_boost() -> Self {
        EqualizerConfig {
            v_control: 0.8,
            ..EqualizerConfig::paper_default()
        }
    }

    /// Static current drawn from the supply, amps.
    #[must_use]
    pub fn supply_current(&self) -> f64 {
        2.0 * self.i_half + self.i2 + if self.active_feedback { self.i_fb } else { 0.0 }
    }

    /// Input common-mode voltage the cell is designed for (set by the
    /// termination to VDD through 50 Ω carrying ~0: ≈ VDD when driven by
    /// an AC-coupled source, or the driver's CM when DC-coupled). The
    /// test harness uses a mid-supply CM appropriate to a DC-coupled
    /// CML driver.
    #[must_use]
    pub fn input_common_mode(&self) -> f64 {
        1.2
    }

    /// Stage-1 output common mode (for chaining checks).
    #[must_use]
    pub fn stage1_common_mode(&self) -> f64 {
        cml_pdk::VDD - self.i_half * self.r1
    }
}

/// Builds the equalizer into `ckt`. The differential output is stage 2's
/// output port.
pub fn build(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &EqualizerConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    // Optional 50 Ω input termination to VDD (CML convention).
    if cfg.input_termination {
        ckt.add(Resistor::new(&format!("{prefix}_RTp"), vdd, input.p, 50.0));
        ckt.add(Resistor::new(&format!("{prefix}_RTn"), vdd, input.n, 50.0));
    }

    // ---- Stage 1: degenerated transconductance pair ----
    let s1 = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_o1p")),
        ckt.internal_node(&format!("{prefix}_o1n")),
    );
    let src_a = ckt.internal_node(&format!("{prefix}_sa"));
    let src_b = ckt.internal_node(&format!("{prefix}_sb"));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M1a"),
        s1.n,
        input.p,
        src_a,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M1b"),
        s1.p,
        input.n,
        src_b,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    // Split tails.
    ckt.add(Isource::dc(
        &format!("{prefix}_ITa"),
        src_a,
        Circuit::GROUND,
        cfg.i_half,
    ));
    ckt.add(Isource::dc(
        &format!("{prefix}_ITb"),
        src_b,
        Circuit::GROUND,
        cfg.i_half,
    ));
    // Degeneration: triode NMOS controlled by V1, shunted by C_deg.
    let vctl = ckt.internal_node(&format!("{prefix}_vc"));
    ckt.add(Vsource::dc(
        &format!("{prefix}_VC"),
        vctl,
        Circuit::GROUND,
        cfg.v_control,
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_Mdeg"),
        src_a,
        vctl,
        src_b,
        Circuit::GROUND,
        pdk.nmos(cfg.w_deg, cml_pdk::L_MIN),
    ));
    ckt.add(Capacitor::new(
        &format!("{prefix}_Cdeg"),
        src_a,
        src_b,
        cfg.c_deg,
    ));
    // Stage-1 loads.
    ckt.add(Resistor::new(&format!("{prefix}_R1a"), vdd, s1.n, cfg.r1));
    ckt.add(Resistor::new(&format!("{prefix}_R1b"), vdd, s1.p, cfg.r1));

    // ---- Stage 2: transimpedance (Cherry-Hooper) ----
    let t2 = ckt.internal_node(&format!("{prefix}_t2"));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M2a"),
        output.n,
        s1.p,
        t2,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M2b"),
        output.p,
        s1.n,
        t2,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Isource::dc(
        &format!("{prefix}_IT2"),
        t2,
        Circuit::GROUND,
        cfg.i2,
    ));
    ckt.add(Resistor::new(
        &format!("{prefix}_R2a"),
        vdd,
        output.n,
        cfg.r2,
    ));
    ckt.add(Resistor::new(
        &format!("{prefix}_R2b"),
        vdd,
        output.p,
        cfg.r2,
    ));
    // Cherry-Hooper feedback resistors: output back to the interstage
    // nodes (lowering the impedance stage 1 sees).
    ckt.add(Resistor::new(
        &format!("{prefix}_RFa"),
        output.p,
        s1.p,
        cfg.rf,
    ));
    ckt.add(Resistor::new(
        &format!("{prefix}_RFb"),
        output.n,
        s1.n,
        cfg.rf,
    ));

    // ---- Active feedback current buffers (M1/M2 in the paper) ----
    if cfg.active_feedback {
        let tf = ckt.internal_node(&format!("{prefix}_tf"));
        let w_fb = cfg.w_in * 0.3;
        ckt.add(Mosfet::new(
            &format!("{prefix}_Mf1"),
            s1.p,
            output.n,
            tf,
            Circuit::GROUND,
            pdk.nmos(w_fb, cml_pdk::L_MIN),
        ));
        ckt.add(Mosfet::new(
            &format!("{prefix}_Mf2"),
            s1.n,
            output.p,
            tf,
            Circuit::GROUND,
            pdk.nmos(w_fb, cml_pdk::L_MIN),
        ));
        ckt.add(Isource::dc(
            &format!("{prefix}_ITf"),
            tf,
            Circuit::GROUND,
            cfg.i_fb,
        ));
    }
    crate::cells::debug_assert_unique_names(ckt, prefix);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_numeric::logspace;
    use cml_sig::Bode;

    fn eq_bode(cfg: &EqualizerConfig) -> Bode {
        let pdk = Pdk018::typical();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
        build(&mut ckt, &pdk, cfg, "eq", input, output, vdd);
        ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
        ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
        let freqs = logspace(1e7, 40e9, 140);
        crate::freq::differential_bode(&ckt, output, &freqs).unwrap()
    }

    #[test]
    fn equalizer_has_high_pass_boost() {
        let bode = eq_bode(&EqualizerConfig::max_boost());
        let dc = bode.dc_gain_db();
        let peak = bode.peaking_db();
        // A proper equalizer shows several dB of high-frequency boost
        // above its DC gain, peaking in the GHz range.
        assert!(peak > 3.0, "boost = {peak} dB");
        let f_peak = bode.peak_freq();
        assert!(
            f_peak > 5e8 && f_peak < 2e10,
            "boost frequency = {f_peak:.3e}"
        );
        assert!(dc.is_finite());
    }

    #[test]
    fn control_voltage_tunes_low_frequency_gain() {
        // Fig. 5: gain from DC to ~6 GHz adjusted by the NMOS gate
        // voltage; high-frequency gain stays put while DC gain moves.
        let boost = eq_bode(&EqualizerConfig::max_boost());
        let flat = eq_bode(&EqualizerConfig {
            v_control: 1.8,
            ..EqualizerConfig::paper_default()
        });
        // Strong degeneration (low V1) lowers DC gain…
        assert!(
            boost.dc_gain_db() < flat.dc_gain_db() - 2.0,
            "dc gains: boost {} vs flat {}",
            boost.dc_gain_db(),
            flat.dc_gain_db()
        );
        // …while boosting relative high-frequency content.
        assert!(boost.peaking_db() > flat.peaking_db() + 1.5);
    }

    #[test]
    fn active_feedback_raises_gain() {
        // Fig. 5(b) vs 5(a): the current buffers add gain.
        let with = eq_bode(&EqualizerConfig::paper_default());
        let without = eq_bode(&EqualizerConfig {
            active_feedback: false,
            ..EqualizerConfig::paper_default()
        });
        assert!(
            with.dc_gain_db() > without.dc_gain_db() + 0.5,
            "with fb {} vs without {}",
            with.dc_gain_db(),
            without.dc_gain_db()
        );
    }

    #[test]
    fn input_termination_is_50_ohms() {
        // Measure input impedance: drive a 1 A AC current into in_p and
        // read the voltage (the termination dominates at low frequency).
        let pdk = Pdk018::typical();
        let cfg = EqualizerConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        // Bias CM through large resistors so the op point is defined.
        let cm = ckt.node("cm");
        ckt.add(Vsource::dc(
            "VCM",
            cm,
            Circuit::GROUND,
            cfg.input_common_mode(),
        ));
        ckt.add(Resistor::new("RBp", cm, input.p, 1e5));
        ckt.add(Resistor::new("RBn", cm, input.n, 1e5));
        ckt.add(Isource::dc("IIN", Circuit::GROUND, input.p, 0.0).with_ac(1.0));
        build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
        let ac = crate::freq::response(&ckt, &[1e8]).unwrap();
        let zin = ac.voltage(input.p, 0).abs();
        assert!(
            zin > 30.0 && zin < 80.0,
            "input impedance = {zin} Ω, want ≈ 50"
        );
    }

    #[test]
    fn supply_current_accounting() {
        let cfg = EqualizerConfig::paper_default();
        let expect = 2e-3 + 2e-3 + 0.4e-3;
        assert!((cfg.supply_current() - expect).abs() < 1e-12);
    }
}
