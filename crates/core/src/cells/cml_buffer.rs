//! The paper's wide-band CML buffer cell (Fig. 6).
//!
//! A differential pair with three bandwidth tricks layered on top:
//!
//! 1. **PMOS active-inductor load** — each load is a diode-connected
//!    PMOS whose gate reaches its drain *through* a resistor `R_g`. At
//!    low frequency the device is the familiar `1/gm` diode resistor; at
//!    high frequency `R_g·Cgs` decouples the gate, the device turns into
//!    a current source and the impedance rises toward `r_o` — an
//!    inductive peaking load (`L_eff ≈ R_g·Cgs/gm`) at a fraction of a
//!    spiral inductor's area (the paper's headline 80 % area saving).
//! 2. **Active feedback** — a weak cross-coupled pair (M5/M6 driven
//!    through the M3/M4 current buffers in the paper; collapsed here to
//!    the equivalent cross-coupled negative-gm load) that boosts gain
//!    without adding input capacitance.
//! 3. **Negative Miller capacitance** — accumulation-mode varactors
//!    (M7/M8) cross-coupled from each input to the non-inverted output,
//!    cancelling the input pair's Cgd Miller multiplication.

use super::DiffPort;
use crate::design::CmlStage;
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Configuration of one CML buffer instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CmlBufferConfig {
    /// Electrical design point (tail current, load, overdrive).
    pub stage: CmlStage,
    /// Multiplier on the nominal PMOS load width. Larger PMOS = higher
    /// load gm = lower gain / higher bandwidth — the Fig. 7 sweep knob.
    pub pmos_scale: f64,
    /// Active-inductor gate resistance, ohms. 0 disables the resistor
    /// (gate tied straight to drain: plain diode load, no peaking).
    pub r_gate: f64,
    /// Cross-coupled feedback pair tail current as a fraction of the main
    /// tail (0 disables active feedback). Must stay below the stability
    /// limit `1/(gm_fb·R_on) > 1`.
    pub feedback_frac: f64,
    /// Cross-coupled negative-Miller capacitance, farads (0 disables).
    pub neg_miller: f64,
}

impl CmlBufferConfig {
    /// The paper's nominal internal buffer: 1 mA / 250 Ω / 250 mV swing,
    /// active inductor, feedback and Miller cancellation enabled.
    #[must_use]
    pub fn paper_default() -> Self {
        CmlBufferConfig {
            stage: crate::design::paper::internal_stage(),
            pmos_scale: 1.0,
            r_gate: 400.0,
            feedback_frac: 0.25,
            neg_miller: 4e-15,
        }
    }

    /// Same design point with every wide-band technique disabled — the
    /// ablation baseline.
    #[must_use]
    pub fn plain() -> Self {
        CmlBufferConfig {
            stage: crate::design::paper::internal_stage(),
            pmos_scale: 1.0,
            r_gate: 0.0,
            feedback_frac: 0.0,
            neg_miller: 0.0,
        }
    }

    /// Static current drawn from the supply, amps.
    #[must_use]
    pub fn supply_current(&self) -> f64 {
        self.stage.i_tail * (1.0 + self.feedback_frac)
    }
}

/// Builds one CML buffer into `ckt`.
///
/// `prefix` namespaces all element and internal node names; `input` and
/// `output` are the differential ports; `vdd` the supply node. Input
/// common mode should sit near `VDD − swing/2` (a previous stage's
/// output level).
pub fn build(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &CmlBufferConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    let stage = &cfg.stage;
    let w_in = stage.input_width(pdk);
    let w_p = crate::design::pmos_load_width(stage.r_load, stage.i_tail, pdk) * cfg.pmos_scale;
    let tail = ckt.internal_node(&format!("{prefix}_tail"));

    // Input differential pair: in_p steers current into out_n.
    ckt.add(Mosfet::new(
        &format!("{prefix}_M1"),
        output.n,
        input.p,
        tail,
        Circuit::GROUND,
        pdk.nmos(w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M2"),
        output.p,
        input.n,
        tail,
        Circuit::GROUND,
        pdk.nmos(w_in, cml_pdk::L_MIN),
    ));
    // Tail current (BMVR-derived bias in the full chip).
    ckt.add(Isource::dc(
        &format!("{prefix}_IT"),
        tail,
        Circuit::GROUND,
        stage.i_tail,
    ));

    // PMOS active-inductor loads: diode-connected through R_g.
    for (leg, out) in [("a", output.n), ("b", output.p)] {
        let gate = if cfg.r_gate > 0.0 {
            let g = ckt.internal_node(&format!("{prefix}_g{leg}"));
            ckt.add(Resistor::new(
                &format!("{prefix}_RG{leg}"),
                g,
                out,
                cfg.r_gate,
            ));
            g
        } else {
            out // plain diode connection
        };
        ckt.add(Mosfet::new(
            &format!("{prefix}_MP{leg}"),
            out,
            gate,
            vdd,
            vdd,
            pdk.pmos(w_p, cml_pdk::L_MIN),
        ));
    }

    // Active feedback: cross-coupled pair on its own (smaller) tail.
    if cfg.feedback_frac > 0.0 {
        let fb_tail = ckt.internal_node(&format!("{prefix}_fbt"));
        let w_fb = w_in * cfg.feedback_frac;
        ckt.add(Mosfet::new(
            &format!("{prefix}_M5"),
            output.n,
            output.p,
            fb_tail,
            Circuit::GROUND,
            pdk.nmos(w_fb, cml_pdk::L_MIN),
        ));
        ckt.add(Mosfet::new(
            &format!("{prefix}_M6"),
            output.p,
            output.n,
            fb_tail,
            Circuit::GROUND,
            pdk.nmos(w_fb, cml_pdk::L_MIN),
        ));
        ckt.add(Isource::dc(
            &format!("{prefix}_IFB"),
            fb_tail,
            Circuit::GROUND,
            stage.i_tail * cfg.feedback_frac,
        ));
    }

    // Negative Miller capacitance: input to same-phase output.
    if cfg.neg_miller > 0.0 {
        ckt.add(Capacitor::new(
            &format!("{prefix}_CM1"),
            input.p,
            output.p,
            cfg.neg_miller,
        ));
        ckt.add(Capacitor::new(
            &format!("{prefix}_CM2"),
            input.n,
            output.n,
            cfg.neg_miller,
        ));
    }
    crate::cells::debug_assert_unique_names(ckt, prefix);
}

/// Output common-mode voltage this buffer settles to (next stage's input
/// common mode): `VDD − |V_TH,p| − V_ov,p` with the diode load's
/// overdrive `V_ov,p = R_on·I_tail / √pmos_scale`.
#[must_use]
pub fn output_common_mode(cfg: &CmlBufferConfig) -> f64 {
    let vov = cfg.stage.r_load * cfg.stage.i_tail / cfg.pmos_scale.sqrt();
    cml_pdk::VDD - 0.45 - vov
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_numeric::logspace;
    use cml_sig::Bode;

    fn buffer_bode(cfg: &CmlBufferConfig, c_load: f64) -> Bode {
        let pdk = Pdk018::typical();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(&mut ckt, "VIN", input, output_common_mode(cfg), None);
        build(&mut ckt, &pdk, cfg, "buf", input, output, vdd);
        if c_load > 0.0 {
            ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, c_load));
            ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, c_load));
        }
        let freqs = logspace(1e7, 60e9, 120);
        crate::freq::differential_bode(&ckt, output, &freqs).unwrap()
    }

    #[test]
    fn balanced_op_point() {
        let pdk = Pdk018::typical();
        let cfg = CmlBufferConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(&mut ckt, "VIN", input, output_common_mode(&cfg), None);
        build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
        let op = cml_spice::analysis::op::solve(&ckt).unwrap();
        let vp = op.voltage(output.p);
        let vn = op.voltage(output.n);
        // Symmetric circuit, symmetric drive: outputs match.
        assert!((vp - vn).abs() < 1e-3, "outputs differ: {vp} vs {vn}");
        // Output CM within the expected window below VDD.
        assert!(vp < 1.4 && vp > 0.9, "vout cm = {vp}");
    }

    #[test]
    fn has_gain_and_bandwidth_at_10gbps() {
        let bode = buffer_bode(&CmlBufferConfig::paper_default(), 20e-15);
        let dc = bode.dc_gain_db();
        assert!(dc > -1.0, "buffer should be ~unity or better, got {dc} dB");
        let bw = bode.bandwidth_3db().expect("must roll off in sweep");
        assert!(bw > 5e9, "bw = {bw:.3e} must support 10 Gb/s");
    }

    #[test]
    fn active_inductor_extends_bandwidth() {
        let mut with = CmlBufferConfig::paper_default();
        with.feedback_frac = 0.0;
        with.neg_miller = 0.0;
        let mut without = with.clone();
        without.r_gate = 0.0;
        let c_load = 60e-15;
        let bw_with = buffer_bode(&with, c_load).bandwidth_3db().unwrap();
        let bw_without = buffer_bode(&without, c_load).bandwidth_3db().unwrap();
        assert!(
            bw_with > 1.2 * bw_without,
            "active inductor should extend bandwidth: {bw_with:.3e} vs {bw_without:.3e}"
        );
    }

    #[test]
    fn feedback_raises_gain() {
        let mut with = CmlBufferConfig::paper_default();
        with.neg_miller = 0.0;
        let mut without = with.clone();
        without.feedback_frac = 0.0;
        let g_with = buffer_bode(&with, 20e-15).dc_gain_db();
        let g_without = buffer_bode(&without, 20e-15).dc_gain_db();
        assert!(
            g_with > g_without + 0.5,
            "feedback should add gain: {g_with} vs {g_without} dB"
        );
    }

    #[test]
    fn larger_pmos_lowers_gain_raises_bandwidth() {
        let mut small = CmlBufferConfig::paper_default();
        small.feedback_frac = 0.0;
        small.neg_miller = 0.0;
        small.r_gate = 0.0;
        let mut large = small.clone();
        large.pmos_scale = 3.0;
        // External load dominating the loads' self-capacitance, so the
        // higher load gm shows up as bandwidth.
        let b_small = buffer_bode(&small, 250e-15);
        let b_large = buffer_bode(&large, 250e-15);
        assert!(b_large.dc_gain_db() < b_small.dc_gain_db());
        assert!(b_large.bandwidth_3db().unwrap() > b_small.bandwidth_3db().unwrap());
    }

    #[test]
    fn supply_current_counts_feedback() {
        let cfg = CmlBufferConfig::paper_default();
        assert!((cfg.supply_current() - 1.25e-3).abs() < 1e-9);
        assert!((CmlBufferConfig::plain().supply_current() - 1e-3).abs() < 1e-9);
    }
}
