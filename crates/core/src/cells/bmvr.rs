//! Beta-multiplier voltage reference (paper Fig. 12, §III.E).
//!
//! The BMVR [Liu & Baker 1998] generates a supply-insensitive bias for
//! every tail-current source in the I/O interface. Two matched branches
//! force equal currents through an NMOS pair sized 1 : K; the width
//! mismatch leaves a ΔV_GS that drops across the source resistor `R_s`,
//! setting `I = 2/(kp·(W/L)·R_s²)·(1 − 1/√K)²` independent of `V_DD` to
//! first order. The reference output is the gate voltage of the unit
//! device, `V_ref = V_GS1 = V_TH + V_ov1`.
//!
//! Temperature behaviour: mobility falls with T (raising `V_ov`), `V_TH`
//! falls with T — the two partially cancel, which is what lets the paper
//! quote < 550 ppm/°C. Supply sensitivity comes only through channel-
//! length modulation (< 26 mV/V in the paper).
//!
//! A start-up resistor from `V_DD` to the mirror gate keeps the solver
//! (and the real circuit) off the degenerate zero-current state.

use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Configuration of the beta-multiplier reference.
#[derive(Debug, Clone, PartialEq)]
pub struct BmvrConfig {
    /// Unit NMOS width, meters.
    pub w_n: f64,
    /// NMOS channel length, meters (longer than minimum for matching and
    /// low λ).
    pub l_n: f64,
    /// Width multiplier K of the second NMOS.
    pub k: f64,
    /// Source resistor, ohms — the trim knob ("tuned to within 10 mV").
    pub r_s: f64,
    /// PMOS mirror width, meters.
    pub w_p: f64,
    /// Start-up resistor, ohms.
    pub r_startup: f64,
}

impl BmvrConfig {
    /// The nominal design: K = 4, branch current ≈ 100 µA,
    /// `V_ref ≈ 0.75 V`.
    #[must_use]
    pub fn paper_default() -> Self {
        BmvrConfig {
            w_n: 20e-6,
            l_n: 1.0e-6,
            k: 4.0,
            r_s: 1.2e3,
            w_p: 30e-6,
            r_startup: 2e6,
        }
    }

    /// Predicted branch current from the hand equation, amps.
    #[must_use]
    pub fn predicted_current(&self, pdk: &Pdk018) -> f64 {
        let card = pdk.nmos(self.w_n, self.l_n);
        let beta = card.kp * self.w_n / self.l_n;
        let k_term = 1.0 - 1.0 / self.k.sqrt();
        2.0 / (beta * self.r_s * self.r_s) * k_term * k_term
    }

    /// Predicted reference voltage, volts.
    #[must_use]
    pub fn predicted_vref(&self, pdk: &Pdk018) -> f64 {
        let card = pdk.nmos(self.w_n, self.l_n);
        let beta = card.kp * self.w_n / self.l_n;
        let i = self.predicted_current(pdk);
        card.vth0 + (2.0 * i / beta).sqrt()
    }
}

/// Builds the BMVR into `ckt` and returns the reference-voltage node.
pub fn build(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &BmvrConfig,
    prefix: &str,
    vdd: NodeId,
) -> NodeId {
    let vref = ckt.node(&format!("{prefix}_vref")); // gate of M1, the output
    let vpg = ckt.internal_node(&format!("{prefix}_pg")); // PMOS mirror gate
    let d1 = vref; // M1 is diode-connected: drain = gate = vref
    let d2 = vpg; // M2's drain diode-connects the PMOS mirror
    let s2 = ckt.internal_node(&format!("{prefix}_s2"));

    // NMOS pair: M1 unit device (diode-connected), M2 = K× wider with
    // source resistor.
    ckt.add(Mosfet::new(
        &format!("{prefix}_MN1"),
        d1,
        vref,
        Circuit::GROUND,
        Circuit::GROUND,
        pdk.nmos(cfg.w_n, cfg.l_n),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_MN2"),
        d2,
        vref,
        s2,
        Circuit::GROUND,
        pdk.nmos(cfg.w_n * cfg.k, cfg.l_n),
    ));
    ckt.add(Resistor::new(
        &format!("{prefix}_RS"),
        s2,
        Circuit::GROUND,
        cfg.r_s,
    ));

    // PMOS mirror forcing equal branch currents (diode device on M2's
    // branch).
    ckt.add(Mosfet::new(
        &format!("{prefix}_MP1"),
        d1,
        vpg,
        vdd,
        vdd,
        pdk.pmos(cfg.w_p, cfg.l_n),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_MP2"),
        d2,
        vpg,
        vdd,
        vdd,
        pdk.pmos(cfg.w_p, cfg.l_n),
    ));

    // Start-up: leak current into the NMOS gate so the zero state is not
    // an equilibrium.
    ckt.add(Resistor::new(
        &format!("{prefix}_RST"),
        vdd,
        vref,
        cfg.r_startup,
    ));

    crate::cells::debug_assert_unique_names(ckt, prefix);

    vref
}

/// Solves the reference voltage at one supply/corner/temperature point.
///
/// # Errors
///
/// Propagates operating-point failures.
pub fn solve_vref(
    pdk: &Pdk018,
    cfg: &BmvrConfig,
    vdd_volts: f64,
) -> Result<f64, cml_spice::SpiceError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, vdd_volts));
    let vref = build(&mut ckt, pdk, cfg, "bmvr", vdd);
    let op = cml_spice::analysis::op::solve(&ckt)?;
    Ok(op.voltage(vref))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_pdk::Corner;

    #[test]
    fn vref_close_to_hand_prediction() {
        let pdk = Pdk018::typical();
        let cfg = BmvrConfig::paper_default();
        let vref = solve_vref(&pdk, &cfg, 1.8).unwrap();
        let predicted = cfg.predicted_vref(&pdk);
        assert!(
            (vref - predicted).abs() < 0.1,
            "vref {vref:.3} vs predicted {predicted:.3}"
        );
        assert!(vref > 0.5 && vref < 1.0, "vref = {vref}");
    }

    #[test]
    fn supply_sensitivity_below_spec() {
        // Paper: < 26 mV/V.
        let pdk = Pdk018::typical();
        let cfg = BmvrConfig::paper_default();
        let v_lo = solve_vref(&pdk, &cfg, 1.6).unwrap();
        let v_hi = solve_vref(&pdk, &cfg, 2.0).unwrap();
        let sens = (v_hi - v_lo).abs() / 0.4;
        assert!(sens < 26e-3, "supply sensitivity = {:.1} mV/V", sens * 1e3);
    }

    #[test]
    fn temperature_coefficient_below_spec() {
        // Paper: < 550 ppm/°C over the qualified range.
        let cfg = BmvrConfig::paper_default();
        let v_cold = solve_vref(&Pdk018::new(Corner::Tt, -40.0), &cfg, 1.8).unwrap();
        let v_hot = solve_vref(&Pdk018::new(Corner::Tt, 125.0), &cfg, 1.8).unwrap();
        let v_nom = solve_vref(&Pdk018::new(Corner::Tt, 27.0), &cfg, 1.8).unwrap();
        let tc = ((v_hot - v_cold) / (165.0 * v_nom)).abs() * 1e6;
        assert!(tc < 550.0, "tempco = {tc:.0} ppm/°C");
    }

    #[test]
    fn rs_trims_the_reference() {
        // "can be tuned to within 10 mV of a desired value": R_s moves
        // V_ref monotonically.
        let pdk = Pdk018::typical();
        let mut cfg = BmvrConfig::paper_default();
        let v_nom = solve_vref(&pdk, &cfg, 1.8).unwrap();
        cfg.r_s = 1.0e3;
        let v_small_rs = solve_vref(&pdk, &cfg, 1.8).unwrap();
        assert!(
            v_small_rs > v_nom + 5e-3,
            "smaller R_s must raise V_ref: {v_small_rs} vs {v_nom}"
        );
    }

    #[test]
    fn branch_current_near_prediction() {
        let pdk = Pdk018::typical();
        let cfg = BmvrConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
        build(&mut ckt, &pdk, &cfg, "bmvr", vdd);
        let op = cml_spice::analysis::op::solve(&ckt).unwrap();
        let i_vdd = -op.current("VDD").unwrap(); // total delivered
        let i_pred = cfg.predicted_current(&pdk);
        // Two branches plus startup leakage.
        assert!(
            i_vdd > 1.5 * i_pred && i_vdd < 3.5 * i_pred,
            "i_vdd {i_vdd:.3e} vs 2×{i_pred:.3e}"
        );
    }
}
