//! Transistor-level output interface blocks (paper Fig. 3, §III.D):
//! level shifter, tapered CML driver stages, the tunable CML delay
//! buffer and the Gilbert-style differentiator that together form the
//! voltage-peaking circuit.

use super::DiffPort;
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Level-shift circuit: NMOS source followers dropping the common mode
/// by one `V_GS` so the driver's input pairs stay in saturation.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelShiftConfig {
    /// Follower width, meters.
    pub w: f64,
    /// Pull-down current per side, amps.
    pub i_bias: f64,
}

impl LevelShiftConfig {
    /// Paper default: 0.5 mA per follower.
    #[must_use]
    pub fn paper_default() -> Self {
        LevelShiftConfig {
            w: 12e-6,
            i_bias: 0.5e-3,
        }
    }
}

/// Builds the level shifter.
pub fn build_level_shift(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &LevelShiftConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    for (leg, (i, o)) in [("a", (input.p, output.p)), ("b", (input.n, output.n))] {
        ckt.add(Mosfet::new(
            &format!("{prefix}_MF{leg}"),
            vdd,
            i,
            o,
            Circuit::GROUND,
            pdk.nmos(cfg.w, cml_pdk::L_MIN),
        ));
        ckt.add(Isource::dc(
            &format!("{prefix}_IB{leg}"),
            o,
            Circuit::GROUND,
            cfg.i_bias,
        ));
    }
}

/// One driver stage of the tapered output chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverStageConfig {
    /// Tail current, amps.
    pub i_tail: f64,
    /// Load resistance per side, ohms (50 Ω on the final stage).
    pub r_load: f64,
    /// Input-pair width, meters.
    pub w_in: f64,
}

/// The paper's three tapered stages: "the tapered CML output buffer
/// increases driving capability stage by stage", ending at 8 mA into
/// 50 Ω.
#[must_use]
pub fn tapered_stages() -> [DriverStageConfig; 3] {
    [
        DriverStageConfig {
            i_tail: 1e-3,
            r_load: 250.0,
            w_in: 12e-6,
        },
        DriverStageConfig {
            i_tail: 2.7e-3,
            r_load: 120.0,
            w_in: 32e-6,
        },
        DriverStageConfig {
            i_tail: crate::design::paper::OUTPUT_DRIVE,
            r_load: 50.0,
            w_in: 90e-6,
        },
    ]
}

/// Builds one resistor-loaded driver stage; returns the tail node (the
/// voltage-peaking circuit injects its transition-boost current there).
pub fn build_driver_stage(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &DriverStageConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) -> NodeId {
    let tail = ckt.internal_node(&format!("{prefix}_tail"));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M1"),
        output.n,
        input.p,
        tail,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M2"),
        output.p,
        input.n,
        tail,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Isource::dc(
        &format!("{prefix}_IT"),
        tail,
        Circuit::GROUND,
        cfg.i_tail,
    ));
    ckt.add(Resistor::new(
        &format!("{prefix}_RLa"),
        vdd,
        output.n,
        cfg.r_load,
    ));
    ckt.add(Resistor::new(
        &format!("{prefix}_RLb"),
        vdd,
        output.p,
        cfg.r_load,
    ));
    tail
}

/// Tunable CML delay buffer (Fig. 10's delay element): a resistor-loaded
/// CML stage whose propagation delay is set by the tail current — the
/// paper "controls the delay by changing the tail current … to alter the
/// voltage-peaking spike width".
#[derive(Debug, Clone, PartialEq)]
pub struct DelayCellConfig {
    /// Tail current, amps (lower = slower = more delay).
    pub i_tail: f64,
    /// Load resistance, ohms.
    pub r_load: f64,
    /// Input width, meters.
    pub w_in: f64,
    /// Explicit load capacitance that the delay works against, farads.
    pub c_load: f64,
}

impl DelayCellConfig {
    /// Mid-range delay setting.
    #[must_use]
    pub fn paper_default() -> Self {
        DelayCellConfig {
            i_tail: 0.8e-3,
            r_load: 400.0,
            w_in: 24e-6,
            c_load: 250e-15,
        }
    }
}

/// Builds the delay cell: a diode-PMOS-loaded CML stage plus explicit
/// load capacitance. The diode load's resistance is `1/gm ∝ 1/√I_tail`,
/// so the RC delay *tunes with the tail current* — the paper's "controls
/// the delay by changing the tail current" knob (a plain resistor load
/// would leave the delay nearly current-independent).
pub fn build_delay_cell(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &DelayCellConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    let tail = ckt.internal_node(&format!("{prefix}_tail"));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M1"),
        output.n,
        input.p,
        tail,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M2"),
        output.p,
        input.n,
        tail,
        Circuit::GROUND,
        pdk.nmos(cfg.w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Isource::dc(
        &format!("{prefix}_IT"),
        tail,
        Circuit::GROUND,
        cfg.i_tail,
    ));
    // Diode-connected PMOS loads sized so 1/gm = r_load at the nominal
    // tail current.
    let w_p =
        crate::design::pmos_load_width(cfg.r_load, DelayCellConfig::paper_default().i_tail, pdk);
    for (leg, out) in [("a", output.n), ("b", output.p)] {
        ckt.add(Mosfet::new(
            &format!("{prefix}_MP{leg}"),
            out,
            out,
            vdd,
            vdd,
            pdk.pmos(w_p, cml_pdk::L_MIN),
        ));
    }
    ckt.add(Capacitor::new(
        &format!("{prefix}_CDa"),
        output.p,
        Circuit::GROUND,
        cfg.c_load,
    ));
    ckt.add(Capacitor::new(
        &format!("{prefix}_CDb"),
        output.n,
        Circuit::GROUND,
        cfg.c_load,
    ));
}

/// Gilbert-quad differentiator (Fig. 11): "the logical function is
/// similar to that of a digital XOR gate"; the tail current sets the
/// voltage-peaking spike height.
///
/// Stacked structure: the bottom pair is driven by the *delayed* signal
/// (lower common mode), the top quad by the direct signal, and the
/// output currents sum into the supplied output nodes — in the peaking
/// circuit those are the second driver stage's outputs, so the spikes
/// are injected as current, riding on the main data.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentiatorConfig {
    /// Tail current (spike height), amps.
    pub i_tail: f64,
    /// Quad/bottom device width, meters.
    pub w: f64,
}

impl DifferentiatorConfig {
    /// Paper default: 1.5 mA tail → ≈20 % peaking on the 8 mA driver.
    #[must_use]
    pub fn paper_default() -> Self {
        DifferentiatorConfig {
            i_tail: 1.5e-3,
            w: 48e-6,
        }
    }
}

/// Builds the differentiator. `a` is the direct (top) input, `b` the
/// delayed (bottom) input; the XOR-weighted differential current is
/// pushed into `out` (which must have resistive loads, supplied either
/// by the caller or by a driver stage when current-summing).
#[allow(clippy::too_many_arguments)] // mirrors the cell's port list
pub fn build_differentiator(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &DifferentiatorConfig,
    prefix: &str,
    a: DiffPort,
    b: DiffPort,
    out: DiffPort,
    _vdd: NodeId,
) {
    let card = pdk.nmos(cfg.w, cml_pdk::L_MIN);
    let tail = ckt.internal_node(&format!("{prefix}_tail"));
    let sa = ckt.internal_node(&format!("{prefix}_sa"));
    let sb = ckt.internal_node(&format!("{prefix}_sb"));
    // Bottom pair: delayed signal.
    ckt.add(Mosfet::new(
        &format!("{prefix}_MB1"),
        sa,
        b.p,
        tail,
        Circuit::GROUND,
        card.clone(),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_MB2"),
        sb,
        b.n,
        tail,
        Circuit::GROUND,
        card.clone(),
    ));
    ckt.add(Isource::dc(
        &format!("{prefix}_IT"),
        tail,
        Circuit::GROUND,
        cfg.i_tail,
    ));
    // Top quad: direct signal, XOR wiring (out.p collects A·B̄ + Ā·B).
    for (name, d, g, s) in [
        ("MT1", out.p, a.p, sa),
        ("MT2", out.n, a.n, sa),
        ("MT3", out.n, a.p, sb),
        ("MT4", out.p, a.n, sb),
    ] {
        ckt.add(Mosfet::new(
            &format!("{prefix}_{name}"),
            d,
            g,
            s,
            Circuit::GROUND,
            card.clone(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_sig::UniformWave;

    #[test]
    fn level_shift_drops_one_vgs() {
        let pdk = Pdk018::typical();
        let cfg = LevelShiftConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(&mut ckt, "VIN", input, 1.5, None);
        build_level_shift(&mut ckt, &pdk, &cfg, "ls", input, output, vdd);
        let op = cml_spice::analysis::op::solve(&ckt).unwrap();
        let drop = 1.5 - op.voltage(output.p);
        assert!(drop > 0.45 && drop < 0.9, "level shift = {drop} V");
        // Differential transparency.
        assert!((op.voltage(output.p) - op.voltage(output.n)).abs() < 1e-3);
    }

    #[test]
    fn final_stage_swing_is_about_250mv() {
        // 8 mA switched through 50 Ω single-ended loads: the paper's
        // "output swing range up to 250 mV" per side.
        let pdk = Pdk018::typical();
        let stage = &tapered_stages()[2];
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        // Fully switched: large differential input.
        let cm = 1.0;
        ckt.add(Vsource::dc("VIP", input.p, Circuit::GROUND, cm + 0.3));
        ckt.add(Vsource::dc("VIN", input.n, Circuit::GROUND, cm - 0.3));
        build_driver_stage(&mut ckt, &pdk, stage, "drv", input, output, vdd);
        // Far-end termination halves the DC load (double termination).
        ckt.add(Resistor::new("RTp", vdd, output.p, 50.0));
        ckt.add(Resistor::new("RTn", vdd, output.n, 50.0));
        let op = cml_spice::analysis::op::solve(&ckt).unwrap();
        let swing = (op.voltage(output.p) - op.voltage(output.n)).abs();
        // 8 mA × 25 Ω = 200 mV steered fully to one side.
        assert!(swing > 0.15 && swing < 0.3, "swing = {swing}");
    }

    #[test]
    fn delay_increases_as_tail_current_drops() {
        let pdk = Pdk018::typical();
        let measure_delay = |i_tail: f64| {
            let cfg = DelayCellConfig {
                i_tail,
                ..DelayCellConfig::paper_default()
            };
            let mut ckt = Circuit::new();
            let vdd = add_supply(&mut ckt, cml_pdk::VDD);
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            // Diode-load output CM ≈ VDD − |VTH| − Vov(I): drive near it.
            let cm = 1.1;
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                cm,
                Some(Waveform::step(cm - 0.125, cm + 0.125, 100e-12, 20e-12)),
            );
            build_delay_cell(&mut ckt, &pdk, &cfg, "dly", input, output, vdd);
            let tran =
                cml_spice::analysis::tran::run(&ckt, &TranConfig::new(0.6e-9, 1e-12)).unwrap();
            let diff = tran.differential(output.p, output.n);
            let w = UniformWave::from_series(tran.times(), &diff, 1e-12);
            // 50 % crossing time of the output minus the input edge center.
            let crossings =
                cml_numeric::interp::level_crossings(&w.times(), w.samples(), 0.0).unwrap();
            crossings[0] - 110e-12
        };
        let fast = measure_delay(1.6e-3);
        let slow = measure_delay(0.5e-3);
        assert!(
            slow > fast + 5e-12,
            "lower tail current must add delay: {slow:.3e} vs {fast:.3e}"
        );
    }

    #[test]
    fn differentiator_is_xor_like() {
        // DC truth table: output differential sign follows A XOR B.
        let pdk = Pdk018::typical();
        let run = |a_high: bool, b_high: bool| {
            let cfg = DifferentiatorConfig::paper_default();
            let mut ckt = Circuit::new();
            let vdd = add_supply(&mut ckt, cml_pdk::VDD);
            let a = DiffPort::named(&mut ckt, "a");
            let b = DiffPort::named(&mut ckt, "b");
            let out = DiffPort::named(&mut ckt, "out");
            // Output loads (stand-ins for the driver stage).
            ckt.add(Resistor::new("RLp", vdd, out.p, 150.0));
            ckt.add(Resistor::new("RLn", vdd, out.n, 150.0));
            let (cma, cmb) = (1.45, 0.85);
            let da = if a_high { 0.15 } else { -0.15 };
            let db = if b_high { 0.15 } else { -0.15 };
            ckt.add(Vsource::dc("VAp", a.p, Circuit::GROUND, cma + da));
            ckt.add(Vsource::dc("VAn", a.n, Circuit::GROUND, cma - da));
            ckt.add(Vsource::dc("VBp", b.p, Circuit::GROUND, cmb + db));
            ckt.add(Vsource::dc("VBn", b.n, Circuit::GROUND, cmb - db));
            build_differentiator(&mut ckt, &pdk, &cfg, "xor", a, b, out, vdd);
            let op = cml_spice::analysis::op::solve(&ckt).unwrap();
            op.voltage(out.p) - op.voltage(out.n)
        };
        let same_hh = run(true, true);
        let same_ll = run(false, false);
        let diff_hl = run(true, false);
        let diff_lh = run(false, true);
        // Same inputs → one polarity; different inputs → the other.
        assert!(
            diff_hl > same_hh + 0.05 && diff_lh > same_ll + 0.05,
            "xor truth table violated: HH {same_hh:.3} LL {same_ll:.3} HL {diff_hl:.3} LH {diff_lh:.3}"
        );
        // Symmetry between the two "same" and two "different" cases.
        assert!((same_hh - same_ll).abs() < 0.03);
        assert!((diff_hl - diff_lh).abs() < 0.03);
    }

    #[test]
    fn tapered_stages_escalate_current() {
        let stages = tapered_stages();
        assert!(stages[0].i_tail < stages[1].i_tail);
        assert!(stages[1].i_tail < stages[2].i_tail);
        assert!((stages[2].i_tail - 8e-3).abs() < 1e-12);
        assert!((stages[2].r_load - 50.0).abs() < 1e-12);
    }
}

/// Full transistor-level output interface (Fig. 3): level shift → three
/// tapered driver stages, with the voltage-peaking circuit (delay cell +
/// differentiator) wrapped around the second stage when enabled. The
/// final stage drives `output` with 50 Ω pull-ups; add the far-end
/// termination externally to model the line.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputInterfaceConfig {
    /// Level shifter.
    pub level_shift: LevelShiftConfig,
    /// Voltage peaking enabled (delay cell + differentiator).
    pub peaking: bool,
    /// Differentiator tail (spike height), amps.
    pub peak_current: f64,
    /// Delay-cell tail (spike width), amps.
    pub delay_current: f64,
}

impl OutputInterfaceConfig {
    /// Paper default: peaking on at the nominal tuning.
    #[must_use]
    pub fn paper_default() -> Self {
        OutputInterfaceConfig {
            level_shift: LevelShiftConfig::paper_default(),
            peaking: true,
            peak_current: DifferentiatorConfig::paper_default().i_tail,
            delay_current: DelayCellConfig::paper_default().i_tail,
        }
    }

    /// Peaking disabled (Fig. 16(a)).
    #[must_use]
    pub fn without_peaking() -> Self {
        OutputInterfaceConfig {
            peaking: false,
            ..OutputInterfaceConfig::paper_default()
        }
    }
}

/// Builds the output interface; returns nothing — `output` is the pad.
pub fn build_output_interface(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &OutputInterfaceConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    let stages = tapered_stages();
    let shifted = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_lsp")),
        ckt.internal_node(&format!("{prefix}_lsn")),
    );
    build_level_shift(
        ckt,
        pdk,
        &cfg.level_shift,
        &format!("{prefix}_ls"),
        input,
        shifted,
        vdd,
    );

    let s1 = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_s1p")),
        ckt.internal_node(&format!("{prefix}_s1n")),
    );
    build_driver_stage(
        ckt,
        pdk,
        &stages[0],
        &format!("{prefix}_d1"),
        shifted,
        s1,
        vdd,
    );

    let s2 = DiffPort::new(
        ckt.internal_node(&format!("{prefix}_s2p")),
        ckt.internal_node(&format!("{prefix}_s2n")),
    );
    build_driver_stage(ckt, pdk, &stages[1], &format!("{prefix}_d2"), s1, s2, vdd);

    // Final stage; the peaking circuit boosts ITS tail during
    // transitions, so the spikes appear directly at the pad in the
    // direction of the new bit.
    let tail3 = build_driver_stage(
        ckt,
        pdk,
        &stages[2],
        &format!("{prefix}_d3"),
        s2,
        output,
        vdd,
    );

    if cfg.peaking {
        // Delay cell fed from stage 2 (Fig. 10's tunable delay buffer;
        // using the larger stage-2 swing keeps the XOR quad fully
        // steered and time-aligns the spike with the final stage).
        let delayed = DiffPort::new(
            ckt.internal_node(&format!("{prefix}_dlp")),
            ckt.internal_node(&format!("{prefix}_dln")),
        );
        build_delay_cell(
            ckt,
            pdk,
            &DelayCellConfig {
                i_tail: cfg.delay_current,
                ..DelayCellConfig::paper_default()
            },
            &format!("{prefix}_dly"),
            s2,
            delayed,
            vdd,
        );
        // Differentiator with its own loads: XOR(data, delayed data) is
        // high during transitions.
        let xo = DiffPort::new(
            ckt.internal_node(&format!("{prefix}_xop")),
            ckt.internal_node(&format!("{prefix}_xon")),
        );
        ckt.add(Resistor::new(&format!("{prefix}_RXa"), vdd, xo.p, 150.0));
        ckt.add(Resistor::new(&format!("{prefix}_RXb"), vdd, xo.n, 150.0));
        build_differentiator(
            ckt,
            pdk,
            &DifferentiatorConfig {
                i_tail: cfg.peak_current,
                ..DifferentiatorConfig::paper_default()
            },
            &format!("{prefix}_dif"),
            s2,
            delayed,
            xo,
            vdd,
        );
        // Transition-boost: extra final-stage tail current proportional
        // to the XOR output. During a transition the pair is steering
        // toward the new bit, so the boost emphasizes the new level;
        // between transitions the XOR is low and the stage runs
        // de-emphasized — a current-mode 2-tap pre-emphasis, which is
        // how the spike height follows "the current of the current
        // source in the differentiator circuit".
        let r_xor = 150.0;
        let v_xor_full = cfg.peak_current * r_xor;
        let boost = 0.55 * crate::design::paper::OUTPUT_DRIVE; // sized for ≈20 % pad spikes
        ckt.add(Vccs::new(
            &format!("{prefix}_GPK"),
            tail3,
            Circuit::GROUND,
            xo.p,
            xo.n,
            boost / v_xor_full,
        ));
    }
    crate::cells::debug_assert_unique_names(ckt, prefix);
}

#[cfg(test)]
mod interface_tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;
    use cml_sig::{measure, UniformWave};

    fn run_interface(peaking: bool) -> UniformWave {
        let pdk = Pdk018::typical();
        let cfg = if peaking {
            OutputInterfaceConfig::paper_default()
        } else {
            OutputInterfaceConfig::without_peaking()
        };
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        // 10 Gb/s pattern with isolated transitions (spikes visible).
        let bits: Vec<bool> = (0..16).map(|i| (i / 4) % 2 == 0).collect();
        let cm = 1.55;
        let pwl = NrzConfig::new(100e-12, 0.25)
            .with_offset(cm)
            .render_pwl(&bits);
        add_diff_drive(&mut ckt, "VIN", input, cm, Some(Waveform::Pwl(pwl)));
        build_output_interface(&mut ckt, &pdk, &cfg, "oi", input, output, vdd);
        // Far-end termination.
        ckt.add(Resistor::new("RTp", vdd, output.p, 50.0));
        ckt.add(Resistor::new("RTn", vdd, output.n, 50.0));
        let tran =
            cml_spice::analysis::tran::run(&ckt, &TranConfig::new(1.6e-9, 1e-12)).expect("tran");
        let diff = tran.differential(output.p, output.n);
        UniformWave::from_series(tran.times(), &diff, 1e-12).skip_initial(0.15e-9)
    }

    #[test]
    fn transistor_output_interface_drives_250mv() {
        let w = run_interface(false);
        let swing = measure::swing(&w);
        // 8 mA into 25 Ω (double termination) ≈ 200 mV single-ended →
        // 400 mV differential.
        assert!(swing > 0.25 && swing < 0.55, "swing = {swing}");
    }

    /// Transition emphasis: peak amplitude right after an edge over the
    /// settled amplitude (median of |v|, robust to the spike samples).
    fn emphasis(w: &UniformWave) -> f64 {
        let abs: Vec<f64> = w.samples().iter().map(|v| v.abs()).collect();
        let peak = cml_numeric::stats::max(&abs).expect("non-empty");
        let settled = cml_numeric::stats::percentile(&abs, 50.0).expect("non-empty");
        peak / settled - 1.0
    }

    #[test]
    fn transistor_peaking_adds_transition_spikes() {
        let plain = run_interface(false);
        let peaked = run_interface(true);
        let e_plain = emphasis(&plain);
        let e_peaked = emphasis(&peaked);
        assert!(
            e_peaked > e_plain + 0.08,
            "peaking must emphasize transitions: {e_peaked:.3} vs {e_plain:.3}"
        );
        // Spike height in the paper's tuning-range class (≈20 %).
        assert!(
            e_peaked > 0.12 && e_peaked < 0.8,
            "emphasis = {e_peaked:.3}"
        );
        let _ = (measure::swing(&plain), Prbs::prbs7().period());
    }
}
