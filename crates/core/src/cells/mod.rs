//! Transistor-level netlist generators for the paper's circuit blocks.
//!
//! Each generator appends a named, parameterized instance of one §III
//! block to a [`cml_spice::Circuit`]. Cells compose: the limiting
//! amplifier instantiates gain stages, the interfaces instantiate
//! buffers. All cells are fully differential and expect an externally
//! supplied `vdd` node (so corner/supply sweeps stay in the caller's
//! hands) and bias their tails with ideal current sources standing in for
//! the BMVR-derived mirrors (the BMVR itself is [`bmvr`]).

pub mod bmvr;
pub mod cml_buffer;
pub mod equalizer;
pub mod gain_stage;
pub mod input_interface;
pub mod limiting_amp;
pub mod output_stage;

use cml_spice::prelude::*;

/// Differential port of a cell: positive and negative nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffPort {
    /// Positive (true) polarity node.
    pub p: NodeId,
    /// Negative (complement) polarity node.
    pub n: NodeId,
}

impl DiffPort {
    /// Creates a port from two nodes.
    #[must_use]
    pub fn new(p: NodeId, n: NodeId) -> Self {
        DiffPort { p, n }
    }

    /// Creates a port from two fresh named nodes `<base>_p` / `<base>_n`.
    #[must_use]
    pub fn named(ckt: &mut Circuit, base: &str) -> Self {
        DiffPort {
            p: ckt.node(&format!("{base}_p")),
            n: ckt.node(&format!("{base}_n")),
        }
    }
}

/// Adds a differential pair of voltage sources driving `port` around the
/// common-mode `vcm`, with AC magnitudes ±0.5 so the differential AC
/// drive is exactly 1 V (making differential node voltages read directly
/// as transfer functions).
pub fn add_diff_drive(
    ckt: &mut Circuit,
    name: &str,
    port: DiffPort,
    vcm: f64,
    waveform: Option<Waveform>,
) {
    let (wf_p, wf_n) = match waveform {
        Some(w) => {
            // Mirror the waveform around vcm for the complement leg.
            let wf_n = match &w {
                Waveform::Pwl(pts) => {
                    Waveform::Pwl(pts.iter().map(|&(t, v)| (t, 2.0 * vcm - v)).collect())
                }
                Waveform::Dc(v) => Waveform::Dc(2.0 * vcm - v),
                other => other.clone(),
            };
            (w, wf_n)
        }
        None => (Waveform::dc(vcm), Waveform::dc(vcm)),
    };
    ckt.add(Vsource::new(&format!("{name}_p"), port.p, Circuit::GROUND, wf_p).with_ac(0.5));
    ckt.add(Vsource::new(&format!("{name}_n"), port.n, Circuit::GROUND, wf_n).with_ac(-0.5));
}

/// Adds the supply rail: a `vdd` node held by an ideal source.
pub fn add_supply(ckt: &mut Circuit, volts: f64) -> NodeId {
    let vdd = ckt.node("vdd");
    ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, volts));
    vdd
}

/// Debug-build guard called at the end of every cell generator: asserts
/// the circuit's element names are still unique after the cell appended
/// its devices (the lint class a generator can most plausibly introduce
/// — e.g. two instances sharing a prefix). Full structural lint runs on
/// the *complete* circuit in the analysis precheck instead, because a
/// half-built circuit legitimately has undriven ports and would false-
/// positive the connectivity passes here.
pub fn debug_assert_unique_names(ckt: &Circuit, cell: &str) {
    if cfg!(debug_assertions) {
        let dupes = cml_spice::lint::duplicate_element_names(ckt);
        assert!(
            dupes.is_empty(),
            "cell '{cell}' left duplicate element names in the circuit: {dupes:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_port_names_nodes() {
        let mut ckt = Circuit::new();
        let port = DiffPort::named(&mut ckt, "in");
        assert_eq!(ckt.node_name(port.p), "in_p");
        assert_eq!(ckt.node_name(port.n), "in_n");
        assert_ne!(port.p, port.n);
    }

    #[test]
    fn diff_drive_mirrors_pwl() {
        let mut ckt = Circuit::new();
        let port = DiffPort::named(&mut ckt, "in");
        let wf = Waveform::Pwl(vec![(0.0, 1.0), (1e-9, 1.4)]);
        add_diff_drive(&mut ckt, "VIN", port, 1.2, Some(wf));
        let op = cml_spice::analysis::op::solve(&ckt).unwrap();
        // At t=0 (dc_value): p = 1.0, n = 1.4.
        assert!((op.voltage(port.p) - 1.0).abs() < 1e-9);
        assert!((op.voltage(port.n) - 1.4).abs() < 1e-9);
    }

    #[test]
    fn supply_rail_holds() {
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, 1.8);
        // A load so the node isn't floating-only-source.
        ckt.add(Resistor::new("RL", vdd, Circuit::GROUND, 1e3));
        let op = cml_spice::analysis::op::solve(&ckt).unwrap();
        assert!((op.voltage(vdd) - 1.8).abs() < 1e-9);
    }
}
