//! CML gain-stage amplifier (paper Fig. 9).
//!
//! Structurally the [`super::cml_buffer`] topology with poly pull-up
//! resistors instead of diode loads — "every amplifier gain stage is
//! composed by CML gain stage circuit that includes pull-up resistors in
//! order to get larger voltage gain" — plus the same active feedback and
//! negative Miller capacitance. Four of these in cascade form the
//! limiting amplifier's core (Fig. 8).

use super::DiffPort;
use crate::design::CmlStage;
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Configuration of one gain stage.
#[derive(Debug, Clone, PartialEq)]
pub struct GainStageConfig {
    /// Electrical design point. `r_load` here is a real poly resistor.
    pub stage: CmlStage,
    /// Cross-coupled feedback pair tail fraction (0 disables).
    /// Stability requires the feedback gm to stay below `1/R_load`.
    pub feedback_frac: f64,
    /// Negative Miller capacitance, farads (0 disables).
    pub neg_miller: f64,
    /// Fraction of `r_load` realized as a series PMOS active inductor
    /// (diode-connected through `r_gate`) instead of poly resistance —
    /// the stage's inductive-peaking knob (0 disables).
    pub peaking_frac: f64,
    /// Active-inductor gate resistance, ohms (sets the peaking zero).
    pub r_gate: f64,
}

impl GainStageConfig {
    /// The paper's limiting-amplifier gain stage: 2 mA tail, 300 Ω loads,
    /// gain ≈ gm·R ≈ 3 per stage (four stages plus the equalizer and
    /// buffers reach the 40 dB differential DC gain of Table I).
    #[must_use]
    pub fn paper_default() -> Self {
        GainStageConfig {
            stage: CmlStage {
                i_tail: 4e-3,
                r_load: 350.0,
                v_ov: 0.25,
            },
            feedback_frac: 0.0,
            neg_miller: 3e-15,
            peaking_frac: 0.3,
            r_gate: 400.0,
        }
    }

    /// The same stage with the peaking load disabled (pure poly load) —
    /// the ablation baseline.
    #[must_use]
    pub fn no_peaking() -> Self {
        GainStageConfig {
            peaking_frac: 0.0,
            ..GainStageConfig::paper_default()
        }
    }

    /// Static current drawn from the supply, amps.
    #[must_use]
    pub fn supply_current(&self) -> f64 {
        self.stage.i_tail * (1.0 + self.feedback_frac)
    }
}

/// Builds one gain stage into `ckt`. Interface identical to
/// [`super::cml_buffer::build`].
pub fn build(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &GainStageConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    let stage = &cfg.stage;
    let w_in = stage.input_width(pdk);
    let tail = ckt.internal_node(&format!("{prefix}_tail"));

    ckt.add(Mosfet::new(
        &format!("{prefix}_M1"),
        output.n,
        input.p,
        tail,
        Circuit::GROUND,
        pdk.nmos(w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Mosfet::new(
        &format!("{prefix}_M2"),
        output.p,
        input.n,
        tail,
        Circuit::GROUND,
        pdk.nmos(w_in, cml_pdk::L_MIN),
    ));
    ckt.add(Isource::dc(
        &format!("{prefix}_IT"),
        tail,
        Circuit::GROUND,
        stage.i_tail,
    ));

    // Loads: poly pull-up, optionally with a series PMOS active inductor
    // replacing `peaking_frac` of the resistance.
    for (leg, out) in [("a", output.n), ("b", output.p)] {
        if cfg.peaking_frac > 0.0 {
            let r_ind = stage.r_load * cfg.peaking_frac; // 1/gm_p share
            let r_poly = stage.r_load - r_ind;
            let gm_p = 1.0 / r_ind;
            let card = pdk.pmos(1e-6, cml_pdk::L_MIN);
            let wl = gm_p * gm_p / (2.0 * card.kp * (stage.i_tail / 2.0));
            let w_p = wl * cml_pdk::L_MIN;
            let x = ckt.internal_node(&format!("{prefix}_x{leg}"));
            let g = ckt.internal_node(&format!("{prefix}_pg{leg}"));
            ckt.add(Resistor::new(
                &format!("{prefix}_RG{leg}"),
                g,
                x,
                cfg.r_gate,
            ));
            ckt.add(Mosfet::new(
                &format!("{prefix}_MP{leg}"),
                x,
                g,
                vdd,
                vdd,
                pdk.pmos(w_p, cml_pdk::L_MIN),
            ));
            ckt.add(Resistor::new(&format!("{prefix}_RL{leg}"), x, out, r_poly));
        } else {
            ckt.add(Resistor::new(
                &format!("{prefix}_RL{leg}"),
                vdd,
                out,
                stage.r_load,
            ));
        }
    }

    if cfg.feedback_frac > 0.0 {
        let fb_tail = ckt.internal_node(&format!("{prefix}_fbt"));
        let w_fb = w_in * cfg.feedback_frac;
        ckt.add(Mosfet::new(
            &format!("{prefix}_M5"),
            output.n,
            output.p,
            fb_tail,
            Circuit::GROUND,
            pdk.nmos(w_fb, cml_pdk::L_MIN),
        ));
        ckt.add(Mosfet::new(
            &format!("{prefix}_M6"),
            output.p,
            output.n,
            fb_tail,
            Circuit::GROUND,
            pdk.nmos(w_fb, cml_pdk::L_MIN),
        ));
        ckt.add(Isource::dc(
            &format!("{prefix}_IFB"),
            fb_tail,
            Circuit::GROUND,
            stage.i_tail * cfg.feedback_frac,
        ));
    }

    if cfg.neg_miller > 0.0 {
        ckt.add(Capacitor::new(
            &format!("{prefix}_CM1"),
            input.p,
            output.p,
            cfg.neg_miller,
        ));
        ckt.add(Capacitor::new(
            &format!("{prefix}_CM2"),
            input.n,
            output.n,
            cfg.neg_miller,
        ));
    }
    crate::cells::debug_assert_unique_names(ckt, prefix);
}

/// Output common mode: `VDD − (I_tail·(1+fb)/2)·R_load`, minus the PMOS
/// threshold drop when a peaking load is in series.
#[must_use]
pub fn output_common_mode(cfg: &GainStageConfig) -> f64 {
    let vth_drop = if cfg.peaking_frac > 0.0 { 0.45 } else { 0.0 };
    cml_pdk::VDD - vth_drop - cfg.stage.i_tail * (1.0 + cfg.feedback_frac) / 2.0 * cfg.stage.r_load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_numeric::logspace;
    use cml_sig::Bode;

    fn stage_bode(cfg: &GainStageConfig, c_load: f64) -> Bode {
        let pdk = Pdk018::typical();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(&mut ckt, "VIN", input, output_common_mode(cfg), None);
        build(&mut ckt, &pdk, cfg, "gs", input, output, vdd);
        ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, c_load));
        ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, c_load));
        let freqs = logspace(1e7, 60e9, 120);
        crate::freq::differential_bode(&ckt, output, &freqs).unwrap()
    }

    #[test]
    fn stage_gain_approximately_gm_r() {
        let cfg = GainStageConfig {
            neg_miller: 0.0,
            peaking_frac: 0.0,
            ..GainStageConfig::paper_default()
        };
        let bode = stage_bode(&cfg, 20e-15);
        let dc = bode.dc_gain_db();
        // gm·R = 16 mS · 350 Ω = 5.6 → 15 dB; channel-length modulation
        // and body/junction losses shave some off.
        assert!(dc > 11.0 && dc < 16.0, "stage gain = {dc} dB");
    }

    #[test]
    fn cross_coupled_feedback_boosts_gain() {
        let plain = GainStageConfig {
            peaking_frac: 0.0,
            ..GainStageConfig::paper_default()
        };
        let fb = GainStageConfig {
            feedback_frac: 0.15,
            ..plain.clone()
        };
        let g_fb = stage_bode(&fb, 20e-15).dc_gain_db();
        let g_plain = stage_bode(&plain, 20e-15).dc_gain_db();
        assert!(g_fb > g_plain + 1.0, "{g_fb} vs {g_plain}");
    }

    #[test]
    fn peaking_load_extends_bandwidth() {
        let peaked = GainStageConfig::paper_default();
        let flat = GainStageConfig::no_peaking();
        let b_peaked = stage_bode(&peaked, 60e-15);
        let b_flat = stage_bode(&flat, 60e-15);
        let bw_p = b_peaked.bandwidth_3db().unwrap();
        let bw_f = b_flat.bandwidth_3db().unwrap();
        assert!(
            bw_p > 1.15 * bw_f,
            "peaking should extend bandwidth: {bw_p:.3e} vs {bw_f:.3e}"
        );
    }

    #[test]
    fn bandwidth_supports_10gbps() {
        let bode = stage_bode(&GainStageConfig::paper_default(), 20e-15);
        let bw = bode.bandwidth_3db().expect("rolls off");
        assert!(bw > 6e9, "gain stage bw = {bw:.3e}");
    }

    #[test]
    fn four_stage_cascade_reaches_la_gain() {
        // The LA needs ~40 dB differential DC gain; four raw stages give
        // more than that before interstage feedback trades some away.
        let pdk = Pdk018::typical();
        let cfg = GainStageConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        add_diff_drive(&mut ckt, "VIN", input, output_common_mode(&cfg), None);
        let mut prev = input;
        let mut last = prev;
        for i in 0..4 {
            let out = DiffPort::named(&mut ckt, &format!("s{i}"));
            build(&mut ckt, &pdk, &cfg, &format!("gs{i}"), prev, out, vdd);
            prev = out;
            last = out;
        }
        let freqs = logspace(1e7, 40e9, 60);
        let bode = crate::freq::differential_bode(&ckt, last, &freqs).unwrap();
        let dc = bode.dc_gain_db();
        assert!(dc > 40.0, "4-stage cascade gain = {dc} dB");
        // A plain cascade has plenty of gain but poor bandwidth — the
        // limiting-amplifier cell restores it with interstage active
        // feedback (see `limiting_amp`); here we only sanity-check that
        // the cascade is not pathologically slow.
        let bw = bode.bandwidth_3db().expect("rolls off");
        assert!(bw > 0.5e9, "cascade bw = {bw:.3e}");
    }

    #[test]
    fn common_mode_formula() {
        let cfg = GainStageConfig::no_peaking();
        // 4 mA/2·350 Ω = 0.7 V below VDD.
        assert!((output_common_mode(&cfg) - (1.8 - 0.7)).abs() < 1e-9);
        // With the series PMOS the CM drops by an extra |V_TH|.
        let peaked = GainStageConfig::paper_default();
        assert!((output_common_mode(&peaked) - (1.8 - 0.45 - 0.7)).abs() < 1e-9);
    }
}
