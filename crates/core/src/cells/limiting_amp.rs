//! Limiting amplifier: input buffer + four gain stages with interstage
//! active feedback + output buffer + DC-offset cancellation (Fig. 8).
//!
//! The four gain stages are grouped into two pairs; across each pair a
//! weak differential feedback pair senses the pair's output and injects
//! current back into the interstage node. This is the active-feedback
//! technique of the paper (and of its reference \[5\], Galal & Razavi):
//! each pair becomes a two-pole section whose bandwidth extends well
//! beyond the plain cascade at a controlled gain cost.
//!
//! The offset-cancellation loop is the paper's passive network: the
//! output is sensed through two series resistive branches into (off-chip)
//! capacitors, and the filtered DC is fed back to a small correction pair
//! fighting the first stage's offset — a first-order high-pass around the
//! whole amplifier with a corner far below the data band.

use super::gain_stage::{self, GainStageConfig};
use super::DiffPort;
use cml_pdk::Pdk018;
use cml_spice::prelude::*;

/// Offset-cancellation network values.
#[derive(Debug, Clone, PartialEq)]
pub struct OffsetCancelConfig {
    /// Series sense resistance per branch, ohms.
    pub r_sense: f64,
    /// Grounding capacitance (off-chip), farads.
    pub c_ext: f64,
    /// Correction-pair tail current, amps.
    pub i_corr: f64,
}

impl Default for OffsetCancelConfig {
    fn default() -> Self {
        OffsetCancelConfig {
            r_sense: 20e3,
            c_ext: 1e-9,
            i_corr: 0.4e-3,
        }
    }
}

/// Limiting-amplifier configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LimitingAmpConfig {
    /// Per-stage configuration (four instances).
    pub stage: GainStageConfig,
    /// Interstage feedback pair strength as a fraction of the stage tail
    /// (0 disables — plain cascade).
    pub interstage_fb: f64,
    /// DC-offset cancellation network (`None` disables).
    pub offset_cancel: Option<OffsetCancelConfig>,
}

impl LimitingAmpConfig {
    /// The paper's nominal LA: four peaked gain stages, two feedback
    /// pairs, offset cancellation on.
    #[must_use]
    pub fn paper_default() -> Self {
        LimitingAmpConfig {
            stage: GainStageConfig::paper_default(),
            interstage_fb: 0.15,
            offset_cancel: Some(OffsetCancelConfig::default()),
        }
    }

    /// Static current drawn from the supply, amps.
    #[must_use]
    pub fn supply_current(&self) -> f64 {
        let stages = 4.0 * self.stage.supply_current();
        let fb = 2.0 * self.stage.stage.i_tail * self.interstage_fb;
        let corr = self.offset_cancel.as_ref().map_or(0.0, |oc| oc.i_corr);
        stages + fb + corr
    }
}

/// Builds the limiting amplifier. Input and output common modes match
/// [`gain_stage::output_common_mode`] of the configured stage.
// The stage loop below always runs at least once, so `first_stage_out`
// is bound before the offset-cancel block reads it.
#[allow(clippy::expect_used)]
pub fn build(
    ckt: &mut Circuit,
    pdk: &Pdk018,
    cfg: &LimitingAmpConfig,
    prefix: &str,
    input: DiffPort,
    output: DiffPort,
    vdd: NodeId,
) {
    let w_in = cfg.stage.stage.input_width(pdk);
    let mut first_stage_out: Option<DiffPort> = None;

    // Four gain stages in two feedback pairs.
    let mut prev = input;
    for pair in 0..2 {
        let mid = DiffPort::new(
            ckt.internal_node(&format!("{prefix}_p{pair}mp")),
            ckt.internal_node(&format!("{prefix}_p{pair}mn")),
        );
        let out = if pair == 1 {
            output
        } else {
            DiffPort::new(
                ckt.internal_node(&format!("{prefix}_p{pair}op")),
                ckt.internal_node(&format!("{prefix}_p{pair}on")),
            )
        };
        gain_stage::build(
            ckt,
            pdk,
            &cfg.stage,
            &format!("{prefix}_g{pair}a"),
            prev,
            mid,
            vdd,
        );
        gain_stage::build(
            ckt,
            pdk,
            &cfg.stage,
            &format!("{prefix}_g{pair}b"),
            mid,
            out,
            vdd,
        );
        if first_stage_out.is_none() {
            first_stage_out = Some(mid);
        }
        if cfg.interstage_fb > 0.0 {
            let tf = ckt.internal_node(&format!("{prefix}_p{pair}tf"));
            let w_fb = w_in * cfg.interstage_fb;
            // Senses the pair output, injects into the interstage node
            // with the polarity that closes a negative loop around the
            // second (inverting) stage.
            ckt.add(Mosfet::new(
                &format!("{prefix}_p{pair}Mf1"),
                mid.p,
                out.p,
                tf,
                Circuit::GROUND,
                pdk.nmos(w_fb, cml_pdk::L_MIN),
            ));
            ckt.add(Mosfet::new(
                &format!("{prefix}_p{pair}Mf2"),
                mid.n,
                out.n,
                tf,
                Circuit::GROUND,
                pdk.nmos(w_fb, cml_pdk::L_MIN),
            ));
            ckt.add(Isource::dc(
                &format!("{prefix}_p{pair}If"),
                tf,
                Circuit::GROUND,
                cfg.stage.stage.i_tail * cfg.interstage_fb,
            ));
        }
        prev = out;
    }

    // Offset cancellation: sense output through R into external C, apply
    // the filtered DC to a correction pair injecting at the first
    // interstage node with offset-opposing polarity.
    if let Some(oc) = &cfg.offset_cancel {
        let first = first_stage_out.expect("two pairs built");
        let fp = ckt.internal_node(&format!("{prefix}_ocp"));
        let fn_ = ckt.internal_node(&format!("{prefix}_ocn"));
        ckt.add(Resistor::new(
            &format!("{prefix}_ORp"),
            output.p,
            fp,
            oc.r_sense,
        ));
        ckt.add(Resistor::new(
            &format!("{prefix}_ORn"),
            output.n,
            fn_,
            oc.r_sense,
        ));
        ckt.add(Capacitor::new(
            &format!("{prefix}_OCp"),
            fp,
            Circuit::GROUND,
            oc.c_ext,
        ));
        ckt.add(Capacitor::new(
            &format!("{prefix}_OCn"),
            fn_,
            Circuit::GROUND,
            oc.c_ext,
        ));
        let tc = ckt.internal_node(&format!("{prefix}_oct"));
        let w_c = w_in * 0.15;
        // In port convention every stage is non-inverting, so `output`
        // tracks `first`: the correction device driven by the sensed
        // positive rail pulls down the same-polarity first-stage node,
        // closing the loop negatively.
        ckt.add(Mosfet::new(
            &format!("{prefix}_OM1"),
            first.p,
            fp,
            tc,
            Circuit::GROUND,
            pdk.nmos(w_c, cml_pdk::L_MIN),
        ));
        ckt.add(Mosfet::new(
            &format!("{prefix}_OM2"),
            first.n,
            fn_,
            tc,
            Circuit::GROUND,
            pdk.nmos(w_c, cml_pdk::L_MIN),
        ));
        ckt.add(Isource::dc(
            &format!("{prefix}_OI"),
            tc,
            Circuit::GROUND,
            oc.i_corr,
        ));
    }
    crate::cells::debug_assert_unique_names(ckt, prefix);
}

/// The LA's nominal port common-mode voltage.
#[must_use]
pub fn common_mode(cfg: &LimitingAmpConfig) -> f64 {
    gain_stage::output_common_mode(&cfg.stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{add_diff_drive, add_supply};
    use cml_numeric::logspace;
    use cml_sig::Bode;

    fn la_bode(cfg: &LimitingAmpConfig) -> Bode {
        let pdk = Pdk018::typical();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let output = DiffPort::named(&mut ckt, "out");
        add_diff_drive(&mut ckt, "VIN", input, common_mode(cfg), None);
        build(&mut ckt, &pdk, cfg, "la", input, output, vdd);
        ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
        ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
        let freqs = logspace(1e2, 60e9, 160);
        crate::freq::differential_bode(&ckt, output, &freqs).unwrap()
    }

    #[test]
    fn la_gain_and_bandwidth() {
        let mut cfg = LimitingAmpConfig::paper_default();
        cfg.offset_cancel = None;
        let bode = la_bode(&cfg);
        let dc = bode.dc_gain_db();
        let bw = bode.bandwidth_3db().expect("rolls off");
        assert!(dc > 20.0, "la gain = {dc} dB");
        assert!(bw > 6e9, "la bw = {bw:.3e}");
        // Controlled peaking only.
        assert!(bode.peaking_db() < 4.0, "peaking = {}", bode.peaking_db());
    }

    #[test]
    fn interstage_feedback_extends_bandwidth() {
        let mut with = LimitingAmpConfig::paper_default();
        with.offset_cancel = None;
        let mut without = with.clone();
        without.interstage_fb = 0.0;
        let bw_with = la_bode(&with).bandwidth_3db().unwrap();
        let bw_without = la_bode(&without).bandwidth_3db().unwrap();
        assert!(
            bw_with > 2.0 * bw_without,
            "interstage fb: {bw_with:.3e} vs {bw_without:.3e}"
        );
    }

    #[test]
    fn offset_cancel_creates_low_frequency_highpass() {
        // With the cancel loop, DC gain is suppressed relative to the
        // mid-band (the loop fights slow signals).
        let cfg = LimitingAmpConfig::paper_default();
        let bode = la_bode(&cfg);
        let g_dc = bode.gain_db_at(1e2);
        let g_mid = bode.gain_db_at(1e9);
        assert!(
            g_mid > g_dc + 3.0,
            "offset loop should suppress low frequencies: {g_dc} vs {g_mid} dB"
        );
    }

    #[test]
    fn offset_cancel_reduces_output_offset() {
        // Inject a 5 mV input-referred offset and compare output offsets.
        let run = |cancel: bool| {
            let pdk = Pdk018::typical();
            let mut cfg = LimitingAmpConfig::paper_default();
            if !cancel {
                cfg.offset_cancel = None;
            }
            let mut ckt = Circuit::new();
            let vdd = add_supply(&mut ckt, cml_pdk::VDD);
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            let cm = common_mode(&cfg);
            ckt.add(Vsource::dc("VIP", input.p, Circuit::GROUND, cm + 2.5e-3));
            ckt.add(Vsource::dc("VIN", input.n, Circuit::GROUND, cm - 2.5e-3));
            build(&mut ckt, &pdk, &cfg, "la", input, output, vdd);
            let op = cml_spice::analysis::op::solve(&ckt).unwrap();
            (op.voltage(output.p) - op.voltage(output.n)).abs()
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with < without * 0.5,
            "offset cancel should cut DC offset: {with:.4} vs {without:.4}"
        );
    }

    #[test]
    fn supply_current_accounting() {
        let cfg = LimitingAmpConfig::paper_default();
        // 4 stages × 4 mA + 2 fb × 0.6 mA + 0.4 mA corr = 17.6 mA.
        assert!((cfg.supply_current() - 17.6e-3).abs() < 1e-6);
    }
}
