//! Static power accounting (Table I's 70 mW row).
//!
//! CML is constant-current logic: every cell burns `I_tail·V_DD`
//! regardless of activity, so the chip's power is an inventory of tail
//! currents. The numbers here mirror the cell configurations in
//! [`crate::cells`] and the stage list of the paper's two interfaces.

use crate::cells::cml_buffer::CmlBufferConfig;
use crate::cells::equalizer::EqualizerConfig;
use crate::cells::limiting_amp::LimitingAmpConfig;

/// One named current consumer.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerItem {
    /// Block name.
    pub name: &'static str,
    /// Supply current, amps.
    pub current: f64,
}

/// A per-interface power budget.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerBudget {
    items: Vec<PowerItem>,
}

impl PowerBudget {
    /// Creates an empty budget.
    #[must_use]
    pub fn new() -> Self {
        PowerBudget::default()
    }

    /// Adds a consumer.
    ///
    /// # Panics
    ///
    /// Panics if `current` is negative.
    pub fn add(&mut self, name: &'static str, current: f64) {
        assert!(current >= 0.0, "current must be non-negative");
        self.items.push(PowerItem { name, current });
    }

    /// All items.
    #[must_use]
    pub fn items(&self) -> &[PowerItem] {
        &self.items
    }

    /// Total supply current, amps.
    #[must_use]
    pub fn total_current(&self) -> f64 {
        self.items.iter().map(|i| i.current).sum()
    }

    /// Total power at the process supply, watts.
    #[must_use]
    pub fn total_power(&self) -> f64 {
        self.total_current() * cml_pdk::VDD
    }

    /// Merges another budget into this one.
    pub fn merge(&mut self, other: &PowerBudget) {
        self.items.extend(other.items.iter().cloned());
    }
}

/// Power budget of the input interface (Fig. 2): equalizer, input
/// buffer, limiting amplifier, output buffer.
#[must_use]
pub fn input_interface() -> PowerBudget {
    let mut b = PowerBudget::new();
    b.add(
        "equalizer",
        EqualizerConfig::paper_default().supply_current(),
    );
    b.add(
        "input buffer",
        CmlBufferConfig::paper_default().supply_current(),
    );
    b.add(
        "limiting amplifier",
        LimitingAmpConfig::paper_default().supply_current(),
    );
    b.add(
        "la output buffer",
        CmlBufferConfig::paper_default().supply_current(),
    );
    b
}

/// Power budget of the output interface (Fig. 3): level shift, tapered
/// driver stages (the last one the paper's 8 mA 50 Ω driver), and the
/// voltage-peaking circuit (delay buffer + differentiator).
#[must_use]
pub fn output_interface() -> PowerBudget {
    let mut b = PowerBudget::new();
    b.add("level shift", 1.0e-3);
    b.add("driver stage 1", 1.0e-3);
    b.add("driver stage 2", 2.7e-3);
    b.add(
        "driver stage 3 (50 ohm)",
        crate::design::paper::OUTPUT_DRIVE,
    );
    b.add("peaking delay buffer", 1.0e-3);
    b.add("peaking differentiator", 1.5e-3);
    b
}

/// Power budget of the shared bias (BMVR + distribution mirrors).
#[must_use]
pub fn bias() -> PowerBudget {
    let mut b = PowerBudget::new();
    b.add("bmvr + mirrors", 0.3e-3);
    b
}

/// The full I/O interface budget — the paper's "total power consumption
/// of the I/O interface is only 70 mW" claim.
#[must_use]
pub fn io_interface() -> PowerBudget {
    let mut b = input_interface();
    b.merge(&output_interface());
    b.merge(&bias());
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sums_current() {
        let mut b = PowerBudget::new();
        b.add("a", 1e-3);
        b.add("b", 2e-3);
        assert!((b.total_current() - 3e-3).abs() < 1e-15);
        assert!((b.total_power() - 3e-3 * 1.8).abs() < 1e-12);
        assert_eq!(b.items().len(), 2);
    }

    #[test]
    fn total_io_power_near_paper_70mw() {
        let p = io_interface().total_power();
        assert!(
            p > 50e-3 && p < 90e-3,
            "I/O power = {:.1} mW, paper claims 70 mW",
            p * 1e3
        );
    }

    #[test]
    fn output_interface_has_8ma_driver() {
        let b = output_interface();
        let driver = b
            .items()
            .iter()
            .find(|i| i.name.contains("stage 3"))
            .expect("driver present");
        assert!((driver.current - 8e-3).abs() < 1e-12);
    }

    #[test]
    fn input_interface_dominated_by_la() {
        let b = input_interface();
        let la = b
            .items()
            .iter()
            .find(|i| i.name.contains("limiting"))
            .expect("LA present");
        assert!(la.current > 0.5 * b.total_current());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_current_rejected() {
        let mut b = PowerBudget::new();
        b.add("bad", -1.0);
    }
}
