//! Layout-area inventory (Table I's 0.028 mm² row and the 80 % claim).
//!
//! Mirrors the device lists of the netlist generators in [`crate::cells`]
//! into [`cml_pdk::area::AreaBudget`]s. The paper's headline numbers:
//! input interface 0.02 mm², output interface 0.008 mm², total core
//! 0.028 mm² — "almost equal to an on-chip spiral inductor" — and the
//! 80 % saving of active inductors over spirals.

use cml_pdk::area::AreaBudget;

const LDIFF: f64 = 0.48e-6;
const LMIN: f64 = 0.18e-6;

/// Area of one wide-band CML buffer (input pair, PMOS loads with gate
/// resistors, feedback pair, Miller varactors).
#[must_use]
pub fn cml_buffer() -> AreaBudget {
    let mut b = AreaBudget::new("cml buffer");
    for w in [17e-6, 17e-6, 48e-6, 48e-6, 4e-6, 4e-6, 3e-6, 3e-6] {
        b.add_mosfet(w, LMIN, LDIFF);
    }
    b.add_resistor(6e3);
    b.add_resistor(6e3);
    b.add_capacitor(4e-15);
    b.add_capacitor(4e-15);
    // Tail mirror device.
    b.add_mosfet(10e-6, 0.36e-6, LDIFF);
    b
}

/// Area of the Cherry-Hooper equalizer.
#[must_use]
pub fn equalizer() -> AreaBudget {
    let mut b = AreaBudget::new("equalizer");
    for w in [20e-6, 20e-6, 20e-6, 20e-6, 6e-6, 6e-6, 4e-6] {
        b.add_mosfet(w, LMIN, LDIFF);
    }
    for r in [50.0, 50.0, 250.0, 250.0, 250.0, 250.0, 400.0, 400.0] {
        b.add_resistor(r);
    }
    b.add_capacitor(400e-15); // degeneration MOS cap
    for _ in 0..4 {
        b.add_mosfet(12e-6, 0.36e-6, LDIFF); // tail mirrors
    }
    b
}

/// Area of one LA gain stage (input pair, peaking PMOS + gate R, poly
/// loads, Miller varactors, tail).
#[must_use]
pub fn gain_stage() -> AreaBudget {
    let mut b = AreaBudget::new("gain stage");
    for w in [34e-6, 34e-6, 40e-6, 40e-6, 3e-6, 3e-6] {
        b.add_mosfet(w, LMIN, LDIFF);
    }
    for r in [245.0, 245.0, 400.0, 400.0] {
        b.add_resistor(r);
    }
    b.add_mosfet(20e-6, 0.36e-6, LDIFF);
    b
}

/// Area of the limiting amplifier (4 gain stages + 2 feedback pairs +
/// offset-cancel correction pair and sense resistors; the smoothing
/// capacitors are off-chip by design).
#[must_use]
pub fn limiting_amp() -> AreaBudget {
    let mut b = AreaBudget::new("limiting amplifier");
    for _ in 0..4 {
        b.merge(&gain_stage());
    }
    for _ in 0..2 {
        // Feedback pair + tail.
        b.add_mosfet(5e-6, LMIN, LDIFF);
        b.add_mosfet(5e-6, LMIN, LDIFF);
        b.add_mosfet(5e-6, 0.36e-6, LDIFF);
    }
    b.add_mosfet(5e-6, LMIN, LDIFF);
    b.add_mosfet(5e-6, LMIN, LDIFF);
    b.add_resistor(20e3);
    b.add_resistor(20e3);
    b
}

/// Area of the BMVR.
#[must_use]
pub fn bmvr() -> AreaBudget {
    let mut b = AreaBudget::new("bmvr");
    b.add_mosfet(20e-6, 1e-6, LDIFF);
    b.add_mosfet(80e-6, 1e-6, LDIFF);
    b.add_mosfet(30e-6, 1e-6, LDIFF);
    b.add_mosfet(30e-6, 1e-6, LDIFF);
    b.add_resistor(1.2e3);
    b.add_resistor(2e6 / 100.0); // startup drawn as a long-L device, 1 % footprint
    b
}

/// Area of the full input interface (Fig. 2).
#[must_use]
pub fn input_interface() -> AreaBudget {
    let mut b = AreaBudget::new("input interface");
    b.merge(&equalizer());
    b.merge(&cml_buffer());
    b.merge(&limiting_amp());
    b.merge(&cml_buffer());
    b
}

/// Area of the output interface (Fig. 3): level shift, three tapered
/// driver stages, voltage peaking (delay buffer + differentiator).
#[must_use]
pub fn output_interface() -> AreaBudget {
    let mut b = AreaBudget::new("output interface");
    // Level shift followers.
    b.add_mosfet(10e-6, LMIN, LDIFF);
    b.add_mosfet(10e-6, LMIN, LDIFF);
    // Tapered stages: widths scale with drive current (1, 2.7, 8 mA).
    for w_scale in [1.0, 2.7, 8.0] {
        let w = 8e-6 * w_scale;
        b.add_mosfet(w, LMIN, LDIFF);
        b.add_mosfet(w, LMIN, LDIFF);
        b.add_resistor(250.0 / w_scale);
        b.add_resistor(250.0 / w_scale);
        b.add_mosfet(6e-6 * w_scale, 0.36e-6, LDIFF);
    }
    // Delay buffer (a small CML buffer) + differentiator (Gilbert quad).
    for w in [8e-6, 8e-6, 6e-6, 6e-6, 6e-6, 6e-6, 8e-6, 8e-6] {
        b.add_mosfet(w, LMIN, LDIFF);
    }
    b.add_resistor(300.0);
    b.add_resistor(300.0);
    b
}

/// Total core area of the I/O interface — the paper's 0.028 mm².
#[must_use]
pub fn io_interface() -> AreaBudget {
    let mut b = AreaBudget::new("io interface");
    b.merge(&input_interface());
    b.merge(&output_interface());
    b.merge(&bmvr());
    b
}

/// The same interface with every active inductor replaced by a 2 nH
/// on-chip spiral (two per buffer/gain stage) — the counterfactual
/// behind the paper's "reduce 80 % of the circuit area" claim.
#[must_use]
pub fn io_interface_with_spirals() -> AreaBudget {
    let mut b = io_interface();
    // 2 spirals per CML buffer (×2), per gain stage (×4), per driver
    // stage that would need peaking (×2).
    for _ in 0..16 {
        b.add_spiral(2e-9);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_areas_match_paper_order_of_magnitude() {
        let input = input_interface().total_mm2();
        let output = output_interface().total_mm2();
        // Paper: 0.02 and 0.008 mm². Same order, input larger.
        assert!(input > 0.005 && input < 0.06, "input = {input} mm²");
        assert!(output > 0.0015 && output < 0.03, "output = {output} mm²");
        assert!(input > output, "input interface is the bigger block");
    }

    #[test]
    fn total_core_is_comparable_to_one_spiral() {
        // "The total core area ... is almost equal to an on-chip spiral
        // inductor" — within a small factor of a 2 nH spiral footprint.
        let core = io_interface().total_m2();
        let spiral = cml_pdk::area::spiral_inductor(2e-9);
        let ratio = core / spiral;
        assert!(ratio > 0.4 && ratio < 4.0, "core/spiral = {ratio}");
    }

    #[test]
    fn active_inductors_save_at_least_60_percent() {
        // The paper claims 80 %; our accounting should show the same
        // direction with at least a strong majority saved.
        let with_active = io_interface().total_m2();
        let with_spirals = io_interface_with_spirals().total_m2();
        let saving = 1.0 - with_active / with_spirals;
        assert!(saving > 0.6, "area saving = {:.0} %", saving * 100.0);
    }

    #[test]
    fn budgets_count_devices() {
        assert!(cml_buffer().num_devices() >= 9);
        assert!(limiting_amp().num_devices() >= 40);
        assert!(io_interface().num_devices() > 70);
    }
}
