//! Behavioural models of the individual circuit blocks.

use super::filter::{Biquad, FirstOrder};
use super::Block;
use cml_sig::UniformWave;

/// Differential-pair soft limiter with peak-to-peak limit `swing`:
/// `out = (swing/2)·tanh(2·gain·x/swing)` — small-signal slope `gain`,
/// large-signal output clamped to ±swing/2.
fn cml_limit(x: f64, gain: f64, swing: f64) -> f64 {
    0.5 * swing * (2.0 * gain * x / swing).tanh()
}

/// Behavioural wide-band CML buffer: the static CML tanh followed by a
/// peaked second-order low-pass (the active-inductor load).
#[derive(Debug, Clone, PartialEq)]
pub struct CmlBuffer {
    /// Small-signal voltage gain.
    pub gain: f64,
    /// Differential output swing limit (±swing/2 per side ⇒ `swing`
    /// differential), volts.
    pub swing: f64,
    /// Load natural frequency, Hz.
    pub f0: f64,
    /// Load quality factor (>0.707 = inductive peaking).
    pub q: f64,
}

impl CmlBuffer {
    /// Calibrated to the transistor cell with all wide-band techniques
    /// on: unity-ish gain, ~12 GHz, mild peaking.
    #[must_use]
    pub fn paper_default() -> Self {
        CmlBuffer {
            gain: 1.1,
            swing: 0.5,
            f0: 12e9,
            q: 0.9,
        }
    }

    /// The ablation variant without peaking (plain diode load).
    #[must_use]
    pub fn plain() -> Self {
        CmlBuffer {
            gain: 1.0,
            swing: 0.5,
            f0: 8e9,
            q: 0.55,
        }
    }
}

impl Block for CmlBuffer {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let limited = input.map(|v| cml_limit(v, self.gain, self.swing));
        Biquad::lowpass(self.f0, self.q, 1.0).apply(&limited)
    }
}

/// Behavioural Cherry-Hooper equalizer: the paper's eq. (1) —
/// a tunable-zero high-pass shelf cascaded with the amplifier poles.
///
/// `H(s) = gain_hf · (1 + s/ωz) / (1 + s/ωz·boost) · [2nd-order roll-off]`
///
/// At DC the gain is `gain_hf / boost`; above the zero it recovers to
/// `gain_hf`. `boost` is set by the degeneration control voltage V1.
#[derive(Debug, Clone, PartialEq)]
pub struct Equalizer {
    /// High-frequency (un-degenerated) voltage gain.
    pub gain_hf: f64,
    /// Low-frequency attenuation factor `1 + gm·R_s/2` (≥ 1; 1 = flat).
    pub boost: f64,
    /// Zero frequency, Hz (set by `R_s·C_s`).
    pub f_zero: f64,
    /// Amplifier bandwidth (second-order), Hz.
    pub f0: f64,
    /// Amplifier pole Q.
    pub q: f64,
    /// Output swing limit, volts.
    pub swing: f64,
}

impl Equalizer {
    /// Mid-tuning design point calibrated against the transistor cell.
    #[must_use]
    pub fn paper_default() -> Self {
        Equalizer {
            gain_hf: 2.0,
            boost: 2.0,
            f_zero: 1.2e9,
            f0: 11e9,
            q: 0.8,
            swing: 0.6,
        }
    }

    /// Equalization disabled (V1 high: degeneration shorted).
    #[must_use]
    pub fn flat() -> Self {
        Equalizer {
            boost: 1.0,
            ..Equalizer::paper_default()
        }
    }

    /// Maximum-boost tuning (V1 low).
    #[must_use]
    pub fn max_boost() -> Self {
        Equalizer {
            boost: 4.0,
            ..Equalizer::paper_default()
        }
    }

    /// Sets the boost from a control voltage in `[0.8, 1.8]` V, mapping
    /// the paper's Fig. 5 V1 axis: low V1 → strong degeneration → more
    /// boost.
    ///
    /// # Panics
    ///
    /// Panics if `v1` is outside `[0.8, 1.8]`.
    #[must_use]
    pub fn with_control_voltage(mut self, v1: f64) -> Self {
        assert!((0.8..=1.8).contains(&v1), "V1 out of tuning range");
        // Linear map: 1.8 V → 1.0 (flat), 0.8 V → 4.0 (max boost).
        self.boost = 1.0 + 3.0 * (1.8 - v1);
        self
    }
}

impl Block for Equalizer {
    fn process(&self, input: &UniformWave) -> UniformWave {
        // Shelf: H(s) = (1/boost)·(1 + s/ωz)/(1 + s/(boost·ωz))
        //   = blend of low-pass (DC) and high-pass (HF) paths.
        let f_pole = self.f_zero * self.boost;
        let lp = FirstOrder::lowpass(f_pole).apply(input);
        let hp = FirstOrder::highpass(f_pole).apply(input);
        let n = input.len();
        let mut shelf = Vec::with_capacity(n);
        for i in 0..n {
            shelf.push(lp.samples()[i] / self.boost + hp.samples()[i]);
        }
        let shelf = UniformWave::new(input.t0(), input.dt(), shelf);
        let amplified = shelf.map(|v| cml_limit(v, self.gain_hf, self.swing));
        Biquad::lowpass(self.f0, self.q, 1.0).apply(&amplified)
    }
}

/// Behavioural limiting amplifier: four buffer-like gain stages with a
/// slow offset-cancel high-pass wrapped around them.
#[derive(Debug, Clone, PartialEq)]
pub struct LimitingAmp {
    /// Per-stage gain.
    pub stage_gain: f64,
    /// Per-stage bandwidth, Hz.
    pub stage_f0: f64,
    /// Per-stage Q.
    pub stage_q: f64,
    /// Output swing, volts.
    pub swing: f64,
    /// Offset-cancel high-pass corner, Hz (0 disables).
    pub f_offset: f64,
}

impl LimitingAmp {
    /// Calibrated to the transistor LA (gain slightly above it so the
    /// behavioural interface meets the paper's 4 mV sensitivity at
    /// 250 mV output): ≈38 dB, ≈8.5 GHz effective.
    #[must_use]
    pub fn paper_default() -> Self {
        LimitingAmp {
            stage_gain: 3.0,
            stage_f0: 13e9,
            stage_q: 0.85,
            swing: 0.5,
            f_offset: 200e3,
        }
    }
}

impl Block for LimitingAmp {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let mut w = if self.f_offset > 0.0 {
            FirstOrder::highpass(self.f_offset).apply(input)
        } else {
            input.clone()
        };
        for _ in 0..4 {
            let limited = w.map(|v| cml_limit(v, self.stage_gain, self.swing));
            w = Biquad::lowpass(self.stage_f0, self.stage_q, 1.0).apply(&limited);
        }
        w
    }
}

/// Behavioural level shifter: source-follower DC shift with a wide
/// first-order bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelShift {
    /// DC shift added to the (differential) waveform — 0 for a purely
    /// differential path.
    pub shift: f64,
    /// Follower bandwidth, Hz.
    pub f0: f64,
}

impl LevelShift {
    /// Paper default: differential-transparent, 25 GHz follower.
    #[must_use]
    pub fn paper_default() -> Self {
        LevelShift {
            shift: 0.0,
            f0: 25e9,
        }
    }
}

impl Block for LevelShift {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let shifted = input.map(|v| v + self.shift);
        FirstOrder::lowpass(self.f0).apply(&shifted)
    }
}

/// Tunable CML delay buffer (the voltage-peaking circuit's delay
/// element): an ideal fractional-sample delay plus buffer bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBuffer {
    /// Delay, seconds (tuned by tail current in the circuit).
    pub delay: f64,
    /// Buffer bandwidth, Hz.
    pub f0: f64,
}

impl DelayBuffer {
    /// Paper default: one UI at 10 Gb/s (maximum spike width).
    #[must_use]
    pub fn paper_default() -> Self {
        DelayBuffer {
            delay: 100e-12,
            f0: 15e9,
        }
    }
}

impl Block for DelayBuffer {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let delayed: Vec<f64> = (0..input.len())
            .map(|i| input.value_at(input.time_at(i) - self.delay))
            .collect();
        let w = UniformWave::new(input.t0(), input.dt(), delayed);
        FirstOrder::lowpass(self.f0).apply(&w)
    }
}

/// Voltage-peaking (pre-emphasis) circuit: `out = in + k·(in − delay(in))`.
///
/// The differentiator's XOR-like output spikes at every transition; its
/// current source sets the spike height (`k`) and the delay buffer's
/// tuning sets the spike width (`delay`). The paper quotes a tuning range
/// up to 20 % peaking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltagePeaking {
    /// Spike height as a fraction of the signal (0 disables; 0.2 = the
    /// paper's maximum 20 % peaking).
    pub k: f64,
    /// Spike width = delay-buffer delay, seconds.
    pub delay: f64,
    /// Differentiator bandwidth, Hz.
    pub f0: f64,
}

impl VoltagePeaking {
    /// Paper default: 20 % peaking with full-UI spikes (at which setting
    /// the circuit degenerates into a 2-tap feed-forward pre-emphasis,
    /// exactly like the paper's reference \[4\]).
    #[must_use]
    pub fn paper_default() -> Self {
        VoltagePeaking {
            k: 0.2,
            delay: 100e-12,
            f0: 20e9,
        }
    }

    /// Peaking disabled (differentiator tail off) — Fig. 16(a).
    #[must_use]
    pub fn disabled() -> Self {
        VoltagePeaking {
            k: 0.0,
            ..VoltagePeaking::paper_default()
        }
    }
}

impl Block for VoltagePeaking {
    fn process(&self, input: &UniformWave) -> UniformWave {
        if self.k == 0.0 {
            return input.clone();
        }
        let delayed = DelayBuffer {
            delay: self.delay,
            f0: self.f0,
        }
        .process(input);
        let n = input.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(input.samples()[i] + self.k * (input.samples()[i] - delayed.samples()[i]));
        }
        UniformWave::new(input.t0(), input.dt(), out)
    }
}

/// Tapered three-stage CML output driver: each stage larger than the
/// last, final stage delivering the paper's 8 mA into 50 Ω for a 250 mV
/// swing.
#[derive(Debug, Clone, PartialEq)]
pub struct TaperedDriver {
    /// Stage bandwidths, Hz (increasing drive, decreasing self-speed).
    pub f0: [f64; 3],
    /// Final single-ended output swing into the termination, volts.
    pub swing: f64,
}

impl TaperedDriver {
    /// Paper default: 250 mV output swing.
    #[must_use]
    pub fn paper_default() -> Self {
        TaperedDriver {
            f0: [16e9, 14e9, 12e9],
            swing: 0.25,
        }
    }
}

impl Block for TaperedDriver {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let mut w = input.clone();
        for (i, &f0) in self.f0.iter().enumerate() {
            let swing = if i == 2 { self.swing } else { 0.5 };
            let limited = w.map(|v| cml_limit(v, 1.6, swing));
            w = Biquad::lowpass(f0, 0.8, 1.0).apply(&limited);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;
    use cml_sig::{measure, EyeDiagram};

    fn prbs_wave(amplitude: f64) -> UniformWave {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        NrzConfig::new(100e-12, amplitude).render(&bits)
    }

    #[test]
    fn buffer_limits_large_signals() {
        let buf = CmlBuffer::paper_default();
        let big = prbs_wave(1.8);
        let out = buf.process(&big);
        let swing = measure::swing(&out);
        assert!(swing < 0.65, "limited swing = {swing}");
        assert!(swing > 0.35);
    }

    #[test]
    fn buffer_amplifies_small_signals_linearly() {
        let buf = CmlBuffer::paper_default();
        let small = prbs_wave(0.02);
        let out = buf.process(&small);
        let gain = measure::swing(&out) / 0.02;
        assert!((gain - buf.gain).abs() < 0.25, "gain = {gain}");
    }

    #[test]
    fn equalizer_boost_reduces_dc_gain() {
        // Slow square wave ⇒ settled levels show DC gain.
        let bits: Vec<bool> = (0..32).map(|i| (i / 8) % 2 == 0).collect();
        let w = NrzConfig::new(1e-9, 0.1).render(&bits); // 1 Gb/s slow
        let flat_out = Equalizer::flat().process(&w);
        let boost_out = Equalizer::max_boost().process(&w);
        let g_flat = measure::swing(&flat_out) / 0.1;
        let g_boost = measure::swing(&boost_out) / 0.1;
        assert!(
            g_boost < 0.6 * g_flat,
            "boost must cut low-frequency gain: {g_boost} vs {g_flat}"
        );
    }

    #[test]
    fn control_voltage_maps_to_boost() {
        let eq = Equalizer::paper_default().with_control_voltage(1.8);
        assert!((eq.boost - 1.0).abs() < 1e-12);
        let eq = Equalizer::paper_default().with_control_voltage(0.8);
        assert!((eq.boost - 4.0).abs() < 1e-12);
    }

    #[test]
    fn limiting_amp_restores_tiny_input_to_full_swing() {
        // The paper's 4 mV sensitivity: a 4 mV input must come out at
        // the full ~250 mV per side (0.5 V differential swing).
        let la = LimitingAmp::paper_default();
        let tiny = prbs_wave(4e-3);
        let out = la.process(&tiny);
        let swing = measure::swing(&out);
        assert!(swing > 0.15, "LA output swing = {swing}");
        // And the eye stays open (the LA alone is at its sensitivity
        // floor here; the full input interface, with the equalizer and
        // input buffer ahead of it, is what meets the paper's spec —
        // see `interfaces::tests::input_interface_meets_sensitivity`).
        let eye = EyeDiagram::fold(&out.skip_initial(1e-9), 100e-12).metrics();
        assert!(eye.opening > 0.08, "eye opening = {}", eye.opening);
    }

    #[test]
    fn peaking_produces_overshoot() {
        let vp = VoltagePeaking::paper_default();
        // Sparse transitions so the settled rails dominate the
        // percentile-based level estimate.
        let bits: Vec<bool> = (0..64).map(|i| (i / 8) % 2 == 0).collect();
        let w = NrzConfig::new(100e-12, 0.5).render(&bits);
        let out = vp.process(&w);
        let os = measure::overshoot(&out);
        assert!(os > 0.1 && os < 0.3, "peaking overshoot = {os}, want ≈ 0.2");
        assert!(measure::overshoot(&VoltagePeaking::disabled().process(&w)) < 0.03);
    }

    #[test]
    fn delay_buffer_shifts_edges() {
        let d = DelayBuffer {
            delay: 50e-12,
            f0: 100e9,
        };
        let w = prbs_wave(1.0);
        let out = d.process(&w);
        // Cross-check: a rising edge at t in input appears at t+delay.
        let t_in = cml_numeric::interp::level_crossings(&w.times(), w.samples(), 0.0).unwrap();
        let t_out = cml_numeric::interp::level_crossings(&out.times(), out.samples(), 0.0).unwrap();
        assert!((t_out[2] - t_in[2] - 50e-12).abs() < 3e-12);
    }

    #[test]
    fn driver_output_swing_is_250mv() {
        let drv = TaperedDriver::paper_default();
        let out = drv.process(&prbs_wave(0.5));
        let (lo, hi) = measure::settled_levels(&out);
        assert!(((hi - lo) - 0.25).abs() < 0.05, "swing = {}", hi - lo);
    }

    #[test]
    fn level_shift_moves_dc() {
        let ls = LevelShift {
            shift: 0.3,
            f0: 50e9,
        };
        let w = UniformWave::new(0.0, 1e-12, vec![0.1; 64]);
        let out = ls.process(&w);
        assert!((out.samples()[63] - 0.4).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Small-signal (linearized) transfer functions.
//
// Each behavioural block's linear part is analytic, so the interface's
// Bode response — the source of Table I's bandwidth and DC gain — can be
// evaluated without transient simulation. The tanh limiter linearizes to
// its small-signal slope (`gain`).
// ---------------------------------------------------------------------

use cml_numeric::Complex64;

fn biquad_tf(f: f64, f0: f64, q: f64) -> Complex64 {
    let s = Complex64::new(0.0, f / f0);
    Complex64::ONE / (s * s + s / q + Complex64::ONE)
}

fn lowpass_tf(f: f64, f0: f64) -> Complex64 {
    Complex64::ONE / Complex64::new(1.0, f / f0)
}

fn highpass_tf(f: f64, f0: f64) -> Complex64 {
    let s = Complex64::new(0.0, f / f0);
    s / (Complex64::ONE + s)
}

impl CmlBuffer {
    /// Small-signal transfer at frequency `f` (Hz).
    #[must_use]
    pub fn small_signal(&self, f: f64) -> Complex64 {
        biquad_tf(f, self.f0, self.q).scale(self.gain)
    }
}

impl Equalizer {
    /// Small-signal transfer at frequency `f` (Hz): the tunable shelf
    /// times the amplifier roll-off (paper eq. (1) in factored form).
    #[must_use]
    pub fn small_signal(&self, f: f64) -> Complex64 {
        let f_pole = self.f_zero * self.boost;
        let shelf = lowpass_tf(f, f_pole).scale(1.0 / self.boost) + highpass_tf(f, f_pole);
        shelf * biquad_tf(f, self.f0, self.q).scale(self.gain_hf)
    }
}

impl LimitingAmp {
    /// Small-signal transfer at frequency `f` (Hz).
    #[must_use]
    pub fn small_signal(&self, f: f64) -> Complex64 {
        let stage = biquad_tf(f, self.stage_f0, self.stage_q).scale(self.stage_gain);
        let mut h = stage * stage * stage * stage;
        if self.f_offset > 0.0 {
            h *= highpass_tf(f, self.f_offset);
        }
        h
    }
}

#[cfg(test)]
mod small_signal_tests {
    use super::*;

    #[test]
    fn buffer_tf_matches_gain_at_dc() {
        let b = CmlBuffer::paper_default();
        let h = b.small_signal(1e3);
        assert!((h.abs() - b.gain).abs() < 1e-6);
    }

    #[test]
    fn equalizer_tf_shows_boost_ratio() {
        let eq = Equalizer::max_boost();
        let lo = eq.small_signal(1e6).abs();
        let hi = eq.small_signal(5e9).abs();
        // HF/LF ratio approaches `boost` (4×) before the poles bite.
        assert!(hi / lo > 2.5, "ratio = {}", hi / lo);
    }

    #[test]
    fn la_tf_is_fourth_power_of_stage() {
        let la = LimitingAmp {
            f_offset: 0.0,
            ..LimitingAmp::paper_default()
        };
        let h = la.small_signal(1e6).abs();
        assert!((h - la.stage_gain.powi(4)).abs() / h < 1e-6);
    }
}
