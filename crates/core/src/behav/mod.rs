//! Behavioural (waveform-level) models of the paper's blocks.
//!
//! Transistor-level simulation of the full TX → backplane → RX path at
//! 10 Gb/s PRBS-7 is possible with `cml-spice` but slow; the paper's
//! system-level figures (14–16) are regenerated with these calibrated
//! behavioural models instead: each block is a static CML nonlinearity
//! (the differential pair's tanh) composed with the small-signal transfer
//! function measured from the corresponding transistor cell.
//!
//! Every model implements [`Block`] (waveform in → waveform out) so
//! chains compose naturally:
//!
//! ```
//! use cml_core::behav::{Block, Chain, CmlBuffer, Equalizer};
//!
//! let rx = Chain::new()
//!     .then(Equalizer::paper_default())
//!     .then(CmlBuffer::paper_default());
//! assert_eq!(rx.len(), 2);
//! ```

mod blocks;
pub mod cdr;
mod filter;
mod interfaces;

pub use blocks::{
    CmlBuffer, DelayBuffer, Equalizer, LevelShift, LimitingAmp, TaperedDriver, VoltagePeaking,
};
pub use filter::{Biquad, FirstOrder};
pub use interfaces::{ChannelBlock, InputInterface, IoLink, OutputInterface};

use cml_sig::UniformWave;

/// A waveform-processing block: the behavioural counterpart of one
/// circuit cell.
pub trait Block {
    /// Processes an input waveform into the block's output waveform
    /// (same time grid).
    fn process(&self, input: &UniformWave) -> UniformWave;
}

/// A sequential chain of blocks.
#[derive(Default)]
pub struct Chain {
    blocks: Vec<Box<dyn Block + Send + Sync>>,
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chain({} blocks)", self.blocks.len())
    }
}

impl Chain {
    /// Creates an empty chain (identity).
    #[must_use]
    pub fn new() -> Self {
        Chain { blocks: Vec::new() }
    }

    /// Appends a block to the chain.
    #[must_use]
    pub fn then(mut self, block: impl Block + Send + Sync + 'static) -> Self {
        self.blocks.push(Box::new(block));
        self
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl Block for Chain {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let mut wave = input.clone();
        for b in &self.blocks {
            wave = b.process(&wave);
        }
        wave
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_identity() {
        let w = UniformWave::new(0.0, 1e-12, vec![0.1, -0.2, 0.3]);
        let c = Chain::new();
        assert_eq!(c.process(&w), w);
        assert!(c.is_empty());
    }

    #[test]
    fn chain_composes_in_order() {
        struct AddOne;
        impl Block for AddOne {
            fn process(&self, w: &UniformWave) -> UniformWave {
                w.map(|v| v + 1.0)
            }
        }
        struct Double;
        impl Block for Double {
            fn process(&self, w: &UniformWave) -> UniformWave {
                w.map(|v| v * 2.0)
            }
        }
        let w = UniformWave::new(0.0, 1.0, vec![1.0]);
        let c = Chain::new().then(AddOne).then(Double);
        assert_eq!(c.process(&w).samples(), &[4.0]); // (1+1)*2
        let c2 = Chain::new().then(Double).then(AddOne);
        assert_eq!(c2.process(&w).samples(), &[3.0]); // 1*2+1
    }
}
