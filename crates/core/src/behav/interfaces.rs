//! Composed behavioural interfaces: the paper's Fig. 2 input interface,
//! Fig. 3 output interface, and the full TX → channel → RX link.

use super::blocks::{CmlBuffer, Equalizer, LevelShift, LimitingAmp, TaperedDriver, VoltagePeaking};
use super::Block;
use cml_channel::Backplane;
use cml_sig::UniformWave;

/// The CML input interface (Fig. 2): equalizer → CML input buffer →
/// limiting amplifier (4 gain stages + offset cancel) → output buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct InputInterface {
    /// Input equalizer (with 50 Ω termination in the circuit).
    pub equalizer: Equalizer,
    /// CML input buffer.
    pub input_buffer: CmlBuffer,
    /// Limiting amplifier.
    pub limiting_amp: LimitingAmp,
    /// CML output buffer toward the CDR.
    pub output_buffer: CmlBuffer,
}

impl InputInterface {
    /// The paper's nominal input interface.
    #[must_use]
    pub fn paper_default() -> Self {
        InputInterface {
            equalizer: Equalizer::paper_default(),
            input_buffer: CmlBuffer::paper_default(),
            limiting_amp: LimitingAmp::paper_default(),
            output_buffer: CmlBuffer::paper_default(),
        }
    }

    /// Same interface with the equalizer flattened (Fig. 15(a)).
    #[must_use]
    pub fn without_equalizer() -> Self {
        InputInterface {
            equalizer: Equalizer::flat(),
            ..InputInterface::paper_default()
        }
    }
}

impl Block for InputInterface {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let w = self.equalizer.process(input);
        let w = self.input_buffer.process(&w);
        let w = self.limiting_amp.process(&w);
        self.output_buffer.process(&w)
    }
}

/// The CML output interface (Fig. 3): level shift → tapered CML stages →
/// voltage peaking summed at the 50 Ω output node (the differentiator
/// injects its spike *current* into the final load, so the spikes ride on
/// top of the limited output swing).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputInterface {
    /// Level-shift circuit.
    pub level_shift: LevelShift,
    /// Voltage-peaking circuit inserted between output stages 1 and 2.
    pub peaking: VoltagePeaking,
    /// Three-stage tapered CML driver.
    pub driver: TaperedDriver,
}

impl OutputInterface {
    /// The paper's nominal output interface with 20 % peaking.
    #[must_use]
    pub fn paper_default() -> Self {
        OutputInterface {
            level_shift: LevelShift::paper_default(),
            peaking: VoltagePeaking::paper_default(),
            driver: TaperedDriver::paper_default(),
        }
    }

    /// Peaking disabled (Fig. 16(a)).
    #[must_use]
    pub fn without_peaking() -> Self {
        OutputInterface {
            peaking: VoltagePeaking::disabled(),
            ..OutputInterface::paper_default()
        }
    }
}

impl Block for OutputInterface {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let w = self.level_shift.process(input);
        let w = self.driver.process(&w);
        self.peaking.process(&w)
    }
}

/// A full link: output interface (TX) → backplane → input interface (RX).
///
/// This is the paper's Fig. 1 deployment and the testbench behind the
/// Fig. 14/15 eye diagrams.
#[derive(Debug, Clone)]
pub struct IoLink {
    /// Transmit-side output interface.
    pub tx: OutputInterface,
    /// The backplane channel (`None` = back-to-back).
    pub channel: Option<Backplane>,
    /// Receive-side input interface.
    pub rx: InputInterface,
}

impl IoLink {
    /// Nominal link over a 0.5 m FR-4 backplane. The receive equalizer
    /// is tuned to the channel (boost 1.5 rather than the standalone
    /// default): TX pre-emphasis and RX equalization share the
    /// compensation budget, and stacking both at full strength
    /// over-equalizes.
    #[must_use]
    pub fn paper_default() -> Self {
        let mut rx = InputInterface::paper_default();
        rx.equalizer.boost = 1.5;
        IoLink {
            tx: OutputInterface::paper_default(),
            channel: Some(Backplane::fr4_trace(0.5)),
            rx,
        }
    }

    /// Back-to-back (no channel) link. Both compensators are tuned off —
    /// the RX equalizer flat (V1 high) and the TX peaking disabled —
    /// since boosting an unattenuated signal over-equalizes (visible as
    /// real bit errors in the `cdr_ber` experiment if left on).
    #[must_use]
    pub fn back_to_back() -> Self {
        IoLink {
            channel: None,
            tx: OutputInterface::without_peaking(),
            rx: InputInterface::without_equalizer(),
        }
    }
}

impl Block for IoLink {
    fn process(&self, input: &UniformWave) -> UniformWave {
        let tx_out = self.tx.process(input);
        let rx_in = match &self.channel {
            Some(bp) => bp.apply(&tx_out, true),
            None => tx_out,
        };
        self.rx.process(&rx_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;
    use cml_sig::{measure, EyeDiagram};

    fn prbs_wave(amplitude: f64) -> UniformWave {
        let bits: Vec<bool> = Prbs::prbs7().take(381).collect();
        NrzConfig::new(100e-12, amplitude).render(&bits)
    }

    fn eye_of(w: &UniformWave) -> cml_sig::EyeMetrics {
        EyeDiagram::fold(&w.skip_initial(3e-9), 100e-12).metrics()
    }

    #[test]
    fn input_interface_meets_sensitivity_and_swing() {
        // Fig. 14(a): 4 mV in → ≈250 mV per side out with an open eye.
        let rx = InputInterface::paper_default();
        let out = rx.process(&prbs_wave(4e-3));
        let m = eye_of(&out);
        assert!(m.height > 0.12, "eye height = {}", m.height);
        assert!(m.opening > 0.5, "opening = {}", m.opening);
        let swing = measure::swing(&out);
        assert!(swing > 0.35 && swing < 0.65, "swing = {swing}");
    }

    #[test]
    fn input_interface_tolerates_large_input() {
        // Fig. 14(b): 1.8 Vpp input must not break the interface — same
        // limited output swing, eye still open (40 dB dynamic range).
        let rx = InputInterface::paper_default();
        let out = rx.process(&prbs_wave(1.8));
        let m = eye_of(&out);
        assert!(m.opening > 0.25, "opening = {}", m.opening);
        assert!(m.height > 0.0, "eye must remain open at 1.8 Vpp");
        let swing = measure::swing(&out);
        assert!(swing < 0.7, "swing = {swing}");
    }

    #[test]
    fn equalizer_opens_the_post_channel_eye() {
        // Fig. 15: after the lossy backplane the eye without equalizer
        // is much worse than with it.
        let bp = Backplane::fr4_trace(0.6);
        let tx = OutputInterface::paper_default();
        let rx_eq = InputInterface::paper_default();
        let rx_no = InputInterface::without_equalizer();
        let sent = tx.process(&prbs_wave(0.5));
        let received = bp.apply(&sent, true);
        let m_eq = eye_of(&rx_eq.process(&received));
        let m_no = eye_of(&rx_no.process(&received));
        // The limiting amplifier restores amplitude either way; the
        // equalizer's win is timing margin (eye width / jitter).
        assert!(
            m_eq.width > m_no.width + 10e-12,
            "equalizer must widen the eye: with {:.1} ps vs without {:.1} ps",
            m_eq.width * 1e12,
            m_no.width * 1e12
        );
        assert!(m_eq.rms_jitter < m_no.rms_jitter);
    }

    #[test]
    fn full_link_end_to_end_eye_open() {
        let link = IoLink::paper_default();
        let out = link.process(&prbs_wave(0.5));
        let m = eye_of(&out);
        assert!(m.opening > 0.5, "link eye opening = {}", m.opening);
        assert!(m.height > 0.2, "link eye height = {}", m.height);
    }

    #[test]
    fn compensated_link_recovers_bits_error_free() {
        // The CDR-level claim behind Fig. 1: over the nominal compensated
        // backplane, the recovered bit stream is error-free, while the
        // raw (uncompensated, back-to-back) chain runs at its composite
        // bandwidth limit and shows residual errors — equalization is
        // what buys the margin.
        use crate::behav::cdr::{self, CdrConfig};
        let pattern = cml_sig::prbs::Prbs::prbs7().one_period();
        let mut seq = Vec::new();
        for _ in 0..5 {
            seq.extend_from_slice(&pattern);
        }
        let data = NrzConfig::new(100e-12, 0.5).render(&seq);
        let out = IoLink::paper_default().process(&data);
        let res = cdr::recover(&out, &CdrConfig::at_10gbps());
        let (errors, total) = cdr::bit_errors(&res.bits, &pattern);
        assert!(total > 300);
        assert_eq!(errors, 0, "compensated 0.5 m link must be error-free");
    }

    #[test]
    fn tx_peaking_improves_post_channel_eye() {
        // Fig. 16: with voltage peaking the post-channel eye improves in
        // both height and width on a moderate-loss trace.
        let bp = Backplane::fr4_trace(0.4);
        let w = prbs_wave(0.5);
        let with = bp.apply(&OutputInterface::paper_default().process(&w), true);
        let without = bp.apply(&OutputInterface::without_peaking().process(&w), true);
        let m_with = eye_of(&with);
        let m_without = eye_of(&without);
        assert!(
            m_with.height > m_without.height,
            "peaking must lift eye height: {} vs {}",
            m_with.height,
            m_without.height
        );
        assert!(
            m_with.width > m_without.width + 5e-12,
            "peaking must widen the eye: {:.1} ps vs {:.1} ps",
            m_with.width * 1e12,
            m_without.width * 1e12
        );
    }
}

impl InputInterface {
    /// Small-signal transfer of the whole input interface at `f` (Hz).
    #[must_use]
    pub fn small_signal(&self, f: f64) -> cml_numeric::Complex64 {
        self.equalizer.small_signal(f)
            * self.input_buffer.small_signal(f)
            * self.limiting_amp.small_signal(f)
            * self.output_buffer.small_signal(f)
    }

    /// Bode response over a frequency grid — the source of Table I's
    /// −3 dB bandwidth and DC-gain rows.
    #[must_use]
    pub fn bode(&self, freqs: &[f64]) -> cml_sig::Bode {
        let gains = freqs.iter().map(|&f| self.small_signal(f)).collect();
        cml_sig::Bode::new(freqs.to_vec(), gains)
    }
}

#[cfg(test)]
mod bode_tests {
    use super::*;

    #[test]
    fn interface_bode_has_ghz_bandwidth_and_high_gain() {
        let rx = InputInterface::paper_default();
        let freqs = cml_numeric::logspace(1e6, 60e9, 200);
        let bode = rx.bode(&freqs);
        let bw = bode.bandwidth_3db().expect("rolls off");
        assert!(bw > 4e9, "bw = {bw:.3e}");
        // Mid-band gain (above the offset high-pass, below the poles).
        let g = bode.gain_db_at(1e9);
        assert!(g > 30.0, "mid-band gain = {g} dB");
    }
}

/// [`Block`] adapter for the distributed backplane so channels compose
/// into [`Chain`]s alongside circuit blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelBlock {
    /// The wrapped channel.
    pub channel: Backplane,
    /// Whether to remove the bulk line delay (keeps eye folding aligned).
    pub remove_delay: bool,
}

impl ChannelBlock {
    /// Wraps a backplane with delay removal on.
    #[must_use]
    pub fn new(channel: Backplane) -> Self {
        ChannelBlock {
            channel,
            remove_delay: true,
        }
    }
}

impl Block for ChannelBlock {
    fn process(&self, input: &UniformWave) -> UniformWave {
        self.channel.apply(input, self.remove_delay)
    }
}

#[cfg(test)]
mod channel_block_tests {
    use super::*;
    use crate::behav::Chain;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;

    #[test]
    fn chain_composes_interfaces_and_channel() {
        let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
        let data = NrzConfig::new(100e-12, 0.5).render(&bits);
        let chain = Chain::new()
            .then(OutputInterface::paper_default())
            .then(ChannelBlock::new(Backplane::fr4_trace(0.5)))
            .then(InputInterface::paper_default());
        let via_chain = chain.process(&data);
        let via_link = IoLink {
            tx: OutputInterface::paper_default(),
            channel: Some(Backplane::fr4_trace(0.5)),
            rx: InputInterface::paper_default(),
        }
        .process(&data);
        assert_eq!(via_chain, via_link, "Chain and IoLink must agree");
    }
}
