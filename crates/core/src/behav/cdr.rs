//! Bang-bang clock-and-data recovery (CDR) model.
//!
//! The paper's input interface exists to feed a CDR: "limiting amplifiers
//! are responsible to amplify the input signal to a sufficient voltage for
//! the reliable operation of Clock Data Recovery". This module closes that
//! loop: an Alexander (early/late) phase detector driving a first-order
//! digital loop filter, recovering the sampling clock from the data and
//! slicing bits with it — which turns the eye-diagram figures into an
//! actual measured bit-error count.

use cml_sig::UniformWave;

/// Bang-bang CDR configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdrConfig {
    /// Nominal unit interval, seconds.
    pub ui: f64,
    /// Proportional phase step per early/late decision, as a fraction of
    /// the UI (the bang-bang gain).
    pub kp: f64,
    /// Integral (frequency-tracking) gain, fraction of UI per decision².
    pub ki: f64,
    /// Decision threshold, volts (differential midlevel).
    pub threshold: f64,
}

impl CdrConfig {
    /// A 10 Gb/s CDR with conventional bang-bang gains.
    #[must_use]
    pub fn at_10gbps() -> Self {
        CdrConfig {
            ui: 100e-12,
            kp: 0.01,
            ki: 2e-5,
            threshold: 0.0,
        }
    }
}

/// Result of running the CDR over a waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct CdrResult {
    /// Recovered bits (one per UI after lock-in).
    pub bits: Vec<bool>,
    /// Sampling-phase history, fraction of UI (for lock diagnostics).
    pub phase_history: Vec<f64>,
    /// Final integral (frequency) term, fraction of UI per bit.
    pub freq_term: f64,
}

impl CdrResult {
    /// RMS of the phase wander after the first half (locked portion),
    /// fraction of the UI.
    #[must_use]
    pub fn locked_phase_rms(&self) -> f64 {
        let tail = &self.phase_history[self.phase_history.len() / 2..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        (tail.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / tail.len() as f64).sqrt()
    }
}

/// Runs the bang-bang CDR over a differential waveform.
///
/// The Alexander detector samples at the bit center (`data`), the
/// previous bit center, and the crossing between them (`edge`); an edge
/// sample agreeing with the *later* data sample means the clock is late.
///
/// # Panics
///
/// Panics if the waveform is shorter than four UI.
#[must_use]
pub fn recover(wave: &UniformWave, cfg: &CdrConfig) -> CdrResult {
    assert!(
        wave.duration() > 4.0 * cfg.ui,
        "need at least four UI of data"
    );
    // Sampling phase offset from the nominal bit center, fraction of UI.
    let mut phase: f64 = 0.0;
    let mut freq: f64 = 0.0;
    let mut bits = Vec::new();
    let mut phase_history = Vec::new();

    // Bit k's nominal center is t0 + (k + 0.5)·UI; start at bit 1 so the
    // "previous bit" sample is in range.
    let t_end = wave.t0() + wave.duration();
    let mut k: usize = 1;
    let mut prev_data = wave.value_at(wave.t0() + 0.5 * cfg.ui) > cfg.threshold;
    loop {
        let t_center = wave.t0() + (k as f64 + 0.5 + phase) * cfg.ui;
        if t_center + cfg.ui > t_end {
            break;
        }
        let data = wave.value_at(t_center) > cfg.threshold;
        let edge = wave.value_at(t_center - cfg.ui / 2.0) > cfg.threshold;
        // Alexander decisions: only transitions carry timing information.
        if data != prev_data {
            // If the crossing sample already equals the new bit, the
            // clock samples late; move earlier.
            let late = edge == data;
            phase += if late { -cfg.kp } else { cfg.kp };
            freq += if late { -cfg.ki } else { cfg.ki };
        }
        phase += freq;
        // Bound the phase; a wrap is a bit slip and shows in the BER.
        if phase > 0.5 {
            phase -= 1.0;
        } else if phase < -0.5 {
            phase += 1.0;
        }
        bits.push(data);
        phase_history.push(phase);
        prev_data = data;
        k += 1;
    }

    CdrResult {
        bits,
        phase_history,
        freq_term: freq,
    }
}

/// Compares recovered bits against the transmitted pattern, searching all
/// alignments of the (possibly rotated) reference sequence; returns the
/// minimum error count and the total compared.
#[must_use]
pub fn bit_errors(recovered: &[bool], reference: &[bool]) -> (usize, usize) {
    assert!(!reference.is_empty(), "empty reference");
    // Skip the lock-in preamble.
    let skip = recovered.len() / 4;
    let rx = &recovered[skip..];
    let mut best = rx.len();
    for rot in 0..reference.len() {
        let errors = rx
            .iter()
            .enumerate()
            .filter(|(i, &b)| b != reference[(i + rot) % reference.len()])
            .count();
        best = best.min(errors);
    }
    (best, rx.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cml_sig::nrz::NrzConfig;
    use cml_sig::prbs::Prbs;

    fn pattern() -> Vec<bool> {
        Prbs::prbs7().one_period()
    }

    fn wave_of(bits: &[bool], rj: f64) -> UniformWave {
        // Three periods so the CDR has time to lock.
        let mut seq = bits.to_vec();
        seq.extend_from_slice(bits);
        seq.extend_from_slice(bits);
        NrzConfig::new(100e-12, 0.5)
            .with_random_jitter(rj, 11)
            .render(&seq)
    }

    #[test]
    fn recovers_clean_data_error_free() {
        let bits = pattern();
        let wave = wave_of(&bits, 0.0);
        let res = recover(&wave, &CdrConfig::at_10gbps());
        let (errors, total) = bit_errors(&res.bits, &bits);
        assert!(total > 200, "compared {total} bits");
        assert_eq!(errors, 0, "clean data must recover error-free");
    }

    #[test]
    fn locks_with_small_phase_wander() {
        let bits = pattern();
        let wave = wave_of(&bits, 1e-12);
        let res = recover(&wave, &CdrConfig::at_10gbps());
        let rms = res.locked_phase_rms();
        assert!(rms < 0.1, "locked phase wander = {rms:.3} UI");
    }

    #[test]
    fn tolerates_moderate_jitter() {
        let bits = pattern();
        let wave = wave_of(&bits, 3e-12);
        let res = recover(&wave, &CdrConfig::at_10gbps());
        let (errors, total) = bit_errors(&res.bits, &bits);
        let ber = errors as f64 / total as f64;
        assert!(ber < 0.01, "BER = {ber:.4} with 3 ps rms jitter");
    }

    #[test]
    fn through_the_limiting_interface() {
        // End-to-end §II claim: 4 mV input → interface → CDR recovers
        // the bits.
        use crate::behav::{Block, InputInterface};
        let bits = pattern();
        let mut seq = bits.clone();
        seq.extend_from_slice(&bits);
        seq.extend_from_slice(&bits);
        let tiny = NrzConfig::new(100e-12, 4e-3).render(&seq);
        let out = InputInterface::paper_default().process(&tiny);
        let res = recover(&out, &CdrConfig::at_10gbps());
        let (errors, total) = bit_errors(&res.bits, &bits);
        let ber = errors as f64 / total as f64;
        assert!(
            ber < 0.02,
            "BER through the interface at 4 mV input = {ber:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "four UI")]
    fn short_wave_rejected() {
        let w = UniformWave::new(0.0, 1e-12, vec![0.0; 100]);
        let _ = recover(&w, &CdrConfig::at_10gbps());
    }
}
