//! Discrete-time filters derived from analog prototypes.
//!
//! All behavioural frequency shaping is done with bilinear-transformed
//! first- and second-order sections, so a block's analog transfer
//! function (poles/zeros in Hz) maps directly onto the sampled waveform
//! grid regardless of the sample rate chosen by the caller.

use cml_sig::UniformWave;

/// A first-order section `H(s) = (b0 + b1·s/ω0) / (1 + s/ω0)` sampled by
/// the bilinear transform at the waveform's rate.
///
/// `b0 = 1, b1 = 0` is a low-pass; `b0 = 0, b1 = 1` a high-pass;
/// `b0 = 1, b1 = 1` an all-pass-like shelf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirstOrder {
    /// Corner frequency, Hz.
    pub f0: f64,
    /// Numerator constant term.
    pub b0: f64,
    /// Numerator `s/ω0` coefficient.
    pub b1: f64,
}

impl FirstOrder {
    /// Unity-DC-gain low-pass with the given corner.
    ///
    /// # Panics
    ///
    /// Panics if `f0` is not strictly positive.
    #[must_use]
    pub fn lowpass(f0: f64) -> Self {
        assert!(f0 > 0.0, "corner must be positive");
        FirstOrder {
            f0,
            b0: 1.0,
            b1: 0.0,
        }
    }

    /// Unity-high-frequency-gain high-pass with the given corner.
    ///
    /// # Panics
    ///
    /// Panics if `f0` is not strictly positive.
    #[must_use]
    pub fn highpass(f0: f64) -> Self {
        assert!(f0 > 0.0, "corner must be positive");
        FirstOrder {
            f0,
            b0: 0.0,
            b1: 1.0,
        }
    }

    /// Filters a waveform.
    #[must_use]
    pub fn apply(&self, wave: &UniformWave) -> UniformWave {
        // Bilinear transform with prewarping at f0.
        let t = wave.dt();
        let wc = 2.0 * std::f64::consts::PI * self.f0;
        let k = 2.0 / t * (wc * t / 2.0).tan() / wc; // prewarp correction
        let c = 2.0 * k / t / wc; // s/ω0 → c·(1−z⁻¹)/(1+z⁻¹)
                                  // H(z) = (b0(1+z⁻¹) + b1·c(1−z⁻¹)) / ((1+z⁻¹) + c(1−z⁻¹))
        let a0 = 1.0 + c;
        let a1 = 1.0 - c;
        let n0 = self.b0 + self.b1 * c;
        let n1 = self.b0 - self.b1 * c;
        let mut y_prev = if self.b1 == 0.0 {
            // Low-pass style: settle at the first sample's level.
            wave.samples()[0] * self.b0
        } else {
            wave.samples()[0] * self.b0
        };
        let mut x_prev = wave.samples()[0];
        let mut out = Vec::with_capacity(wave.len());
        // Start in steady state for the first sample.
        out.push(y_prev);
        for &x in &wave.samples()[1..] {
            let y = (n0 * x + n1 * x_prev - a1 * y_prev) / a0;
            out.push(y);
            x_prev = x;
            y_prev = y;
        }
        UniformWave::new(wave.t0(), wave.dt(), out)
    }
}

/// A second-order section `H(s) = g / (1 + s/(Q·ω0) + s²/ω0²)` (unity-DC
/// low-pass scaled by `g`), bilinear-transformed at the waveform rate.
///
/// `Q > 1/√2` produces the gain peaking characteristic of inductive
/// loads — the behavioural face of the active inductor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Natural frequency, Hz.
    pub f0: f64,
    /// Quality factor.
    pub q: f64,
    /// DC gain.
    pub gain: f64,
}

impl Biquad {
    /// Creates a peaked low-pass section.
    ///
    /// # Panics
    ///
    /// Panics unless `f0`, `q` and `gain` are strictly positive.
    #[must_use]
    pub fn lowpass(f0: f64, q: f64, gain: f64) -> Self {
        assert!(
            f0 > 0.0 && q > 0.0 && gain > 0.0,
            "parameters must be positive"
        );
        Biquad { f0, q, gain }
    }

    /// The −3 dB bandwidth of the analog prototype (relative to DC).
    #[must_use]
    pub fn bandwidth(&self) -> f64 {
        // |H(jw)|² = 1/((1−u²)² + u²/Q²), u = ω/ω0: solve for 1/2.
        let q2 = self.q * self.q;
        let a = 1.0 - 1.0 / (2.0 * q2);
        let u2 = a + (a * a + 1.0).sqrt();
        self.f0 * u2.sqrt()
    }

    /// Filters a waveform.
    #[must_use]
    pub fn apply(&self, wave: &UniformWave) -> UniformWave {
        let t = wave.dt();
        let w0 = 2.0 * std::f64::consts::PI * self.f0;
        // Prewarped bilinear: K = ω0 / tan(ω0·T/2).
        let k = w0 / (w0 * t / 2.0).tan();
        let k2 = k * k;
        let w02 = w0 * w0;
        let a0 = k2 + k * w0 / self.q + w02;
        let a1 = 2.0 * (w02 - k2);
        let a2 = k2 - k * w0 / self.q + w02;
        let b = self.gain * w02;
        // H(z) = b(1+z⁻¹)²/(a0 + a1 z⁻¹ + a2 z⁻²)
        let x0 = wave.samples()[0];
        let y_ss = self.gain * x0;
        let mut x1 = x0;
        let mut x2 = x0;
        let mut y1 = y_ss;
        let mut y2 = y_ss;
        let mut out = Vec::with_capacity(wave.len());
        for &x in wave.samples() {
            let y = (b * (x + 2.0 * x1 + x2) - a1 * y1 - a2 * y2) / a0;
            out.push(y);
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
        }
        UniformWave::new(wave.t0(), wave.dt(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, dt: f64, n: usize) -> UniformWave {
        UniformWave::new(
            0.0,
            dt,
            (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 * dt).sin())
                .collect(),
        )
    }

    fn steady_amplitude(w: &UniformWave) -> f64 {
        let tail = &w.samples()[w.len() / 2..];
        tail.iter().cloned().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    #[test]
    fn lowpass_passes_dc_and_attenuates_high() {
        let f = FirstOrder::lowpass(1e9);
        let dc = UniformWave::new(0.0, 1e-12, vec![0.7; 512]);
        let out = f.apply(&dc);
        assert!((out.samples()[511] - 0.7).abs() < 1e-9);
        // Tone a decade above the corner: ~−20 dB.
        let tone = sine(1e10, 1e-12, 4000);
        let amp = steady_amplitude(&f.apply(&tone));
        assert!((amp - 0.0995).abs() < 0.02, "amp = {amp}");
    }

    #[test]
    fn lowpass_minus_3db_at_corner() {
        let f = FirstOrder::lowpass(1e9);
        let tone = sine(1e9, 0.5e-12, 8000);
        let amp = steady_amplitude(&f.apply(&tone));
        assert!(
            (amp - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "amp = {amp}"
        );
    }

    #[test]
    fn highpass_blocks_dc() {
        let f = FirstOrder::highpass(1e6);
        let step = UniformWave::new(0.0, 1e-9, vec![1.0; 20000]);
        let out = f.apply(&step);
        // Initialized at steady state → stays ~0 for constant input.
        assert!(out.samples()[19999].abs() < 1e-6);
        // Fast tone passes.
        let tone = sine(1e9, 1e-11, 4000);
        let amp = steady_amplitude(&f.apply(&tone));
        assert!((amp - 1.0).abs() < 0.02, "amp = {amp}");
    }

    #[test]
    fn biquad_dc_gain_and_peaking() {
        let b = Biquad::lowpass(5e9, 1.5, 2.0);
        let dc = UniformWave::new(0.0, 1e-12, vec![0.5; 1024]);
        let out = b.apply(&dc);
        assert!((out.samples()[1023] - 1.0).abs() < 1e-6);
        // Near f0, Q = 1.5 gives gain ≈ Q·g (for high Q): amplitude > g.
        let tone = sine(5e9, 0.25e-12, 16000);
        let amp = steady_amplitude(&b.apply(&tone));
        assert!(amp > 2.5, "peak amp = {amp}");
    }

    #[test]
    fn biquad_bandwidth_formula() {
        // Butterworth Q = 0.7071: bandwidth = f0.
        let b = Biquad::lowpass(3e9, std::f64::consts::FRAC_1_SQRT_2, 1.0);
        assert!((b.bandwidth() - 3e9).abs() / 3e9 < 1e-6);
        // Q = 0.5 (two coincident poles): bandwidth = f0·0.644.
        let b2 = Biquad::lowpass(3e9, 0.5, 1.0);
        assert!((b2.bandwidth() / 3e9 - 0.6436).abs() < 1e-3);
    }

    #[test]
    fn biquad_attenuates_two_decades_up() {
        let b = Biquad::lowpass(1e9, std::f64::consts::FRAC_1_SQRT_2, 1.0);
        // 40 dB/decade: at 10 GHz ≈ −40 dB.
        let tone = sine(1e10, 1e-13, 40000);
        let amp = steady_amplitude(&b.apply(&tone));
        assert!(amp < 0.02, "amp = {amp}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_corner_rejected() {
        let _ = FirstOrder::lowpass(0.0);
    }
}
