//! CML sizing equations (paper §III).
//!
//! Everything here is first-order hand analysis — the same arithmetic a
//! designer does before opening the simulator. The netlist generators in
//! [`crate::cells`] consume these numbers, so a change here re-sizes the
//! whole interface consistently.

use cml_pdk::Pdk018;

/// Differential CML stage design point.
///
/// A CML stage is fully determined by its tail current, single-ended load
/// resistance and input-pair overdrive:
///
/// * single-ended output swing `= I_tail · R_load`,
/// * input-pair transconductance `gm = 2·I_D / V_ov = I_tail / V_ov`,
/// * small-signal gain `≈ gm · R_load`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmlStage {
    /// Tail current, amps.
    pub i_tail: f64,
    /// Single-ended load resistance, ohms.
    pub r_load: f64,
    /// Input-pair overdrive voltage at balance, volts.
    pub v_ov: f64,
}

impl CmlStage {
    /// Designs a stage for a target single-ended swing into `r_load`.
    ///
    /// # Panics
    ///
    /// Panics unless all inputs are strictly positive.
    #[must_use]
    pub fn for_swing(swing: f64, r_load: f64, v_ov: f64) -> Self {
        assert!(
            swing > 0.0 && r_load > 0.0 && v_ov > 0.0,
            "all design inputs must be positive"
        );
        CmlStage {
            i_tail: swing / r_load,
            r_load,
            v_ov,
        }
    }

    /// Single-ended output swing `I·R`, volts.
    #[must_use]
    pub fn swing(&self) -> f64 {
        self.i_tail * self.r_load
    }

    /// Input-pair transconductance at balance, siemens. Each device
    /// carries `I_tail/2`, so `gm = 2·(I_tail/2)/V_ov = I_tail/V_ov`.
    #[must_use]
    pub fn gm(&self) -> f64 {
        self.i_tail / self.v_ov
    }

    /// Small-signal differential gain `gm·R_load` (dimensionless).
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gm() * self.r_load
    }

    /// Required W/L for each input device: from the square law at
    /// `I_D = I_tail/2`, `W/L = I_tail / (kp·V_ov²)`.
    #[must_use]
    pub fn input_wl(&self, kp: f64) -> f64 {
        self.i_tail / (kp * self.v_ov * self.v_ov)
    }

    /// Input device width at the process minimum length, meters.
    #[must_use]
    pub fn input_width(&self, pdk: &Pdk018) -> f64 {
        let card = pdk.nmos(1e-6, cml_pdk::L_MIN); // probe card for kp
        self.input_wl(card.kp) * cml_pdk::L_MIN
    }

    /// Static power from the 1.8 V supply, watts.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.i_tail * cml_pdk::VDD
    }
}

/// Width of the PMOS active-inductor load (diode-connected through the
/// peaking resistor) that presents `r_on = 1/gm` ohms at low frequency
/// when the stage tail current is `i_tail`.
///
/// Each load carries `i_tail/2` at balance; `gm = √(2·kp·(W/L)·I_D)`
/// inverted for `W/L` gives `W/L = 1/(r_on²·kp·i_tail)`. Equivalently
/// the load device overdrive is `V_ov,p = r_on·i_tail`.
///
/// # Panics
///
/// Panics unless `r_on` and `i_tail` are strictly positive.
#[must_use]
pub fn pmos_load_width(r_on: f64, i_tail: f64, pdk: &Pdk018) -> f64 {
    assert!(r_on > 0.0, "load resistance must be positive");
    assert!(i_tail > 0.0, "tail current must be positive");
    let card = pdk.pmos(1e-6, cml_pdk::L_MIN);
    let wl = 1.0 / (r_on * r_on * card.kp * i_tail);
    wl * cml_pdk::L_MIN
}

/// Estimated transition frequency `fT ≈ gm / (2π·Cgs)` of an NMOS biased
/// at overdrive `v_ov`, Hz — the speed currency of the process.
#[must_use]
pub fn nmos_ft(pdk: &Pdk018, v_ov: f64) -> f64 {
    let w = 10e-6;
    let card = pdk.nmos(w, cml_pdk::L_MIN);
    let gm = card.kp * (w / card.l) * v_ov;
    gm / (2.0 * std::f64::consts::PI * card.cgs())
}

/// The paper's headline design points, used by the netlist generators
/// and the power/area accounting.
pub mod paper {
    use super::CmlStage;

    /// Single-ended output swing into 50 Ω, volts (paper: 250 mV).
    pub const OUTPUT_SWING: f64 = 0.25;

    /// Last output-stage drive current, amps (paper: ≈ 8 mA for 50 Ω).
    pub const OUTPUT_DRIVE: f64 = 8e-3;

    /// Limiting-amplifier output swing for the CDR, volts.
    pub const LA_SWING: f64 = 0.25;

    /// Typical input sensitivity, volts (paper: 4 mV).
    pub const INPUT_SENSITIVITY: f64 = 4e-3;

    /// Input dynamic range, dB (paper: 40 dB → 4 mV to 400 mV… 1.8 V
    /// tolerated at the pad).
    pub const DYNAMIC_RANGE_DB: f64 = 40.0;

    /// Nominal data rate, bit/s.
    pub const DATA_RATE: f64 = 10e9;

    /// Unit interval at the nominal rate, seconds.
    pub const UI: f64 = 1.0 / DATA_RATE;

    /// An internal gain/buffer stage: 250 mV swing into 250 Ω.
    #[must_use]
    pub fn internal_stage() -> CmlStage {
        CmlStage::for_swing(0.25, 250.0, 0.25)
    }

    /// The 50 Ω-driving output stage: 8 mA through the 25 Ω parallel
    /// combination of the far-end termination and the on-chip back
    /// termination gives ≈ 200–250 mV at the load.
    #[must_use]
    pub fn output_stage() -> CmlStage {
        CmlStage {
            i_tail: OUTPUT_DRIVE,
            r_load: 50.0,
            v_ov: 0.35,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swing_gain_consistency() {
        let s = CmlStage::for_swing(0.25, 250.0, 0.25);
        assert!((s.i_tail - 1e-3).abs() < 1e-12);
        assert!((s.swing() - 0.25).abs() < 1e-12);
        assert!((s.gm() - 4e-3).abs() < 1e-12);
        assert!((s.gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_swing_needs_more_current() {
        let a = CmlStage::for_swing(0.2, 100.0, 0.2);
        let b = CmlStage::for_swing(0.4, 100.0, 0.2);
        assert!((b.i_tail - 2.0 * a.i_tail).abs() < 1e-12);
    }

    #[test]
    fn input_width_is_reasonable() {
        let pdk = Pdk018::typical();
        let s = paper::internal_stage();
        let w = s.input_width(&pdk);
        // Hand check: W/L = 1 mA/(170 µA/V²·0.0625) ≈ 94 → W ≈ 17 µm.
        assert!(w > 5e-6 && w < 50e-6, "w = {w:.2e}");
    }

    #[test]
    fn pmos_load_width_matches_hand_calc() {
        let pdk = Pdk018::typical();
        let w = pmos_load_width(250.0, 1e-3, &pdk);
        // W/L = 1/(250²·60 µ·1 m) = 267 → W ≈ 48 µm.
        assert!(w > 20e-6 && w < 100e-6, "w = {w:.2e}");
        // The implied load overdrive is r_on·i_tail = 0.25 V: check the
        // square law closes the loop (gm = 1/r_on).
        let card = pdk.pmos(w, cml_pdk::L_MIN);
        let gm = (2.0 * card.kp * (w / card.l) * 0.5e-3).sqrt();
        assert!((gm - 1.0 / 250.0).abs() / gm < 0.01, "gm = {gm}");
    }

    #[test]
    fn process_ft_supports_10gbps() {
        // 0.18 µm NMOS fT at 0.25 V overdrive should be tens of GHz —
        // the reason the paper's 10 Gb/s target is feasible at all.
        let ft = nmos_ft(&Pdk018::typical(), 0.25);
        assert!(ft > 20e9, "fT = {ft:.3e}");
    }

    #[test]
    fn output_stage_power_is_milliwatts() {
        let p = paper::output_stage().power();
        assert!((p - 14.4e-3).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_design_rejected() {
        let _ = CmlStage::for_swing(0.0, 100.0, 0.2);
    }
}
