//! Table I assembly: performance of this work versus the published
//! baselines.

use crate::baselines::PublishedDesign;
use crate::behav::InputInterface;
use cml_numeric::logspace;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerformanceRow {
    /// Design name.
    pub name: String,
    /// Process description.
    pub process: String,
    /// Supply voltage, volts.
    pub supply: f64,
    /// Power, watts.
    pub power: f64,
    /// Data rate, bit/s.
    pub data_rate: f64,
    /// −3 dB bandwidth, Hz.
    pub bandwidth: f64,
    /// Differential DC gain, dB.
    pub dc_gain_db: f64,
    /// Core area, mm².
    pub area_mm2: f64,
}

impl PerformanceRow {
    /// Formats the row for the bench harness (fixed-width columns).
    #[must_use]
    pub fn formatted(&self) -> String {
        format!(
            "{:<18} {:<12} {:>6.1} V {:>7.1} mW {:>6.1} Gb/s {:>6.2} GHz {:>6.1} dB {:>8.4} mm2",
            self.name,
            self.process,
            self.supply,
            self.power * 1e3,
            self.data_rate / 1e9,
            self.bandwidth / 1e9,
            self.dc_gain_db,
            self.area_mm2
        )
    }
}

/// Measures this work's row from the implemented models: power from the
/// tail-current inventory, bandwidth and gain from the input interface's
/// small-signal response, area from the layout inventory.
#[must_use]
pub fn this_work() -> PerformanceRow {
    let freqs = logspace(1e6, 60e9, 300);
    let bode = InputInterface::paper_default().bode(&freqs);
    let bandwidth = bode.bandwidth_3db().unwrap_or(0.0);
    // "DC gain (differential)": the mid-band gain above the offset-cancel
    // high-pass corner.
    let dc_gain_db = bode.gain_db_at(50e6);
    PerformanceRow {
        name: "This work (repro)".into(),
        process: "0.18um CMOS".into(),
        supply: cml_pdk::VDD,
        power: crate::power::io_interface().total_power(),
        data_rate: crate::design::paper::DATA_RATE,
        bandwidth,
        dc_gain_db,
        area_mm2: crate::area::io_interface().total_mm2(),
    }
}

/// The paper's own claimed row, for delta reporting.
#[must_use]
pub fn paper_claims() -> PerformanceRow {
    PerformanceRow {
        name: "This work (paper)".into(),
        process: "0.18um CMOS".into(),
        supply: 1.8,
        power: 70e-3,
        data_rate: 10e9,
        bandwidth: 9.5e9,
        dc_gain_db: 40.0,
        area_mm2: 0.028,
    }
}

/// A published baseline's row.
#[must_use]
pub fn baseline_row(d: &PublishedDesign) -> PerformanceRow {
    PerformanceRow {
        name: d.name.to_string(),
        process: d.process.to_string(),
        supply: d.supply,
        power: d.power,
        data_rate: d.data_rate,
        bandwidth: d.bandwidth,
        dc_gain_db: d.dc_gain_db,
        area_mm2: d.area_mm2,
    }
}

/// The full Table I: measured this-work row, the paper's claimed row,
/// and both baselines.
#[must_use]
pub fn table_one() -> Vec<PerformanceRow> {
    vec![
        this_work(),
        paper_claims(),
        baseline_row(&PublishedDesign::tao_berroth()),
        baseline_row(&PublishedDesign::galal_razavi()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_work_beats_baselines_on_power_and_area() {
        // Table I's qualitative claim, reproduced from our measured row.
        let ours = this_work();
        for d in [
            PublishedDesign::tao_berroth(),
            PublishedDesign::galal_razavi(),
        ] {
            assert!(ours.power < d.power, "power vs {}", d.name);
            assert!(ours.area_mm2 < d.area_mm2, "area vs {}", d.name);
        }
    }

    #[test]
    fn measured_row_is_in_the_paper_ballpark() {
        let ours = this_work();
        let paper = paper_claims();
        assert!((ours.power - paper.power).abs() / paper.power < 0.3);
        assert!(ours.bandwidth > 0.4 * paper.bandwidth);
        assert!(ours.dc_gain_db > 0.7 * paper.dc_gain_db);
        // Area within a factor ~3 of the paper's layout.
        let ratio = ours.area_mm2 / paper.area_mm2;
        assert!(ratio > 0.3 && ratio < 3.0, "area ratio = {ratio}");
    }

    #[test]
    fn table_has_four_rows_and_formats() {
        let t = table_one();
        assert_eq!(t.len(), 4);
        for row in &t {
            let s = row.formatted();
            assert!(s.contains("mm2"));
            assert!(s.contains("Gb/s"));
        }
    }
}
