//! Monte-Carlo device-mismatch study (the §III.C motivation).
//!
//! "Due to the process variation, the DC offset of the differential
//! amplifier may become large enough to smear the differential output
//! signal … after three stages of amplification." This module samples
//! random threshold-voltage mismatch (Pelgrom scaling: `σ(ΔV_TH) =
//! A_VT / √(W·L)`) on the limiting amplifier's input pairs, propagates
//! the offsets through the gain chain, and quantifies what the
//! offset-cancellation loop buys.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pelgrom threshold-mismatch coefficient for a 0.18 µm process,
/// V·m (≈ 5 mV·µm).
pub const A_VT: f64 = 5e-9;

/// σ of the threshold mismatch of one differential pair with the given
/// gate area per device (m²): `A_VT / √(W·L)`, in volts.
///
/// ```
/// let sigma = cml_core::montecarlo::vth_sigma(34e-6, 0.18e-6);
/// assert!(sigma > 1e-3 && sigma < 3e-3); // a couple of mV
/// ```
#[must_use]
pub fn vth_sigma(w: f64, l: f64) -> f64 {
    A_VT / (w * l).sqrt()
}

/// Result of one Monte-Carlo offset run.
#[derive(Debug, Clone, PartialEq)]
pub struct OffsetStudy {
    /// Input-referred offset samples, volts.
    pub input_offsets: Vec<f64>,
    /// Output offsets without cancellation, volts.
    pub raw_outputs: Vec<f64>,
    /// Output offsets with the cancellation loop, volts.
    pub cancelled_outputs: Vec<f64>,
}

impl OffsetStudy {
    /// σ of the input-referred offset.
    #[must_use]
    pub fn input_sigma(&self) -> f64 {
        cml_numeric::stats::std_dev(&self.input_offsets).unwrap_or(0.0)
    }

    /// σ of the raw (uncancelled) output offset.
    #[must_use]
    pub fn raw_sigma(&self) -> f64 {
        cml_numeric::stats::std_dev(&self.raw_outputs).unwrap_or(0.0)
    }

    /// σ of the cancelled output offset.
    #[must_use]
    pub fn cancelled_sigma(&self) -> f64 {
        cml_numeric::stats::std_dev(&self.cancelled_outputs).unwrap_or(0.0)
    }

    /// Fraction of raw samples whose output offset exceeds half the
    /// output swing — the "smeared eye" failures §III.C warns about.
    #[must_use]
    pub fn raw_failure_rate(&self, swing: f64) -> f64 {
        let n = self.raw_outputs.len().max(1);
        self.raw_outputs
            .iter()
            .filter(|o| o.abs() > swing / 2.0)
            .count() as f64
            / n as f64
    }
}

/// Runs the offset study: `n` Monte-Carlo samples of a four-stage chain
/// with per-stage gain `stage_gain`, per-stage input-pair mismatch
/// `sigma_vth`, output clamped to ±`swing/2`, and a cancellation loop of
/// the given DC loop gain.
///
/// The model: each stage adds its own offset, then amplifies; the
/// cancellation loop divides the total output offset by `1 + loop_gain`.
///
/// # Panics
///
/// Panics if `n == 0` or parameters are non-positive.
#[must_use]
pub fn run_offset_study(
    n: usize,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
    seed: u64,
) -> OffsetStudy {
    assert!(n > 0, "need at least one sample");
    assert!(
        stage_gain > 0.0 && sigma_vth > 0.0 && swing > 0.0 && loop_gain >= 0.0,
        "parameters must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<(f64, f64, f64)> = (0..n)
        .map(|_| trial(&mut rng, stage_gain, sigma_vth, swing, loop_gain))
        .collect();
    collect_study(rows)
}

/// Parallel variant of [`run_offset_study`]: the trials are fanned out
/// over `threads` worker threads via [`cml_runner::par_map`].
///
/// Each trial draws from its own RNG stream (seeded by
/// [`cml_runner::point_seed`] from the study seed and trial index), so
/// the result is fully determined by `(parameters, seed)` — independent
/// of the thread count and of scheduling — but is a *different* (equally
/// valid) sample set than the sequential-stream [`run_offset_study`].
///
/// # Panics
///
/// Panics if `n == 0` or parameters are non-positive.
#[must_use]
pub fn run_offset_study_par(
    n: usize,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
    seed: u64,
    threads: usize,
) -> OffsetStudy {
    assert!(n > 0, "need at least one sample");
    assert!(
        stage_gain > 0.0 && sigma_vth > 0.0 && swing > 0.0 && loop_gain >= 0.0,
        "parameters must be positive"
    );
    let trials: Vec<usize> = (0..n).collect();
    let rows = cml_runner::par_map(threads, &trials, |i, _| {
        let mut rng = StdRng::seed_from_u64(cml_runner::point_seed(seed, i));
        trial(&mut rng, stage_gain, sigma_vth, swing, loop_gain)
    });
    collect_study(rows)
}

/// One Monte-Carlo trial: sample four per-stage pair offsets and
/// propagate them through the clamped gain chain. Returns
/// `(input_referred, raw_output, cancelled_output)`.
fn trial(
    rng: &mut StdRng,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
) -> (f64, f64, f64) {
    let mut gauss = |sigma: f64| {
        // Box-Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    // Four stages, each with an independent pair offset.
    let offsets: [f64; 4] = [
        gauss(sigma_vth),
        gauss(sigma_vth),
        gauss(sigma_vth),
        gauss(sigma_vth),
    ];
    // Propagate: o_out = ((((o1)·A + o2)·A + o3)·A + o4)·A, clamped.
    let mut v = 0.0;
    for &o in &offsets {
        v = (v + o) * stage_gain;
        v = v.clamp(-swing / 2.0, swing / 2.0);
    }
    // Input-referred: total output offset divided by the total gain.
    (v / stage_gain.powi(4), v, v / (1.0 + loop_gain))
}

fn collect_study(rows: Vec<(f64, f64, f64)>) -> OffsetStudy {
    let mut input_offsets = Vec::with_capacity(rows.len());
    let mut raw_outputs = Vec::with_capacity(rows.len());
    let mut cancelled_outputs = Vec::with_capacity(rows.len());
    for (input, raw, cancelled) in rows {
        input_offsets.push(input);
        raw_outputs.push(raw);
        cancelled_outputs.push(cancelled);
    }
    OffsetStudy {
        input_offsets,
        raw_outputs,
        cancelled_outputs,
    }
}

/// The paper-default study: the LA's stage gain and device sizes, a
/// 30 dB cancellation loop.
#[must_use]
pub fn paper_default_study(n: usize, seed: u64) -> OffsetStudy {
    let sigma = vth_sigma(34e-6, cml_pdk::L_MIN);
    run_offset_study(n, 2.3, sigma, 0.5, 31.6, seed)
}

/// Parallel [`paper_default_study`]; see [`run_offset_study_par`].
#[must_use]
pub fn paper_default_study_par(n: usize, seed: u64, threads: usize) -> OffsetStudy {
    let sigma = vth_sigma(34e-6, cml_pdk::L_MIN);
    run_offset_study_par(n, 2.3, sigma, 0.5, 31.6, seed, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelgrom_scaling() {
        // 4× the area halves the mismatch.
        let small = vth_sigma(10e-6, 0.18e-6);
        let big = vth_sigma(40e-6, 0.18e-6);
        assert!((small / big - 2.0).abs() < 1e-12);
    }

    #[test]
    fn study_is_deterministic_per_seed() {
        let a = paper_default_study(100, 7);
        let b = paper_default_study(100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_study_independent_of_thread_count() {
        let reference = paper_default_study_par(500, 7, 1);
        for threads in [2, 3, 8] {
            // PartialEq on f64 vectors: bit-for-bit equality is the
            // contract, not approximate agreement.
            assert_eq!(
                reference,
                paper_default_study_par(500, 7, threads),
                "thread count {threads} changed the study"
            );
        }
    }

    #[test]
    fn parallel_study_matches_serial_statistics() {
        // Different RNG streams, same distribution: σ agree to a few %.
        let serial = paper_default_study(20_000, 11);
        let par = paper_default_study_par(20_000, 11, 4);
        let rel = (par.raw_sigma() - serial.raw_sigma()).abs() / serial.raw_sigma();
        assert!(rel < 0.05, "raw σ diverges: {rel}");
        let rel =
            (par.cancelled_sigma() - serial.cancelled_sigma()).abs() / serial.cancelled_sigma();
        assert!(rel < 0.05, "cancelled σ diverges: {rel}");
    }

    #[test]
    fn offsets_amplified_without_cancel() {
        let s = paper_default_study(2000, 1);
        // Raw output offset σ far exceeds the input-referred σ.
        assert!(s.raw_sigma() > 10.0 * s.input_sigma());
        // A visible fraction of raw samples smear the eye.
        assert!(s.raw_failure_rate(0.5) > 0.0001 || s.raw_sigma() > 0.02);
    }

    #[test]
    fn cancellation_cuts_offset_by_loop_gain() {
        let s = paper_default_study(2000, 2);
        let improvement = s.raw_sigma() / s.cancelled_sigma();
        assert!(
            (improvement - 32.6).abs() < 1.0,
            "improvement = {improvement}, expected 1 + loop gain"
        );
    }

    #[test]
    fn clamp_limits_raw_output() {
        let s = run_offset_study(500, 4.0, 20e-3, 0.5, 10.0, 3);
        for &o in &s.raw_outputs {
            assert!(o.abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = paper_default_study(0, 0);
    }
}
