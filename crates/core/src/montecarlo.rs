//! Monte-Carlo device-mismatch study (the §III.C motivation).
//!
//! "Due to the process variation, the DC offset of the differential
//! amplifier may become large enough to smear the differential output
//! signal … after three stages of amplification." This module samples
//! random threshold-voltage mismatch (Pelgrom scaling: `σ(ΔV_TH) =
//! A_VT / √(W·L)`) on the limiting amplifier's input pairs, propagates
//! the offsets through the gain chain, and quantifies what the
//! offset-cancellation loop buys.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pelgrom threshold-mismatch coefficient for a 0.18 µm process,
/// V·m (≈ 5 mV·µm).
pub const A_VT: f64 = 5e-9;

/// Smallest gate area [`vth_sigma`] will divide by, m² — (1 nm)². The
/// release-build clamp for degenerate `W`/`L` inputs; see [`vth_sigma`].
pub const MIN_GATE_AREA: f64 = 1e-18;

/// A non-positive (or non-finite) gate dimension was passed to
/// [`try_vth_sigma`] — the Pelgrom model is only defined for a real,
/// positive gate area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateAreaError {
    /// The offending gate width, m.
    pub w: f64,
    /// The offending gate length, m.
    pub l: f64,
}

impl std::fmt::Display for GateAreaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vth_sigma needs finite positive gate dimensions, got W = {}, L = {}",
            self.w, self.l
        )
    }
}

impl std::error::Error for GateAreaError {}

/// σ of the threshold mismatch of one differential pair with the given
/// gate area per device (m²): `A_VT / √(W·L)`, in volts. Fallible
/// variant of [`vth_sigma`]: rejects non-finite or non-positive
/// dimensions with a typed error instead of silently producing
/// `NaN`/`inf`.
///
/// # Errors
///
/// [`GateAreaError`] when `w` or `l` is not a finite positive number.
pub fn try_vth_sigma(w: f64, l: f64) -> Result<f64, GateAreaError> {
    if w.is_finite() && l.is_finite() && w > 0.0 && l > 0.0 {
        Ok(A_VT / (w * l).sqrt())
    } else {
        Err(GateAreaError { w, l })
    }
}

/// σ of the threshold mismatch of one differential pair with the given
/// gate area per device (m²): `A_VT / √(W·L)`, in volts.
///
/// Non-positive or non-finite dimensions are a caller bug: debug builds
/// panic on them, release builds clamp the gate area to
/// [`MIN_GATE_AREA`] so the result is a huge-but-finite σ rather than a
/// silent `NaN`/`inf` poisoning a million-trial yield sweep. Use
/// [`try_vth_sigma`] when the dimensions come from untrusted input.
///
/// ```
/// let sigma = cml_core::montecarlo::vth_sigma(34e-6, 0.18e-6);
/// assert!(sigma > 1e-3 && sigma < 3e-3); // a couple of mV
/// ```
#[must_use]
pub fn vth_sigma(w: f64, l: f64) -> f64 {
    debug_assert!(
        w.is_finite() && l.is_finite() && w > 0.0 && l > 0.0,
        "vth_sigma needs finite positive gate dimensions, got W = {w}, L = {l}"
    );
    // NaN·max picks the clamp; negative or zero areas clamp too.
    A_VT / (w * l).max(MIN_GATE_AREA).sqrt()
}

/// Result of one Monte-Carlo offset run.
#[derive(Debug, Clone, PartialEq)]
pub struct OffsetStudy {
    /// Input-referred offset samples, volts.
    pub input_offsets: Vec<f64>,
    /// Output offsets without cancellation, volts.
    pub raw_outputs: Vec<f64>,
    /// Output offsets with the cancellation loop, volts.
    pub cancelled_outputs: Vec<f64>,
}

impl OffsetStudy {
    /// σ of the input-referred offset.
    #[must_use]
    pub fn input_sigma(&self) -> f64 {
        cml_numeric::stats::std_dev(&self.input_offsets).unwrap_or(0.0)
    }

    /// σ of the raw (uncancelled) output offset.
    #[must_use]
    pub fn raw_sigma(&self) -> f64 {
        cml_numeric::stats::std_dev(&self.raw_outputs).unwrap_or(0.0)
    }

    /// σ of the cancelled output offset.
    #[must_use]
    pub fn cancelled_sigma(&self) -> f64 {
        cml_numeric::stats::std_dev(&self.cancelled_outputs).unwrap_or(0.0)
    }

    /// Fraction of raw samples whose output offset exceeds half the
    /// output swing — the "smeared eye" failures §III.C warns about.
    #[must_use]
    pub fn raw_failure_rate(&self, swing: f64) -> f64 {
        let n = self.raw_outputs.len().max(1);
        self.raw_outputs
            .iter()
            .filter(|o| o.abs() > swing / 2.0)
            .count() as f64
            / n as f64
    }
}

/// Runs the offset study: `n` Monte-Carlo samples of a four-stage chain
/// with per-stage gain `stage_gain`, per-stage input-pair mismatch
/// `sigma_vth`, output clamped to ±`swing/2`, and a cancellation loop of
/// the given DC loop gain.
///
/// The model: each stage adds its own offset, then amplifies; the
/// cancellation loop divides the total output offset by `1 + loop_gain`.
///
/// # Panics
///
/// Panics if `n == 0` or parameters are non-positive.
#[must_use]
pub fn run_offset_study(
    n: usize,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
    seed: u64,
) -> OffsetStudy {
    assert!(n > 0, "need at least one sample");
    assert!(
        stage_gain > 0.0 && sigma_vth > 0.0 && swing > 0.0 && loop_gain >= 0.0,
        "parameters must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<(f64, f64, f64)> = (0..n)
        .map(|_| trial(&mut rng, stage_gain, sigma_vth, swing, loop_gain))
        .collect();
    collect_study(rows)
}

/// Parallel variant of [`run_offset_study`]: the trials are fanned out
/// over `threads` worker threads via [`cml_runner::par_map`].
///
/// Each trial draws from its own RNG stream (seeded by
/// [`cml_runner::point_seed`] from the study seed and trial index), so
/// the result is fully determined by `(parameters, seed)` — independent
/// of the thread count and of scheduling — but is a *different* (equally
/// valid) sample set than the sequential-stream [`run_offset_study`].
///
/// # Panics
///
/// Panics if `n == 0` or parameters are non-positive.
#[must_use]
pub fn run_offset_study_par(
    n: usize,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
    seed: u64,
    threads: usize,
) -> OffsetStudy {
    assert!(n > 0, "need at least one sample");
    assert!(
        stage_gain > 0.0 && sigma_vth > 0.0 && swing > 0.0 && loop_gain >= 0.0,
        "parameters must be positive"
    );
    let trials: Vec<usize> = (0..n).collect();
    let rows = cml_runner::par_map(threads, &trials, |i, _| {
        let mut rng = StdRng::seed_from_u64(cml_runner::point_seed(seed, i));
        trial(&mut rng, stage_gain, sigma_vth, swing, loop_gain)
    });
    collect_study(rows)
}

/// One Box-Muller gaussian draw with the given σ. Shared by every
/// sampling path (sequential, parallel, batched, and the `yield_est`
/// importance sampler) so they all consume the RNG identically.
pub(crate) fn gauss(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The four independent per-stage pair offsets of one trial, drawn in
/// stage order.
pub(crate) fn stage_offsets(rng: &mut StdRng, sigma: f64) -> [f64; 4] {
    [
        gauss(rng, sigma),
        gauss(rng, sigma),
        gauss(rng, sigma),
        gauss(rng, sigma),
    ]
}

/// Propagates one trial's stage offsets through the clamped gain chain:
/// `o_out = ((((o1)·A + o2)·A + o3)·A + o4)·A`, clamped to ±swing/2
/// after every stage. Scalar reference for [`chain_raw_packed`].
pub(crate) fn chain_raw(offsets: &[f64; 4], stage_gain: f64, swing: f64) -> f64 {
    let mut v = 0.0;
    for &o in offsets {
        v = (v + o) * stage_gain;
        v = v.clamp(-swing / 2.0, swing / 2.0);
    }
    v
}

/// Lane width of the packed gain-chain kernel.
pub(crate) const PACK: usize = 8;

/// [`chain_raw`] over many trials at once, eight to an [`F64s`] lane
/// group. Every lane performs exactly the same `f64` operation sequence
/// as the scalar chain, so the results are bit-identical to calling
/// [`chain_raw`] per trial — the structure-of-arrays layout is purely a
/// throughput lever (one add/mul/clamp instruction stream drives eight
/// trials).
pub(crate) fn chain_raw_packed(offsets: &[[f64; 4]], stage_gain: f64, swing: f64) -> Vec<f64> {
    use cml_numeric::lanes::F64s;
    let gain = F64s::<PACK>::new([stage_gain; PACK]);
    let mut out = Vec::with_capacity(offsets.len());
    for group in offsets.chunks(PACK) {
        let mut v = F64s::<PACK>::default();
        for stage in 0..4 {
            // Unused tail lanes propagate zeros — harmless, discarded.
            let o = F64s::<PACK>::from_fn(|lane| group.get(lane).map_or(0.0, |t| t[stage]));
            v = (v + o) * gain;
            v = v.clamp(-swing / 2.0, swing / 2.0);
        }
        out.extend_from_slice(&v.to_array()[..group.len()]);
    }
    out
}

/// One Monte-Carlo trial: sample four per-stage pair offsets and
/// propagate them through the clamped gain chain. Returns
/// `(input_referred, raw_output, cancelled_output)`.
fn trial(
    rng: &mut StdRng,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
) -> (f64, f64, f64) {
    let offsets = stage_offsets(rng, sigma_vth);
    let v = chain_raw(&offsets, stage_gain, swing);
    // Input-referred: total output offset divided by the total gain.
    (v / stage_gain.powi(4), v, v / (1.0 + loop_gain))
}

/// Batched variant of [`run_offset_study_par`]: the same per-trial RNG
/// streams and the same chain arithmetic, but the gain-chain propagation
/// runs eight trials per instruction through the lane-packed kernel.
///
/// The result is **bit-identical** to [`run_offset_study_par`] with the
/// same `(parameters, seed)` for any thread count — the batch layout
/// changes how the work is scheduled, never what is computed.
///
/// # Panics
///
/// Panics if `n == 0` or parameters are non-positive.
#[must_use]
pub fn run_offset_study_batched(
    n: usize,
    stage_gain: f64,
    sigma_vth: f64,
    swing: f64,
    loop_gain: f64,
    seed: u64,
    threads: usize,
) -> OffsetStudy {
    assert!(n > 0, "need at least one sample");
    assert!(
        stage_gain > 0.0 && sigma_vth > 0.0 && swing > 0.0 && loop_gain >= 0.0,
        "parameters must be positive"
    );
    let starts: Vec<usize> = (0..n).step_by(PACK).collect();
    let groups = cml_runner::par_map(threads, &starts, |_, &start| {
        let len = PACK.min(n - start);
        let offs: Vec<[f64; 4]> = (0..len)
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(cml_runner::point_seed(seed, start + t));
                stage_offsets(&mut rng, sigma_vth)
            })
            .collect();
        let total_gain = stage_gain.powi(4);
        chain_raw_packed(&offs, stage_gain, swing)
            .into_iter()
            .map(|v| (v / total_gain, v, v / (1.0 + loop_gain)))
            .collect::<Vec<_>>()
    });
    collect_study(groups.into_iter().flatten().collect())
}

fn collect_study(rows: Vec<(f64, f64, f64)>) -> OffsetStudy {
    let mut input_offsets = Vec::with_capacity(rows.len());
    let mut raw_outputs = Vec::with_capacity(rows.len());
    let mut cancelled_outputs = Vec::with_capacity(rows.len());
    for (input, raw, cancelled) in rows {
        input_offsets.push(input);
        raw_outputs.push(raw);
        cancelled_outputs.push(cancelled);
    }
    OffsetStudy {
        input_offsets,
        raw_outputs,
        cancelled_outputs,
    }
}

/// The paper-default study: the LA's stage gain and device sizes, a
/// 30 dB cancellation loop.
#[must_use]
pub fn paper_default_study(n: usize, seed: u64) -> OffsetStudy {
    let sigma = vth_sigma(34e-6, cml_pdk::L_MIN);
    run_offset_study(n, 2.3, sigma, 0.5, 31.6, seed)
}

/// Parallel [`paper_default_study`]; see [`run_offset_study_par`].
#[must_use]
pub fn paper_default_study_par(n: usize, seed: u64, threads: usize) -> OffsetStudy {
    let sigma = vth_sigma(34e-6, cml_pdk::L_MIN);
    run_offset_study_par(n, 2.3, sigma, 0.5, 31.6, seed, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelgrom_scaling() {
        // 4× the area halves the mismatch.
        let small = vth_sigma(10e-6, 0.18e-6);
        let big = vth_sigma(40e-6, 0.18e-6);
        assert!((small / big - 2.0).abs() < 1e-12);
    }

    #[test]
    fn study_is_deterministic_per_seed() {
        let a = paper_default_study(100, 7);
        let b = paper_default_study(100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_study_independent_of_thread_count() {
        let reference = paper_default_study_par(500, 7, 1);
        for threads in [2, 3, 8] {
            // PartialEq on f64 vectors: bit-for-bit equality is the
            // contract, not approximate agreement.
            assert_eq!(
                reference,
                paper_default_study_par(500, 7, threads),
                "thread count {threads} changed the study"
            );
        }
    }

    #[test]
    fn parallel_study_matches_serial_statistics() {
        // Different RNG streams, same distribution: σ agree to a few %.
        let serial = paper_default_study(20_000, 11);
        let par = paper_default_study_par(20_000, 11, 4);
        let rel = (par.raw_sigma() - serial.raw_sigma()).abs() / serial.raw_sigma();
        assert!(rel < 0.05, "raw σ diverges: {rel}");
        let rel =
            (par.cancelled_sigma() - serial.cancelled_sigma()).abs() / serial.cancelled_sigma();
        assert!(rel < 0.05, "cancelled σ diverges: {rel}");
    }

    #[test]
    fn offsets_amplified_without_cancel() {
        let s = paper_default_study(2000, 1);
        // Raw output offset σ far exceeds the input-referred σ.
        assert!(s.raw_sigma() > 10.0 * s.input_sigma());
        // A visible fraction of raw samples smear the eye.
        assert!(s.raw_failure_rate(0.5) > 0.0001 || s.raw_sigma() > 0.02);
    }

    #[test]
    fn cancellation_cuts_offset_by_loop_gain() {
        let s = paper_default_study(2000, 2);
        let improvement = s.raw_sigma() / s.cancelled_sigma();
        assert!(
            (improvement - 32.6).abs() < 1.0,
            "improvement = {improvement}, expected 1 + loop gain"
        );
    }

    #[test]
    fn clamp_limits_raw_output() {
        let s = run_offset_study(500, 4.0, 20e-3, 0.5, 10.0, 3);
        for &o in &s.raw_outputs {
            assert!(o.abs() <= 0.25 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = paper_default_study(0, 0);
    }

    #[test]
    fn try_vth_sigma_accepts_positive_dims() {
        let ok = try_vth_sigma(34e-6, 0.18e-6).unwrap();
        assert!((ok - vth_sigma(34e-6, 0.18e-6)).abs() < 1e-18);
    }

    #[test]
    fn try_vth_sigma_rejects_degenerate_dims() {
        for (w, l) in [
            (0.0, 0.18e-6),
            (34e-6, 0.0),
            (-1e-6, 0.18e-6),
            (34e-6, -0.18e-6),
            (f64::NAN, 0.18e-6),
            (34e-6, f64::INFINITY),
        ] {
            let err = try_vth_sigma(w, l).expect_err("degenerate dims must be rejected");
            // Bitwise field comparison: PartialEq can't see NaN == NaN.
            assert_eq!(err.w.to_bits(), w.to_bits());
            assert_eq!(err.l.to_bits(), l.to_bits());
            assert!(err.to_string().contains("gate dimensions"));
        }
    }

    #[test]
    #[should_panic(expected = "finite positive gate dimensions")]
    fn vth_sigma_panics_on_zero_width_in_debug() {
        // Release builds instead clamp the area to MIN_GATE_AREA; the
        // typed-error path for untrusted inputs is `try_vth_sigma`.
        let _ = vth_sigma(0.0, 0.18e-6);
    }

    #[test]
    fn packed_chain_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(99);
        // 19 trials: two full lane groups plus a ragged tail.
        let offs: Vec<[f64; 4]> = (0..19).map(|_| stage_offsets(&mut rng, 2e-3)).collect();
        let packed = chain_raw_packed(&offs, 2.3, 0.5);
        for (o, p) in offs.iter().zip(&packed) {
            let s = chain_raw(o, 2.3, 0.5);
            assert_eq!(s.to_bits(), p.to_bits(), "lane diverged from scalar chain");
        }
    }

    #[test]
    fn batched_study_bit_identical_to_parallel_scalar() {
        // 1003 trials: not a multiple of the lane width, so the ragged
        // final group is exercised too.
        let scalar = run_offset_study_par(1003, 2.3, 2e-3, 0.5, 31.6, 42, 3);
        for threads in [1, 2, 8] {
            let batched = run_offset_study_batched(1003, 2.3, 2e-3, 0.5, 31.6, 42, threads);
            // PartialEq on the f64 vectors: bit-for-bit is the contract.
            assert_eq!(scalar, batched, "lane packing changed the study");
        }
    }
}
