//! Minimal little-endian binary codec for cache payloads.
//!
//! Deliberately tiny and dependency-free: fixed-width little-endian
//! integers, `f64` bit patterns, and length-prefixed vectors. Every
//! reader method is fallible — a truncated or corrupt payload surfaces
//! as `None` at the exact field that went bad, and the disk tier turns
//! that into a validation failure plus cold fallback, never garbage.

/// Append-only payload writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Fresh writer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked payload reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| {
            let mut b = [0u8; 4];
            b.copy_from_slice(s);
            u32::from_le_bytes(b)
        })
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            let mut b = [0u8; 8];
            b.copy_from_slice(s);
            u64::from_le_bytes(b)
        })
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Option<usize> {
        self.get_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Reads a length-prefixed `usize` vector. The length is sanity
    /// bounded by the remaining bytes, so a corrupt length cannot
    /// trigger a huge allocation.
    pub fn get_usize_vec(&mut self) -> Option<Vec<usize>> {
        let n = self.get_usize()?;
        if n > self.remaining() / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_usize()?);
        }
        Some(out)
    }

    /// Reads a length-prefixed `f64` vector, with the same allocation
    /// bound as [`get_usize_vec`](Self::get_usize_vec).
    pub fn get_f64_vec(&mut self) -> Option<Vec<f64>> {
        let n = self.get_usize()?;
        if n > self.remaining() / 8 {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Some(out)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader consumed the payload exactly (trailing bytes
    /// in a cache file are as suspicious as missing ones).
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
#[allow(clippy::expect_used, clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_usize_slice(&[1, 2, 3]);
        w.put_f64_slice(&[f64::NAN, 1.5e-300]);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), Some(7));
        assert_eq!(r.get_u32(), Some(0xdead_beef));
        assert_eq!(r.get_u64(), Some(u64::MAX - 3));
        assert_eq!(r.get_usize(), Some(42));
        assert_eq!(r.get_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.get_usize_vec(), Some(vec![1, 2, 3]));
        let fs = r.get_f64_vec().expect("f64 vec");
        assert_eq!(fs.len(), 2);
        assert!(fs[0].is_nan());
        assert_eq!(fs[1], 1.5e-300);
        assert!(r.exhausted());
    }

    #[test]
    fn truncation_fails_cleanly() {
        let mut w = ByteWriter::new();
        w.put_u64(12345);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.get_u64(), None);
    }

    #[test]
    fn corrupt_length_cannot_allocate_huge() {
        let mut w = ByteWriter::new();
        w.put_usize(usize::MAX / 2); // insane length prefix, no elements
        let bytes = w.finish();
        assert_eq!(ByteReader::new(&bytes).get_usize_vec(), None);
        assert_eq!(ByteReader::new(&bytes).get_f64_vec(), None);
    }
}
