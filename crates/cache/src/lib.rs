//! Two-tier content-addressed artifact store for topology-keyed solver
//! artifacts.
//!
//! Every expensive pre-numeric artifact in the simulator — recorded
//! stamp patterns, symbolic Gilbert–Peierls analyses, frozen AC pivot
//! orders, lint verdicts, analysis warm-start vectors — is a pure
//! function of circuit structure (and, for value-dependent artifacts,
//! of a content digest). This crate stores them twice:
//!
//! * **Tier 1** — a process-wide in-memory interner ([`intern`]):
//!   a sharded `RwLock` map from [`Key`] to `Arc`-shared artifacts.
//!   Compute-under-write-lock guarantees exactly one cold derivation
//!   per unique key process-wide, which is what keeps the cache
//!   hit/miss telemetry thread-count-invariant.
//! * **Tier 2** — an opt-in on-disk store ([`disk`]): one versioned,
//!   checksummed binary file per entry under `CML_CACHE_DIR`, written
//!   atomically (tmp + rename) with size-capped LRU eviction.
//!
//! The store is *advisory by construction*: consumers re-validate every
//! loaded artifact against the live circuit (dimensions, pattern sanity,
//! pivot-order invariants) and fall back to cold derivation on any
//! mismatch, so a stale or corrupt entry can never change results.
//!
//! Configuration comes from the environment on first touch and can be
//! overridden programmatically (tests and the `cml-lint cache` CLI):
//! `CML_CACHE=off|0|false|no` disables both tiers, `CML_CACHE_DIR`
//! enables the disk tier, `CML_CACHE_MAX_MB` caps it (default 256 MB).

#![forbid(unsafe_code)]

pub mod codec;
pub mod disk;
pub mod intern;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

// ---------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------

/// What family of artifact a [`Key`] names. The kind is part of the key
/// (two artifact families derived from the same topology hash must not
/// collide) and of the on-disk header (a file of the wrong kind fails
/// validation instead of deserializing as garbage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ArtifactKind {
    /// DC-mode Jacobian stamp pattern + symbolic LU (topology-keyed).
    DcPattern = 1,
    /// Transient-mode Jacobian stamp pattern + symbolic LU
    /// (topology-keyed; reactive companion stamps widen the pattern).
    TranPattern = 2,
    /// AC `G + jωC` stamp pattern + symbolic LU (topology-keyed).
    AcPattern = 3,
    /// Numerically factored AC reference state with its frozen pivot
    /// order (content-keyed by the assembled matrix bits).
    AcFactor = 4,
    /// A passing lint precheck verdict (topology-keyed; every blocking
    /// lint code is structural).
    LintVerdict = 5,
    /// Interval-analysis Newton warm-start vector (content-keyed).
    WarmStart = 6,
}

impl ArtifactKind {
    /// Every kind, for CLI iteration.
    pub const ALL: [ArtifactKind; 6] = [
        ArtifactKind::DcPattern,
        ArtifactKind::TranPattern,
        ArtifactKind::AcPattern,
        ArtifactKind::AcFactor,
        ArtifactKind::LintVerdict,
        ArtifactKind::WarmStart,
    ];

    /// Stable numeric tag (the on-disk header byte).
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`as_u8`](Self::as_u8).
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_u8() == v)
    }

    /// Stable short label (the on-disk file-name prefix).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::DcPattern => "dcpat",
            ArtifactKind::TranPattern => "trpat",
            ArtifactKind::AcPattern => "acpat",
            ArtifactKind::AcFactor => "acfac",
            ArtifactKind::LintVerdict => "lint",
            ArtifactKind::WarmStart => "warm",
        }
    }
}

/// A cache key: artifact kind plus a 64-bit content/topology digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    /// Artifact family.
    pub kind: ArtifactKind,
    /// FNV-1a digest of whatever identifies the artifact (topology hash,
    /// optionally folded with dimensions / value bits — the consumer
    /// decides, this crate only routes).
    pub hash: u64,
}

impl Key {
    /// Builds a key.
    #[must_use]
    pub fn new(kind: ArtifactKind, hash: u64) -> Self {
        Key { kind, hash }
    }
}

// ---------------------------------------------------------------------
// FNV-1a hashing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher: deterministic across processes and
/// platforms (unlike `DefaultHasher`, whose seed is randomized), which
/// is what makes the digests usable as on-disk cache identities.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs an `f64` by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string (bytes plus a length separator so `"ab","c"`
    /// and `"a","bc"` digest differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64 digest of a byte slice.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Default disk-tier size cap when `CML_CACHE_MAX_MB` is unset.
pub const DEFAULT_MAX_DISK_MB: u64 = 256;

/// Runtime cache configuration (a mutable snapshot of the env gates, so
/// tests and the CLI can reconfigure without process-global env races).
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Master switch for both tiers (`CML_CACHE=off` clears it).
    pub enabled: bool,
    /// Disk-tier directory (`CML_CACHE_DIR`); `None` keeps the cache
    /// memory-only.
    pub disk_dir: Option<PathBuf>,
    /// Disk-tier size cap in bytes (`CML_CACHE_MAX_MB`).
    pub max_disk_bytes: u64,
}

fn config_cell() -> &'static RwLock<CacheConfig> {
    static CELL: OnceLock<RwLock<CacheConfig>> = OnceLock::new();
    CELL.get_or_init(|| {
        let enabled = !matches!(
            std::env::var("CML_CACHE")
                .map(|v| v.trim().to_ascii_lowercase())
                .as_deref(),
            Ok("off" | "0" | "false" | "no")
        );
        let disk_dir = std::env::var("CML_CACHE_DIR")
            .ok()
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .map(PathBuf::from);
        let max_mb = std::env::var("CML_CACHE_MAX_MB")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_MAX_DISK_MB);
        RwLock::new(CacheConfig {
            enabled,
            disk_dir,
            max_disk_bytes: max_mb.saturating_mul(1024 * 1024),
        })
    })
}

/// Snapshot of the current configuration.
#[must_use]
pub fn config() -> CacheConfig {
    match config_cell().read() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    }
}

/// Whether the cache (both tiers) is enabled.
#[must_use]
pub fn enabled() -> bool {
    config().enabled
}

/// Current disk-tier directory, if the disk tier is active.
#[must_use]
pub fn disk_dir() -> Option<PathBuf> {
    let c = config();
    if c.enabled {
        c.disk_dir
    } else {
        None
    }
}

fn with_config_mut(f: impl FnOnce(&mut CacheConfig)) {
    match config_cell().write() {
        Ok(mut g) => f(&mut g),
        Err(p) => f(&mut p.into_inner()),
    }
}

/// Enables or disables the cache process-wide (overrides `CML_CACHE`).
pub fn set_enabled(on: bool) {
    with_config_mut(|c| c.enabled = on);
}

/// Points the disk tier at `dir` (or disables it with `None`);
/// overrides `CML_CACHE_DIR`.
pub fn set_disk_dir(dir: Option<PathBuf>) {
    with_config_mut(|c| c.disk_dir = dir);
}

/// Overrides the disk-tier size cap in bytes.
pub fn set_max_disk_bytes(bytes: u64) {
    with_config_mut(|c| c.max_disk_bytes = bytes);
}

// ---------------------------------------------------------------------
// Global statistics (process-wide observability, *not* telemetry)
// ---------------------------------------------------------------------
//
// These atomics feed the `cml-lint cache stats` CLI and bench hit-rate
// assertions. The deterministic, thread-count-invariant accounting that
// analyses report lives in `cml-telemetry` counters at the (single
// compute per key) call sites — the two deliberately do not share
// storage, because the global atomics aggregate across *all* work in
// the process, including unrelated concurrent runs.

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static DISK_LOADS: AtomicU64 = AtomicU64::new(0);
static DISK_STORES: AtomicU64 = AtomicU64::new(0);
static VALIDATION_FAILURES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Records a tier-1 hit. Public for consumers that probe the interner
/// manually (e.g. content-keyed artifacts that bit-compare before use).
pub fn note_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}
/// Records a cold derivation (neither tier served the artifact).
pub fn note_miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn note_disk_load() {
    DISK_LOADS.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn note_disk_store() {
    DISK_STORES.fetch_add(1, Ordering::Relaxed);
}
/// Records a failed artifact validation (corrupt/stale entry rejected).
/// Public because consumers validate *deserialized* artifacts against
/// live circuit structure, which this crate cannot see.
pub fn note_validation_failure() {
    VALIDATION_FAILURES.fetch_add(1, Ordering::Relaxed);
}
pub(crate) fn note_eviction() {
    EVICTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time copy of the process-wide cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Tier-1 lookups served from the interner.
    pub hits: u64,
    /// Lookups that required a cold derivation (neither tier had it).
    pub misses: u64,
    /// Artifacts loaded and validated from the disk tier.
    pub disk_loads: u64,
    /// Artifacts written to the disk tier.
    pub disk_stores: u64,
    /// Loads rejected by validation (bad header, checksum, or semantic
    /// re-verification against the live circuit).
    pub validation_failures: u64,
    /// Entries evicted (in-memory shard cap or disk LRU cap).
    pub evictions: u64,
    /// Live entries currently interned in memory.
    pub in_memory_entries: u64,
}

impl StatsSnapshot {
    /// Tier-1 hit rate over all lookups; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the process-wide statistics.
#[must_use]
pub fn stats() -> StatsSnapshot {
    StatsSnapshot {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        disk_loads: DISK_LOADS.load(Ordering::Relaxed),
        disk_stores: DISK_STORES.load(Ordering::Relaxed),
        validation_failures: VALIDATION_FAILURES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
        in_memory_entries: intern::len() as u64,
    }
}

/// Zeroes the process-wide statistics (bench legs, tests, CLI).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    DISK_LOADS.store(0, Ordering::Relaxed);
    DISK_STORES.store(0, Ordering::Relaxed);
    VALIDATION_FAILURES.store(0, Ordering::Relaxed);
    EVICTIONS.store(0, Ordering::Relaxed);
}

/// Serializes unit tests that touch the process-global interner,
/// config, or stats (cargo runs tests of one binary concurrently).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn str_write_is_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn kind_roundtrip() {
        for k in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_u8(k.as_u8()), Some(k));
        }
        assert_eq!(ArtifactKind::from_u8(0), None);
        assert_eq!(ArtifactKind::from_u8(200), None);
    }

    #[test]
    fn config_setters_roundtrip() {
        let _g = test_guard();
        let before = config();
        set_enabled(false);
        assert!(!enabled());
        assert_eq!(disk_dir(), None, "disabled cache hides the disk dir");
        set_enabled(true);
        assert!(enabled());
        set_max_disk_bytes(1234);
        assert_eq!(config().max_disk_bytes, 1234);
        // Restore whatever the environment dictated.
        set_enabled(before.enabled);
        set_disk_dir(before.disk_dir.clone());
        set_max_disk_bytes(before.max_disk_bytes);
    }
}
