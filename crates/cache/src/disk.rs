//! Tier 2: the opt-in on-disk artifact store.
//!
//! Activated by `CML_CACHE_DIR` (or [`crate::set_disk_dir`]). Each
//! artifact lives in its own file, named `{kind}-{hash:016x}.cmlc`,
//! written with the tmp+rename idiom so a crash mid-write can never
//! leave a half-visible entry. The on-disk format is versioned and
//! checksummed; `load` re-validates every header field plus an FNV-1a
//! digest of the payload and **deletes** any file that fails, counting
//! a validation failure. Consumers additionally re-validate decoded
//! payload semantics (dimensions, pivot-order sanity) before use — a
//! stale or corrupt entry must never change results, only cost a cold
//! derivation.
//!
//! The store is size-capped (`CML_CACHE_MAX_MB`, default 256 MB) with
//! modification-time LRU eviction; successful loads touch the file's
//! mtime so hot entries survive.

use crate::{ArtifactKind, Fnv64, Key};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// File magic: "CMLC" (CML cache).
pub const MAGIC: [u8; 4] = *b"CMLC";

/// On-disk schema version. Bump on any layout change to a payload —
/// old-version files are rejected (and removed) on load, which is the
/// whole invalidation story: no migration, just cold re-derivation.
pub const VERSION: u32 = 1;

/// Fixed header size: magic + version + kind + key hash + payload len
/// + payload checksum.
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 8 + 8;

/// File extension for cache entries.
const EXT: &str = "cmlc";

fn file_name(key: Key) -> String {
    format!("{}-{:016x}.{EXT}", key.kind.label(), key.hash)
}

/// Path an entry for `key` would occupy under `dir`.
#[must_use]
pub fn entry_path(dir: &Path, key: Key) -> PathBuf {
    dir.join(file_name(key))
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    for &b in payload {
        h.write_u8(b);
    }
    h.finish()
}

fn encode_entry(key: Key, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(key.kind.as_u8());
    out.extend_from_slice(&key.hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_entry(key: Key, bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
        return None;
    }
    let u32_at = |o: usize| {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[o..o + 4]);
        u32::from_le_bytes(b)
    };
    let u64_at = |o: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[o..o + 8]);
        u64::from_le_bytes(b)
    };
    if u32_at(4) != VERSION {
        return None;
    }
    if ArtifactKind::from_u8(bytes[8]) != Some(key.kind) {
        return None;
    }
    if u64_at(9) != key.hash {
        return None;
    }
    let payload_len = usize::try_from(u64_at(17)).ok()?;
    if bytes.len() != HEADER_LEN + payload_len {
        return None;
    }
    let payload = &bytes[HEADER_LEN..];
    if u64_at(25) != checksum(payload) {
        return None;
    }
    Some(payload.to_vec())
}

/// Atomically stores `payload` for `key` under the configured cache
/// dir. A no-op (returning `false`) when no disk dir is configured or
/// any I/O step fails — disk-store failures are silent by design, the
/// cache is purely advisory.
pub fn store(key: Key, payload: &[u8]) -> bool {
    let Some(dir) = crate::disk_dir() else {
        return false;
    };
    if fs::create_dir_all(&dir).is_err() {
        return false;
    }
    let bytes = encode_entry(key, payload);
    // Unique tmp name per process so concurrent writers never clobber
    // each other's in-flight file; rename is atomic on POSIX.
    let tmp = dir.join(format!(".{}.{}.tmp", file_name(key), std::process::id()));
    let write_ok = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()
    })();
    if write_ok.is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    if fs::rename(&tmp, entry_path(&dir, key)).is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    crate::note_disk_store();
    evict_to_cap(&dir, crate::config().max_disk_bytes);
    true
}

/// Outcome of a disk probe, distinguishing "no entry" from "entry
/// rejected" — consumers count the two differently in telemetry.
#[derive(Debug)]
pub enum DiskLoad {
    /// Entry present and header/checksum-valid; decoded payload.
    Data(Vec<u8>),
    /// No entry on disk (or no disk tier configured): a plain miss.
    Absent,
    /// Entry present but corrupt; it was deleted and a validation
    /// failure counted.
    Rejected,
}

/// Loads and header-validates the payload for `key`. On any mismatch
/// (bad magic/version/kind/hash/length/checksum) the file is deleted,
/// a validation failure is counted, and [`DiskLoad::Rejected`] is
/// returned so the caller derives cold. On success the file's mtime is
/// refreshed (LRU touch) and a disk load is counted.
#[must_use]
pub fn load_detailed(key: Key) -> DiskLoad {
    let Some(dir) = crate::disk_dir() else {
        return DiskLoad::Absent;
    };
    let path = entry_path(&dir, key);
    let mut bytes = Vec::new();
    match fs::File::open(&path) {
        Ok(mut f) => {
            if f.read_to_end(&mut bytes).is_err() {
                return DiskLoad::Absent;
            }
        }
        Err(_) => return DiskLoad::Absent, // absent: a plain miss, not a failure
    }
    match decode_entry(key, &bytes) {
        Some(payload) => {
            touch(&path);
            crate::note_disk_load();
            DiskLoad::Data(payload)
        }
        None => {
            let _ = fs::remove_file(&path);
            crate::note_validation_failure();
            DiskLoad::Rejected
        }
    }
}

/// [`load_detailed`] flattened: `Some` payload on a valid entry, `None`
/// for both absent and rejected.
#[must_use]
pub fn load(key: Key) -> Option<Vec<u8>> {
    match load_detailed(key) {
        DiskLoad::Data(payload) => Some(payload),
        DiskLoad::Absent | DiskLoad::Rejected => None,
    }
}

/// Deletes the entry for `key`, if present. Used when a header-valid
/// payload fails *semantic* re-validation against the live circuit —
/// the file would otherwise fail the same way on every future load.
pub fn remove(key: Key) -> bool {
    let Some(dir) = crate::disk_dir() else {
        return false;
    };
    fs::remove_file(entry_path(&dir, key)).is_ok()
}

fn touch(path: &Path) {
    if let Ok(f) = fs::File::options().append(true).open(path) {
        let _ = f.set_modified(SystemTime::now());
    }
}

fn cache_files(dir: &Path) -> Vec<(PathBuf, u64, SystemTime)> {
    let Ok(rd) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in rd.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        out.push((path, meta.len(), mtime));
    }
    out
}

fn evict_to_cap(dir: &Path, max_bytes: u64) {
    let mut files = cache_files(dir);
    let mut total: u64 = files.iter().map(|f| f.1).sum();
    if total <= max_bytes {
        return;
    }
    // Oldest mtime first = least recently used first.
    files.sort_by_key(|f| f.2);
    for (path, len, _) in files {
        if total <= max_bytes {
            break;
        }
        if fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
            crate::note_eviction();
        }
    }
}

/// Summary of the on-disk store, for `cml-lint cache stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Configured cache directory, if any.
    pub dir: Option<PathBuf>,
    /// Number of `.cmlc` entries present.
    pub entries: usize,
    /// Total bytes across entries.
    pub total_bytes: u64,
    /// Entry count per artifact kind label.
    pub per_kind: Vec<(&'static str, usize)>,
}

/// Scans the configured cache dir (cheap: metadata only).
#[must_use]
pub fn disk_stats() -> DiskStats {
    let Some(dir) = crate::disk_dir() else {
        return DiskStats::default();
    };
    let files = cache_files(&dir);
    let mut per_kind: Vec<(&'static str, usize)> = ArtifactKind::ALL
        .iter()
        .map(|k| (k.label(), 0usize))
        .collect();
    for (path, _, _) in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        for slot in &mut per_kind {
            if name.starts_with(slot.0) {
                slot.1 += 1;
                break;
            }
        }
    }
    DiskStats {
        entries: files.len(),
        total_bytes: files.iter().map(|f| f.1).sum(),
        per_kind,
        dir: Some(dir),
    }
}

/// Removes every cache entry in the configured dir. Returns the number
/// of files removed. Only `.cmlc` files are touched — a misconfigured
/// `CML_CACHE_DIR` pointing at real data loses nothing else.
pub fn clear() -> usize {
    let Some(dir) = crate::disk_dir() else {
        return 0;
    };
    let mut removed = 0;
    for (path, _, _) in cache_files(&dir) {
        if fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Outcome of a full-store integrity scan, for `cml-lint cache verify`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries whose header + checksum validated.
    pub ok: usize,
    /// Corrupt entries found (and removed).
    pub corrupt: usize,
    /// File names of the corrupt entries.
    pub corrupt_files: Vec<String>,
}

/// Re-validates every entry in the configured dir, deleting any that
/// fail (same policy as `load`). Entries whose file name doesn't parse
/// back to a key are treated as corrupt.
#[must_use]
pub fn verify() -> VerifyReport {
    let Some(dir) = crate::disk_dir() else {
        return VerifyReport::default();
    };
    let mut report = VerifyReport::default();
    for (path, _, _) in cache_files(&dir) {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let valid = key_from_name(&name).is_some_and(|key| {
            fs::read(&path)
                .ok()
                .and_then(|bytes| decode_entry(key, &bytes))
                .is_some()
        });
        if valid {
            report.ok += 1;
        } else {
            let _ = fs::remove_file(&path);
            crate::note_validation_failure();
            report.corrupt += 1;
            report.corrupt_files.push(name);
        }
    }
    report.corrupt_files.sort();
    report
}

fn key_from_name(name: &str) -> Option<Key> {
    let stem = name.strip_suffix(&format!(".{EXT}"))?;
    let (label, hex) = stem.rsplit_once('-')?;
    let kind = ArtifactKind::ALL.iter().find(|k| k.label() == label)?;
    let hash = u64::from_str_radix(hex, 16).ok()?;
    Some(Key::new(*kind, hash))
}

#[cfg(test)]
#[allow(clippy::expect_used, clippy::unwrap_used)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cml-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn with_dir<R>(tag: &str, f: impl FnOnce(&Path) -> R) -> R {
        let _g = crate::test_guard();
        let dir = temp_dir(tag);
        crate::set_enabled(true);
        crate::set_disk_dir(Some(dir.clone()));
        crate::set_max_disk_bytes(crate::DEFAULT_MAX_DISK_MB * 1024 * 1024);
        let r = f(&dir);
        crate::set_disk_dir(None);
        let _ = fs::remove_dir_all(&dir);
        r
    }

    #[test]
    fn store_load_roundtrip() {
        with_dir("roundtrip", |_| {
            let key = Key::new(ArtifactKind::DcPattern, 0xabc0_0001);
            let payload = vec![1u8, 2, 3, 255, 0, 42];
            assert!(store(key, &payload));
            assert_eq!(load(key), Some(payload));
        });
    }

    #[test]
    fn absent_entry_is_plain_miss() {
        with_dir("absent", |_| {
            let before = crate::stats().validation_failures;
            assert_eq!(load(Key::new(ArtifactKind::AcPattern, 0xabc0_0002)), None);
            assert_eq!(crate::stats().validation_failures, before);
        });
    }

    #[test]
    fn truncated_file_is_rejected_and_removed() {
        with_dir("trunc", |dir| {
            let key = Key::new(ArtifactKind::TranPattern, 0xabc0_0003);
            assert!(store(key, &[9u8; 64]));
            let path = entry_path(dir, key);
            let bytes = fs::read(&path).expect("read back");
            fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
            let before = crate::stats().validation_failures;
            assert_eq!(load(key), None);
            assert_eq!(crate::stats().validation_failures, before + 1);
            assert!(!path.exists(), "corrupt file must be deleted");
        });
    }

    #[test]
    fn bitflip_fails_checksum() {
        with_dir("bitflip", |dir| {
            let key = Key::new(ArtifactKind::AcFactor, 0xabc0_0004);
            assert!(store(key, &[7u8; 128]));
            let path = entry_path(dir, key);
            let mut bytes = fs::read(&path).expect("read back");
            let last = bytes.len() - 1;
            bytes[last] ^= 0x10; // flip one payload bit
            fs::write(&path, &bytes).expect("rewrite");
            assert_eq!(load(key), None);
            assert!(!path.exists());
        });
    }

    #[test]
    fn wrong_version_is_rejected() {
        with_dir("version", |dir| {
            let key = Key::new(ArtifactKind::LintVerdict, 0xabc0_0005);
            assert!(store(key, &[1u8; 16]));
            let path = entry_path(dir, key);
            let mut bytes = fs::read(&path).expect("read back");
            bytes[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
            fs::write(&path, &bytes).expect("rewrite");
            assert_eq!(load(key), None);
        });
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        with_dir("lru", |dir| {
            // Entries are ~64 bytes payload + 33 header; cap at ~3 files.
            crate::set_max_disk_bytes(3 * (HEADER_LEN as u64 + 64));
            for i in 0..6u64 {
                let key = Key::new(ArtifactKind::DcPattern, 0xe000 + i);
                assert!(store(key, &[i as u8; 64]));
                // Distinct mtimes even on coarse filesystem clocks.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            let files = cache_files(dir);
            assert!(files.len() <= 3, "cap must hold, got {}", files.len());
            // The newest entry always survives.
            assert!(entry_path(dir, Key::new(ArtifactKind::DcPattern, 0xe005)).exists());
        });
    }

    #[test]
    fn verify_reports_and_removes_corrupt() {
        with_dir("verify", |dir| {
            let good = Key::new(ArtifactKind::DcPattern, 0xabc0_0006);
            let bad = Key::new(ArtifactKind::AcPattern, 0xabc0_0007);
            assert!(store(good, &[1u8; 32]));
            assert!(store(bad, &[2u8; 32]));
            let bad_path = entry_path(dir, bad);
            let mut bytes = fs::read(&bad_path).expect("read back");
            bytes[HEADER_LEN] ^= 0xff;
            fs::write(&bad_path, &bytes).expect("rewrite");
            let report = verify();
            assert_eq!(report.ok, 1);
            assert_eq!(report.corrupt, 1);
            assert!(!bad_path.exists());
            assert!(entry_path(dir, good).exists());
        });
    }

    #[test]
    fn clear_removes_only_cmlc_files() {
        with_dir("clear", |dir| {
            assert!(store(
                Key::new(ArtifactKind::WarmStart, 0xabc0_0008),
                &[3u8; 8]
            ));
            let bystander = dir.join("notes.txt");
            fs::write(&bystander, b"keep me").expect("write bystander");
            assert_eq!(clear(), 1);
            assert!(bystander.exists());
            assert_eq!(disk_stats().entries, 0);
        });
    }

    #[test]
    fn stats_count_per_kind() {
        with_dir("stats", |_| {
            assert!(store(Key::new(ArtifactKind::DcPattern, 1), &[0u8; 4]));
            assert!(store(Key::new(ArtifactKind::DcPattern, 2), &[0u8; 4]));
            assert!(store(Key::new(ArtifactKind::LintVerdict, 3), &[0u8; 4]));
            let stats = disk_stats();
            assert_eq!(stats.entries, 3);
            let dc = stats
                .per_kind
                .iter()
                .find(|(label, _)| *label == "dcpat")
                .expect("dcpat bucket");
            assert_eq!(dc.1, 2);
        });
    }

    #[test]
    fn key_from_name_roundtrip() {
        for kind in ArtifactKind::ALL {
            let key = Key::new(kind, 0x0123_4567_89ab_cdef);
            assert_eq!(key_from_name(&file_name(key)), Some(key));
        }
        assert_eq!(key_from_name("garbage.cmlc"), None);
        assert_eq!(key_from_name("dcpat-zzzz.cmlc"), None);
    }
}
