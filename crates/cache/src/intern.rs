//! Tier 1: the process-wide in-memory artifact interner.
//!
//! A sharded `RwLock` map from [`Key`] to type-erased `Arc` artifacts.
//! The load-bearing property is **compute-under-write-lock**: a miss
//! takes the shard's write lock, re-probes (a racer that lost the lock
//! race finds the winner's entry and counts a hit), and only then runs
//! the cold derivation. Per unique key there is therefore exactly one
//! cold derivation process-wide, no matter how many workers ask — which
//! is what keeps cache hit/miss *totals* thread-count-invariant even
//! when the individual hit lands on a different worker each run.
//!
//! Shards are FIFO-capped: interned artifacts are cheap to rebuild and
//! the cap only exists to bound memory on pathological workloads that
//! stream unbounded distinct topologies through one process.

use crate::Key;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock, RwLock, RwLockWriteGuard};

/// Shard count (power of two; indexed by the key hash's low bits).
const SHARDS: usize = 16;

/// Per-shard entry cap. 16 shards × 256 entries bounds the interner at
/// a few thousand artifacts — far above any real workload's working set
/// (one entry per distinct topology × artifact kind).
const SHARD_CAP: usize = 256;

type Erased = Arc<dyn Any + Send + Sync>;

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Erased>,
    /// Insertion order, for deterministic FIFO eviction at the cap.
    order: VecDeque<Key>,
}

fn shards() -> &'static [RwLock<Shard>; SHARDS] {
    static CELL: OnceLock<[RwLock<Shard>; SHARDS]> = OnceLock::new();
    CELL.get_or_init(|| std::array::from_fn(|_| RwLock::new(Shard::default())))
}

fn shard_for(key: Key) -> &'static RwLock<Shard> {
    // Mix the kind in so same-hash keys of different kinds spread out.
    let idx = (key.hash ^ (u64::from(key.kind.as_u8()) << 56)) as usize % SHARDS;
    &shards()[idx]
}

fn read_probe<T: Send + Sync + 'static>(shard: &RwLock<Shard>, key: Key) -> Option<Arc<T>> {
    let guard = match shard.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    guard
        .map
        .get(&key)
        .and_then(|e| Arc::clone(e).downcast::<T>().ok())
}

fn write_guard(shard: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    match shard.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn insert_capped(guard: &mut Shard, key: Key, value: Erased) {
    if guard.map.len() >= SHARD_CAP {
        // FIFO eviction: deterministic (insertion order), and safe by
        // the advisory-cache contract — an evicted artifact is simply
        // re-derived cold on next use.
        while let Some(old) = guard.order.pop_front() {
            if guard.map.remove(&old).is_some() {
                crate::note_eviction();
                break;
            }
        }
    }
    if guard.map.insert(key, value).is_none() {
        guard.order.push_back(key);
    }
}

/// Probes tier 1 for `key` without computing anything. Counts a global
/// hit on success; counts nothing on absence (the caller decides what a
/// miss means — it may still find the artifact on disk).
pub fn lookup<T: Send + Sync + 'static>(key: Key) -> Option<Arc<T>> {
    let found = read_probe::<T>(shard_for(key), key);
    if found.is_some() {
        crate::note_hit();
    }
    found
}

/// Interns `value` under `key`, replacing any previous entry.
pub fn insert<T: Send + Sync + 'static>(key: Key, value: Arc<T>) {
    let shard = shard_for(key);
    let mut guard = write_guard(shard);
    insert_capped(&mut guard, key, value);
}

/// The interner's core: returns the artifact for `key`, running `make`
/// **at most once process-wide per key** (while holding the shard's
/// write lock) when no entry exists. Returns the artifact and whether
/// it was served from cache (`true`) or computed by this call (`false`).
/// `make` returning `None` (derivation failed) is propagated and
/// nothing is interned, so failures are retried by later callers.
pub fn get_or_insert_with<T, F>(key: Key, make: F) -> Option<(Arc<T>, bool)>
where
    T: Send + Sync + 'static,
    F: FnOnce() -> Option<Arc<T>>,
{
    let shard = shard_for(key);
    if let Some(found) = read_probe::<T>(shard, key) {
        crate::note_hit();
        return Some((found, true));
    }
    let mut guard = write_guard(shard);
    // Re-probe under the write lock: a racer may have filled the entry
    // between our read probe and the lock acquisition.
    if let Some(found) = guard
        .map
        .get(&key)
        .and_then(|e| Arc::clone(e).downcast::<T>().ok())
    {
        crate::note_hit();
        return Some((found, true));
    }
    crate::note_miss();
    let value = make()?;
    insert_capped(&mut guard, key, Arc::clone(&value) as Erased);
    Some((value, false))
}

/// Total interned entries across all shards.
#[must_use]
pub fn len() -> usize {
    shards()
        .iter()
        .map(|s| match s.read() {
            Ok(g) => g.map.len(),
            Err(p) => p.into_inner().map.len(),
        })
        .sum()
}

/// Empties tier 1 (simulates a process restart; used by the disk-tier
/// equivalence tests and the `cml-lint cache clear` CLI).
pub fn clear_in_memory() {
    for s in shards() {
        let mut guard = write_guard(s);
        guard.map.clear();
        guard.order.clear();
    }
}

#[cfg(test)]
#[allow(clippy::expect_used, clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::ArtifactKind;

    fn k(h: u64) -> Key {
        Key::new(ArtifactKind::DcPattern, h)
    }

    #[test]
    fn miss_then_hit() {
        let _g = crate::test_guard();
        clear_in_memory();
        let mut computed = 0;
        let (v, hit) = get_or_insert_with(k(0xdead_0001), || {
            computed += 1;
            Some(Arc::new(41_u64))
        })
        .expect("computed");
        assert!(!hit);
        assert_eq!(*v, 41);
        assert_eq!(computed, 1);
        let (v2, hit2) = get_or_insert_with(k(0xdead_0001), || -> Option<Arc<u64>> {
            panic!("must not recompute on a hit")
        })
        .expect("cached");
        assert!(hit2);
        assert_eq!(*v2, 41);
        assert_eq!(lookup::<u64>(k(0xdead_0001)).as_deref(), Some(&41));
    }

    #[test]
    fn failed_derivations_are_not_interned() {
        let _g = crate::test_guard();
        clear_in_memory();
        assert!(get_or_insert_with::<u64, _>(k(0xdead_0002), || None).is_none());
        // The failure was not cached: the next caller retries.
        let (v, hit) =
            get_or_insert_with(k(0xdead_0002), || Some(Arc::new(7_u64))).expect("retry works");
        assert!(!hit);
        assert_eq!(*v, 7);
    }

    #[test]
    fn distinct_kinds_do_not_collide() {
        let _g = crate::test_guard();
        clear_in_memory();
        insert(Key::new(ArtifactKind::DcPattern, 99), Arc::new(1_u64));
        insert(Key::new(ArtifactKind::TranPattern, 99), Arc::new(2_u64));
        assert_eq!(
            lookup::<u64>(Key::new(ArtifactKind::DcPattern, 99)).as_deref(),
            Some(&1)
        );
        assert_eq!(
            lookup::<u64>(Key::new(ArtifactKind::TranPattern, 99)).as_deref(),
            Some(&2)
        );
    }

    #[test]
    fn shard_cap_evicts_fifo() {
        let _g = crate::test_guard();
        clear_in_memory();
        // Fill one shard far past its cap; len() must stay bounded.
        for i in 0..(SHARD_CAP as u64 * SHARDS as u64 * 2) {
            insert(k(i), Arc::new(i));
        }
        assert!(len() <= SHARD_CAP * SHARDS);
        clear_in_memory();
        assert_eq!(len(), 0);
    }

    #[test]
    fn concurrent_get_or_insert_computes_once() {
        let _g = crate::test_guard();
        clear_in_memory();
        let computed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let key = k(0xdead_0003);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let computed = Arc::clone(&computed);
                std::thread::spawn(move || {
                    let (v, _hit) = get_or_insert_with(key, || {
                        computed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        Some(Arc::new(123_u64))
                    })
                    .expect("value");
                    *v
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("thread"), 123);
        }
        assert_eq!(
            computed.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "exactly one cold derivation process-wide"
        );
    }
}
