//! End-to-end bit-error measurement: PRBS-7 through the full link into a
//! bang-bang CDR — the system-level payoff of every circuit in the paper
//! (Fig. 1's SERDES deployment, measured in recovered bits rather than
//! eye pictures).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, UI};
use cml_channel::Backplane;
use cml_core::behav::cdr::{self, CdrConfig};
use cml_core::behav::{Block, IoLink};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;

fn main() {
    banner("CDR bit-error measurement over the full link");
    let pattern = Prbs::prbs7().one_period();
    // Five pattern periods: lock-in preamble plus a measured payload.
    let mut seq = Vec::new();
    for _ in 0..5 {
        seq.extend_from_slice(&pattern);
    }
    let data = NrzConfig::new(UI, 0.5).render(&seq);
    let cfg = CdrConfig::at_10gbps();

    println!(
        "\n{:<26} | {:>10} {:>9} {:>12} {:>12}",
        "link", "bits", "errors", "BER", "phase rms"
    );
    for (label, link) in [
        ("back-to-back", IoLink::back_to_back()),
        ("0.3 m backplane", with_channel(0.3)),
        ("0.5 m backplane", with_channel(0.5)),
        ("0.7 m backplane", with_channel(0.7)),
    ] {
        let out = link.process(&data);
        let res = cdr::recover(&out, &cfg);
        let (errors, total) = cdr::bit_errors(&res.bits, &pattern);
        println!(
            "{label:<26} | {total:>10} {errors:>9} {:>12.2e} {:>9.3} UI",
            errors as f64 / total as f64,
            res.locked_phase_rms()
        );
    }
    println!(
        "\nThe compensated links recover error-free; the raw back-to-back\n\
         chain (equalizer and peaking tuned off) runs at the composite-\n\
         bandwidth limit of the behavioural cascade and shows residual\n\
         pattern-dependent errors — the margin the paper's equalization\n\
         techniques exist to provide."
    );
}

fn with_channel(len: f64) -> IoLink {
    let mut link = IoLink::paper_default();
    link.channel = Some(Backplane::fr4_trace(len));
    link
}
