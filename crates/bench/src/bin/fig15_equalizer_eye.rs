//! Fig. 15 — input-interface output eye after the lossy backplane,
//! (a) without the equalizer and (b) with it (10 Gb/s PRBS-7).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, eye_art, eye_metrics, fmt_eye, prbs7_wave};
use cml_channel::Backplane;
use cml_core::behav::{Block, InputInterface, OutputInterface};

fn main() {
    banner("Fig. 15 - input interface eye +/- equalizer after backplane");
    let trace = Backplane::fr4_trace(0.6);
    println!(
        "channel: 0.6 m FR-4 trace, {:.1} dB loss at 5 GHz",
        trace.attenuation_db(5e9)
    );
    let sent = OutputInterface::paper_default().process(&prbs7_wave(0.5));
    let received = trace.apply(&sent, true);
    let m_rx = eye_metrics(&received);
    println!("post-channel raw eye: {}", fmt_eye(&m_rx));

    let without = InputInterface::without_equalizer().process(&received);
    let m_no = eye_metrics(&without);
    println!("\n(a) output signal without equalizer");
    println!("eye: {}", fmt_eye(&m_no));
    println!("{}", eye_art(&without));

    let with = InputInterface::paper_default().process(&received);
    let m_eq = eye_metrics(&with);
    println!("(b) output signal with equalizer");
    println!("eye: {}", fmt_eye(&m_eq));
    println!("{}", eye_art(&with));

    println!(
        "equalizer benefit: eye width {:.1} ps -> {:.1} ps, rms jitter {:.1} ps -> {:.1} ps",
        m_no.width * 1e12,
        m_eq.width * 1e12,
        m_no.rms_jitter * 1e12,
        m_eq.rms_jitter * 1e12
    );
}
