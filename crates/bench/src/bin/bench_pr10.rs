//! PR benchmark: observability-layer overhead and flight-recorder cost.
//!
//! PR 10 wires a structured event log into the solver's hottest paths
//! (per-iteration residual trajectory, LTE rejects, Newton retries,
//! pivot fallbacks) and adds a dump-on-failure flight recorder. Both
//! ride the PR 5 telemetry handle, so the PR 5 contract is re-measured
//! with the new instrumentation live:
//!
//! 1. **Event-log overhead** — the PR 2 transistor-level PRBS-7
//!    transient eye timed with `Telemetry::disabled()` (the zero-cost
//!    path) vs a fresh enabled handle per repetition, which now records
//!    events and the residual trajectory on top of counters and spans.
//!    Best-of interleaved rounds; asserts the enabled leg stays
//!    under the 2 % coarse-overhead budget (full run only — smoke
//!    grids are too small to time).
//! 2. **Flight-dump cost** — a forced non-convergent MOSFET operating
//!    point (one Newton iteration per homotopy rung) timed with no
//!    flight directory vs dumping a `CMLF` bundle per failure; reports
//!    the per-dump cost and bundle size. Each dumped bundle is then
//!    round-tripped: read back, checksum + fingerprint validated, and
//!    replay-checked via `cml-lint`'s forensics (the recorded residual
//!    trajectory must reproduce bit-for-bit).
//!
//! Writes `BENCH_pr10.json` in the current directory;
//! `CML_TELEMETRY=json:...|trace:...|prom:...` attaches file sinks.
//!
//! Run with: `cargo run --release --bin bench_pr10 [--smoke]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::equalizer::{self, EqualizerConfig};
use cml_core::cells::input_interface::InputInterfaceConfig;
use cml_core::cells::{add_diff_drive, add_supply, input_interface, DiffPort};
use cml_lint::forensics;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_spice::analysis::tran::{self, TranConfig};
use cml_spice::analysis::{op, NewtonOptions};
use cml_spice::flight::{self, FlightBundle};
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use serde::Value;
use std::path::PathBuf;
use std::time::Instant;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

/// Enabled-vs-disabled overhead budget (the PR 5 contract, re-asserted
/// with the event log live).
const OVERHEAD_BUDGET: f64 = 0.02;

/// The PR 2 eye workload: transistor-level receive chain, PRBS-7 drive.
fn build_tran_workload(n_bits: usize) -> (Circuit, f64) {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    (ckt, n_bits as f64 * UI)
}

/// MOSFET circuit for the forced-divergence leg: the paper's equalizer
/// cell, which genuinely needs Newton iterations for its operating
/// point.
fn build_diverging_workload() -> (Circuit, NewtonOptions) {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = EqualizerConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
    equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
    let opts = NewtonOptions {
        // One iteration per attempt can never satisfy the convergence +
        // no-damping check on a nonlinear circuit: every homotopy rung
        // fails and the solve returns NoConvergence deterministically.
        max_iter: 1,
        cache: false,
        ..NewtonOptions::default()
    };
    (ckt, opts)
}

/// Best (minimum) wall-clock of the off/on legs over `reps`
/// interleaved rounds, in milliseconds. Interleaving keeps thermal and
/// cache state comparable between the legs (the `bench_pr5` argument);
/// per-leg *minima* rather than medians because scheduler and frequency
/// noise on a shared machine is strictly additive — the smallest sample
/// is the closest estimate of each leg's true cost, so the overhead
/// ratio doesn't flap when a background process lands on a few rounds.
fn min_pair_ms<F: FnMut(), G: FnMut()>(reps: usize, mut off: F, mut on: G) -> (f64, f64) {
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        off();
        best_off = best_off.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        on();
        best_on = best_on.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best_off, best_on)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_bits = if smoke { 8 } else { 40 };
    let reps = if smoke { 1 } else { 21 };
    let dump_reps = if smoke { 3 } else { 20 };

    // --- Leg 1: event-log overhead on the PRBS-7 transistor eye. ---
    let (tran_ckt, t_stop) = build_tran_workload(n_bits);
    let mut tran_cfg = TranConfig::new(t_stop, 1e-12).adaptive();
    tran_cfg.newton.sparse_threshold = 1;
    println!(
        "tran workload: input interface, PRBS-7 {n_bits} bits @ 10 Gb/s, \
         sparse adaptive, event log live{}",
        if smoke { " (smoke)" } else { "" }
    );
    tran::run_traced(&tran_ckt, &tran_cfg, &Telemetry::disabled()).expect("tran warmup");
    let (off_ms, on_ms) = min_pair_ms(
        reps,
        || {
            tran::run_traced(&tran_ckt, &tran_cfg, &Telemetry::disabled()).expect("tran off");
        },
        || {
            let tel = Telemetry::enabled();
            tran::run_traced(&tran_ckt, &tran_cfg, &tel).expect("tran on");
        },
    );
    let overhead = (on_ms - off_ms) / off_ms;
    println!(
        "  eye            off {off_ms:9.1} ms | on {on_ms:9.1} ms | overhead {:+.3} %",
        overhead * 1e2
    );

    // One traced run whose event/counter block lands in the JSON (and in
    // any CML_TELEMETRY sinks, including prom:).
    let tel = Telemetry::enabled_with_env_sinks();
    let tran_tel = tel.probe().fork(0);
    tran::run_traced(&tran_ckt, &tran_cfg, &tran_tel).expect("tran traced");
    let tran_report = tran_tel.report();
    tel.absorb(tran_tel.into_parts());
    println!(
        "  events: {} emitted, {} held, {} dropped (ring bounded); \
         degradations {}",
        tran_report.counters.events_emitted,
        tran_report.events.len(),
        tran_report.events_dropped,
        tran_report.counters.degradation_warnings,
    );
    // The exposition must render and carry the new counter families.
    let prom = tran_report.prometheus();
    assert!(
        prom.contains("cml_events_emitted_total")
            && prom.contains("cml_degradation_warnings_total")
            && prom.contains("cml_flight_dumps_total")
            && prom.contains("cml_peak_rss_available"),
        "prometheus exposition is missing PR 10 families"
    );

    // --- Leg 2: flight-dump cost on a forced divergence. ---
    let (bad_ckt, bad_opts) = build_diverging_workload();
    let flight_dir = std::env::temp_dir().join(format!("cml-bench-pr10-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&flight_dir);
    println!("divergence workload: equalizer op, max_iter=1, {dump_reps} failing solves");
    let fail_once = |tel: &Telemetry| {
        assert!(
            op::solve_traced(&bad_ckt, &bad_opts, None, tel).is_err(),
            "starved iteration budget must not converge"
        );
    };
    fail_once(&Telemetry::enabled()); // warmup
    let (nodump_ms, dump_ms) = min_pair_ms(
        dump_reps,
        || {
            flight::set_dir(None);
            fail_once(&Telemetry::enabled());
        },
        || {
            flight::set_dir(Some(flight_dir.clone()));
            fail_once(&Telemetry::enabled());
            flight::set_dir(None);
        },
    );
    let dump_cost_ms = dump_ms - nodump_ms;
    println!(
        "  forced op fail {nodump_ms:9.2} ms | with dump {dump_ms:9.2} ms | \
         dump cost {dump_cost_ms:+.3} ms"
    );

    // Round-trip every dumped bundle: full validation plus a replay
    // check on the first (replays re-run the solve; one is enough).
    let mut bundles: Vec<PathBuf> = std::fs::read_dir(&flight_dir)
        .expect("flight dir populated")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "cmlf"))
        .collect();
    bundles.sort();
    assert_eq!(
        bundles.len(),
        dump_reps,
        "every failing solve with a flight dir must dump exactly one bundle"
    );
    let mut bundle_bytes = 0u64;
    let mut fingerprint = None;
    for path in &bundles {
        let b = FlightBundle::read(path).expect("dumped bundle validates");
        assert_eq!(b.analysis, "op");
        assert!(b.error.is_some() && !b.trajectory.is_empty());
        bundle_bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        // Determinism across dumps: one failing circuit, one fingerprint.
        let fp = b.content_fingerprint();
        assert_eq!(*fingerprint.get_or_insert(fp), fp, "fingerprint drifted");
    }
    let first = FlightBundle::read(&bundles[0]).expect("bundle re-reads");
    let replay = forensics::replay_check(&first).expect("embedded netlist parses");
    assert!(
        replay.ok() && replay.error_reproduced && replay.trajectory_match,
        "flight replay must reproduce the recorded trajectory bit-for-bit"
    );
    let avg_bundle_bytes = bundle_bytes as f64 / bundles.len() as f64;
    println!(
        "  {} bundles validated, avg {:.0} bytes, replay bit-exact",
        bundles.len(),
        avg_bundle_bytes
    );
    // Preserve one validated bundle next to the JSON so CI (and anyone
    // reading the artifacts) can header-check the CMLF container and
    // run `cml-lint forensics` against a known-good dump.
    std::fs::copy(&bundles[0], "BENCH_pr10.cmlf").expect("preserve bundle artifact");
    let _ = std::fs::remove_dir_all(&flight_dir);

    // The overhead gate only binds on the full workload: smoke grids are
    // small enough that process startup noise dominates the ratio.
    if !smoke {
        assert!(
            overhead < OVERHEAD_BUDGET,
            "event-log telemetry overhead {:.2} % exceeds the {:.0} % budget",
            overhead * 1e2,
            OVERHEAD_BUDGET * 1e2
        );
    }

    let report = obj(vec![
        ("bench", Value::Str("bench_pr10".into())),
        ("smoke", Value::Bool(smoke)),
        ("reps", Value::Num(reps as f64)),
        (
            "event_log_overhead",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!(
                        "input interface (transistor level), PRBS-7 {n_bits} bits \
                         @ 10 Gb/s, sparse adaptive, event log live"
                    )),
                ),
                ("telemetry_off_ms", Value::Num(off_ms)),
                ("telemetry_on_ms", Value::Num(on_ms)),
                ("overhead_frac", Value::Num(overhead)),
                ("overhead_budget_frac", Value::Num(OVERHEAD_BUDGET)),
                (
                    "events_emitted",
                    Value::Num(tran_report.counters.events_emitted as f64),
                ),
                ("events_held", Value::Num(tran_report.events.len() as f64)),
                (
                    "events_dropped",
                    Value::Num(tran_report.events_dropped as f64),
                ),
            ]),
        ),
        (
            "flight_recorder",
            obj(vec![
                (
                    "workload",
                    Value::Str(
                        "equalizer operating point, max_iter=1 forced divergence".to_string(),
                    ),
                ),
                ("dump_reps", Value::Num(dump_reps as f64)),
                ("fail_no_dump_ms", Value::Num(nodump_ms)),
                ("fail_with_dump_ms", Value::Num(dump_ms)),
                ("dump_cost_ms", Value::Num(dump_cost_ms)),
                ("avg_bundle_bytes", Value::Num(avg_bundle_bytes)),
                ("bundles_validated", Value::Num(bundles.len() as f64)),
                ("replay_bit_exact", Value::Bool(true)),
            ]),
        ),
        ("prometheus_lines", Value::Num(prom.lines().count() as f64)),
        ("telemetry", tran_report.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("render BENCH_pr10.json");
    std::fs::write("BENCH_pr10.json", format!("{json}\n")).expect("write BENCH_pr10.json");
    println!("wrote BENCH_pr10.json and BENCH_pr10.cmlf");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
