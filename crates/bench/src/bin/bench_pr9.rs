//! PR benchmark: the content-hashed topology artifact cache on a
//! repeated-topology workload.
//!
//! Parameter sweeps, corner runs and Monte Carlo loops all re-solve the
//! same circuit *structure* over and over; before PR 9 every run paid
//! the full lint precheck, symbolic sparse analysis and AC pattern
//! discovery again. This benchmark measures that fixed cost three ways
//! on the paper's builtin blocks, running `reps` rounds of lint-checked
//! operating point plus a small AC sweep per block:
//!
//! 1. **cold** — cache disabled (`NewtonOptions::cache = false`): every
//!    round re-derives everything, the pre-PR baseline;
//! 2. **warm** — in-memory cache enabled: round one primes the interner,
//!    later rounds hit it (this leg *includes* the priming round, so the
//!    speedup below is end-to-end, not best-case);
//! 3. **disk** — disk tier primed once, then the in-memory interner is
//!    dropped before every round, forcing each artifact to rehydrate
//!    through the validated on-disk path.
//!
//! Asserts the warm leg is ≥ 1.3x faster than cold (≥ 1.05x in smoke
//! mode, where rounds are few and timing noise is proportionally
//! larger), that all three legs produce bit-identical solutions, and
//! that the warm leg's telemetry shows hits with zero validation
//! failures. Writes `BENCH_pr9.json` in the current directory.
//!
//! Run with: `cargo run --release --bin bench_pr9 [--smoke]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_lint::builtin_circuit;
use cml_numeric::logspace;
use cml_spice::analysis::{ac, op, NewtonOptions};
use cml_spice::prelude::*;
use cml_spice::telemetry::{Counters, Telemetry};
use serde::Value;
use std::path::PathBuf;
use std::time::Instant;

/// The repeated-topology pool: every round re-solves these blocks.
const BLOCKS: [&str; 4] = ["buffer", "equalizer", "la", "gain"];

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn opts(cache: bool) -> NewtonOptions {
    NewtonOptions {
        sparse_threshold: 1,
        cache,
        ..NewtonOptions::default()
    }
}

/// One round of the workload: lint-prechecked op plus an AC sweep per
/// block. Returns the solution bits, so legs can be compared exactly.
fn one_round(
    circuits: &[(String, Circuit)],
    freqs: &[f64],
    o: &NewtonOptions,
    tel: &Telemetry,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for (_, ckt) in circuits {
        let op = op::solve_traced(ckt, o, None, tel).expect("op converges");
        bits.extend(op.solution().iter().map(|v| v.to_bits()));
        let ac = ac::sweep_traced(ckt, op.solution(), freqs, o, 1, tel).expect("ac sweep");
        for raw in 1..=ckt.num_unknown_nodes() {
            let node = NodeId::from_raw(raw as u32);
            for idx in 0..freqs.len() {
                let v = ac.voltage(node, idx);
                bits.push(v.re.to_bits());
                bits.push(v.im.to_bits());
            }
        }
    }
    bits
}

struct Leg {
    ms: f64,
    bits: Vec<u64>,
    counters: Counters,
}

/// Times `reps` rounds of the workload. `reset` runs before each round
/// (outside the timer it is not — cache management is part of the cost
/// a real sweep would pay).
fn run_leg<F: FnMut()>(
    circuits: &[(String, Circuit)],
    freqs: &[f64],
    reps: usize,
    o: &NewtonOptions,
    mut reset: F,
) -> Leg {
    let tel = Telemetry::enabled();
    let mut bits = Vec::new();
    let t0 = Instant::now();
    for rep in 0..reps {
        reset();
        let round = one_round(circuits, freqs, o, &tel);
        if rep == 0 {
            bits = round;
        } else {
            assert_eq!(bits, round, "a later round diverged from round one");
        }
    }
    Leg {
        ms: t0.elapsed().as_secs_f64() * 1e3 / reps as f64,
        bits,
        counters: tel.report().counters,
    }
}

fn counters_json(c: &Counters) -> Value {
    obj(vec![
        ("cache_hits", Value::Num(c.cache_hits as f64)),
        ("cache_misses", Value::Num(c.cache_misses as f64)),
        ("cache_disk_loads", Value::Num(c.cache_disk_loads as f64)),
        (
            "cache_validation_failures",
            Value::Num(c.cache_validation_failures as f64),
        ),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 6 } else { 40 };
    let n_freqs = if smoke { 8 } else { 16 };
    let min_speedup = if smoke { 1.05 } else { 1.3 };

    let circuits: Vec<(String, Circuit)> = BLOCKS
        .iter()
        .map(|n| ((*n).to_string(), builtin_circuit(n).expect("builtin")))
        .collect();
    let freqs = logspace(1e6, 60e9, n_freqs);

    // Scratch disk tier for the rehydration leg; removed at the end.
    let disk_dir: PathBuf = std::env::temp_dir().join(format!("bench-pr9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    std::fs::create_dir_all(&disk_dir).expect("create scratch cache dir");

    // Untimed warmup so the cold leg doesn't also pay first-touch costs.
    cml_cache::set_enabled(true);
    cml_cache::set_disk_dir(None);
    one_round(&circuits, &freqs, &opts(false), &Telemetry::disabled());

    // --- 1. cold: cache off, every round re-derives everything ---------
    let cold = run_leg(&circuits, &freqs, reps, &opts(false), || {});
    println!("  cold {:8.3} ms/round ({reps} rounds)", cold.ms);

    // --- 2. warm: in-memory tier, round one primes, the rest hit -------
    cml_cache::intern::clear_in_memory();
    cml_cache::reset_stats();
    let warm = run_leg(&circuits, &freqs, reps, &opts(true), || {});
    let warm_stats = cml_cache::stats();
    println!(
        "  warm {:8.3} ms/round (hit rate {:.1} %)",
        warm.ms,
        warm_stats.hit_rate() * 1e2
    );

    // --- 3. disk: interner dropped every round, artifacts rehydrate ----
    cml_cache::set_disk_dir(Some(disk_dir.clone()));
    cml_cache::intern::clear_in_memory();
    cml_cache::reset_stats();
    one_round(&circuits, &freqs, &opts(true), &Telemetry::disabled()); // prime disk
    let disk = run_leg(&circuits, &freqs, reps, &opts(true), || {
        cml_cache::intern::clear_in_memory();
    });
    let disk_stats = cml_cache::disk::disk_stats();
    println!(
        "  disk {:8.3} ms/round ({} entries, {} bytes on disk)",
        disk.ms, disk_stats.entries, disk_stats.total_bytes
    );
    cml_cache::set_disk_dir(None);
    let _ = std::fs::remove_dir_all(&disk_dir);

    // --- Soundness: all three legs agree to the bit ---------------------
    assert_eq!(cold.bits, warm.bits, "warm leg diverged from cold");
    assert_eq!(cold.bits, disk.bits, "disk leg diverged from cold");
    assert_eq!(cold.counters.cache_hits, 0, "cache-off leg hit the cache");
    assert!(warm.counters.cache_hits > 0, "warm leg never hit the cache");
    assert_eq!(
        warm.counters.cache_validation_failures, 0,
        "warm leg rejected its own artifacts"
    );
    assert!(
        disk.counters.cache_disk_loads > 0,
        "disk leg never loaded from disk"
    );

    let speedup = cold.ms / warm.ms;
    let disk_speedup = cold.ms / disk.ms;
    println!(
        "  speedup: warm {speedup:.2}x, disk {disk_speedup:.2}x over cold \
         ({} solution words compared per round)",
        cold.bits.len()
    );
    assert!(
        speedup >= min_speedup,
        "warm speedup {speedup:.3}x below the {min_speedup}x floor"
    );

    let json_report = obj(vec![
        ("bench", Value::Str("bench_pr9".into())),
        ("smoke", Value::Bool(smoke)),
        (
            "workload",
            Value::Str(format!(
                "{} blocks x {reps} rounds of lint-prechecked op + {n_freqs}-point AC",
                BLOCKS.len()
            )),
        ),
        ("cold_ms_per_round", Value::Num(cold.ms)),
        ("warm_ms_per_round", Value::Num(warm.ms)),
        ("disk_ms_per_round", Value::Num(disk.ms)),
        ("warm_speedup", Value::Num(speedup)),
        ("disk_speedup", Value::Num(disk_speedup)),
        ("min_speedup", Value::Num(min_speedup)),
        ("bits_compared", Value::Num(cold.bits.len() as f64)),
        ("bit_identical", Value::Bool(true)),
        ("warm_hit_rate", Value::Num(warm_stats.hit_rate())),
        ("disk_entries", Value::Num(disk_stats.entries as f64)),
        ("disk_bytes", Value::Num(disk_stats.total_bytes as f64)),
        ("cold_counters", counters_json(&cold.counters)),
        ("warm_counters", counters_json(&warm.counters)),
        ("disk_counters", counters_json(&disk.counters)),
    ]);
    let json = serde_json::to_string_pretty(&json_report).expect("render BENCH_pr9.json");
    std::fs::write("BENCH_pr9.json", format!("{json}\n")).expect("write BENCH_pr9.json");
    println!("wrote BENCH_pr9.json");
}
