//! PR benchmark: streaming transient sinks — million-bit PRBS-31
//! transistor-level eye at flat memory.
//!
//! Four legs:
//!
//! 1. **equivalence** — PRBS-7 on the full input interface: the eye
//!    folded on the fly by [`EyeSink`] must match the same accumulator
//!    fed from the dense record to ≤ 1e-12 (the implementation achieves
//!    bit-identity, which is also asserted);
//! 2. **spill** — the same run teed into the compressed disk spill;
//!    the file must decode back bit-exactly and beat raw `f64` size;
//! 3. **flat-memory** — ≥ 10⁶ bits of PRBS-31 through a transistor-level
//!    CML buffer, eye + metrics folded streaming. Peak RSS is sampled
//!    (`VmHWM`) before and after; the delta must stay under a fixed
//!    budget that does not scale with bit count. (The PWL drive knots
//!    are the one remaining O(bits) term, ~32 B/bit, and are included
//!    in the budget.)
//! 4. **fan-in** — a 6-segment amplitude sweep, each segment streaming
//!    its own eye, merged with `par_fold`: N-thread results must be
//!    bit-identical to serial, demonstrating deterministic sink fan-in.
//!
//! Run with: `cargo run --release --bin bench_pr6 [--smoke] [--bits N] [--threads N]`
//! `--smoke` truncates leg 3 to a short PRBS-15 pattern for CI.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::input_interface::{self, InputInterfaceConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_core::stream::{EyeSink, MetricsSink};
use cml_pdk::Pdk018;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::streaming::{EyeAccumulator, EyeAccumulatorConfig};
use cml_spice::analysis::tran;
use cml_spice::prelude::*;
use cml_spice::telemetry::{self, Telemetry};
use serde::Value;
use std::time::Instant;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

/// Peak-RSS growth budget for the million-bit leg, bytes. Holding the
/// dense record instead would need ~50 doubles × 2·10⁷ steps × 8 B
/// ≈ 8 GB; the streaming path must fit all sinks, the PWL drive and
/// solver workspace in this fixed envelope regardless of bit count.
const PEAK_RSS_BUDGET: u64 = 256 * 1024 * 1024;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn rss() -> u64 {
    telemetry::peak_rss_bytes().expect("VmHWM available on Linux")
}

// ---------------------------------------------------------------------
// Leg 1 + 2: PRBS-7 equivalence and spill on the full input interface
// ---------------------------------------------------------------------

fn equivalence_and_spill(smoke: bool) -> (Value, Value) {
    let n_bits = if smoke { 16 } else { 40 };
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);

    let tcfg = TranConfig::new(n_bits as f64 * UI, 1e-12);
    let eye_cfg = EyeAccumulatorConfig::new(UI, 1e-12, -1.0, 1.0).with_skip(4.0 * UI);
    let probes = TranProbes::new().differential("vout", out.p, out.n);

    // Streamed: eye folds during the run, teed into the disk spill.
    let spill_path = std::env::temp_dir().join(format!("bench_pr6_{}.cmw", std::process::id()));
    let mut eye = EyeSink::new("vout", eye_cfg.clone());
    let mut spill = SpillSink::create(&spill_path);
    let t0 = Instant::now();
    let stats = {
        let mut tee = Tee::new(&mut eye, &mut spill);
        tran::run_streaming(&ckt, &tcfg, &probes, &mut tee).expect("streamed transient")
    };
    let streamed_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(spill);

    // Dense reference: classic full-record run, fold afterwards.
    let t0 = Instant::now();
    let dense = tran::run(&ckt, &tcfg).expect("dense transient");
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;
    let vout = dense.differential(out.p, out.n);
    let mut reference = EyeAccumulator::new(eye_cfg);
    reference.feed(dense.times(), &vout);

    let a = eye.accumulator().metrics();
    let b = reference.metrics();
    let worst = [
        (a.height - b.height).abs(),
        (a.width - b.width).abs(),
        (a.rms_jitter - b.rms_jitter).abs(),
        (a.pp_jitter - b.pp_jitter).abs(),
        (a.v_high - b.v_high).abs(),
        (a.v_low - b.v_low).abs(),
    ]
    .into_iter()
    .fold(0.0f64, f64::max);
    let bit_identical = a.height.to_bits() == b.height.to_bits()
        && a.width.to_bits() == b.width.to_bits()
        && a.rms_jitter.to_bits() == b.rms_jitter.to_bits()
        && a.pp_jitter.to_bits() == b.pp_jitter.to_bits();
    println!(
        "leg 1  equivalence: PRBS-7 {n_bits} bits | streamed {streamed_ms:.1} ms vs dense+fold {dense_ms:.1} ms"
    );
    println!(
        "       eye {:.1} mV x {:.1} ps, rms jitter {:.2} ps | worst metric diff {worst:.3e} | bit-identical: {bit_identical}",
        a.height * 1e3,
        a.width * 1e12,
        a.rms_jitter * 1e12
    );
    assert!(
        worst <= 1e-12,
        "streamed eye diverged from dense fold by {worst:.3e} (> 1e-12)"
    );
    assert!(
        bit_identical,
        "streamed eye not bit-identical to dense fold"
    );
    assert!(a.height > 0.0, "eye closed on the PRBS-7 reference");

    // Leg 2: decode the spill and compare bit-for-bit.
    let contents = SpillReader::read(&spill_path).expect("read spill");
    let compressed = std::fs::metadata(&spill_path)
        .expect("spill metadata")
        .len();
    std::fs::remove_file(&spill_path).ok();
    let ckpt = spill_path.with_extension("cmw.ckpt");
    std::fs::remove_file(ckpt).ok();
    let n = contents.times.len();
    let raw = ((contents.cols.len() + 1) * n * 8) as u64;
    let lossless = n == dense.len()
        && contents
            .times
            .iter()
            .zip(dense.times())
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && contents.cols[0]
            .iter()
            .zip(&vout)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    println!(
        "leg 2  spill: {n} samples, {compressed} B compressed vs {raw} B raw ({:.2}x) | lossless: {lossless}",
        raw as f64 / compressed as f64
    );
    assert!(lossless, "spill decode is not bit-exact");
    assert!(compressed < raw, "spill did not beat raw f64 size");

    let leg1 = obj(vec![
        ("n_bits", Value::Num(n_bits as f64)),
        ("samples", Value::Num(stats.samples as f64)),
        ("chunks", Value::Num(stats.chunks as f64)),
        ("streamed_ms", Value::Num(streamed_ms)),
        ("dense_fold_ms", Value::Num(dense_ms)),
        ("eye_height_v", Value::Num(a.height)),
        ("eye_width_s", Value::Num(a.width)),
        ("rms_jitter_s", Value::Num(a.rms_jitter)),
        ("worst_metric_diff", Value::Num(worst)),
        ("bit_identical", Value::Bool(bit_identical)),
    ]);
    let leg2 = obj(vec![
        ("samples", Value::Num(n as f64)),
        ("compressed_bytes", Value::Num(compressed as f64)),
        ("raw_bytes", Value::Num(raw as f64)),
        ("ratio", Value::Num(raw as f64 / compressed as f64)),
        ("lossless", Value::Bool(lossless)),
    ]);
    (leg1, leg2)
}

// ---------------------------------------------------------------------
// Leg 3: million-bit PRBS-31 at flat memory
// ---------------------------------------------------------------------

fn flat_memory(smoke: bool, bits_flag: Option<usize>, tel: &Telemetry) -> Value {
    let n_bits = bits_flag.unwrap_or(if smoke { 4_000 } else { 1_000_000 });
    let (pattern, bits): (&str, Vec<bool>) = if smoke {
        ("PRBS-15 (truncated)", Prbs::prbs15().take(n_bits).collect())
    } else {
        ("PRBS-31", Prbs::prbs31().take(n_bits).collect())
    };

    // Single paper-default CML buffer: the cell the wide-band techniques
    // live in, small enough that the bottleneck is step count, not LU.
    let pdk = Pdk018::typical();
    let cfg = CmlBufferConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cml_buffer::output_common_mode(&cfg);
    let swing = cfg.stage.swing();
    let pwl = NrzConfig::new(UI, swing).with_offset(vcm).render_pwl(&bits);
    let pwl_knots = pwl.len();
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, out, vdd);

    let dt = 5e-12; // 20 samples per UI
    let tcfg = TranConfig::new(n_bits as f64 * UI, dt);
    let eye_cfg = EyeAccumulatorConfig::new(UI, dt, -1.2 * swing, 1.2 * swing).with_skip(8.0 * UI);
    let probes = TranProbes::new().differential("vout", out.p, out.n);
    let mut eye = EyeSink::new("vout", eye_cfg);
    let mut metrics = MetricsSink::new("vout", 0.0);

    let rss_before = rss();
    let t0 = Instant::now();
    let stats = {
        let mut tee = Tee::new(&mut eye, &mut metrics);
        tran::run_streaming_traced(&ckt, &tcfg, &probes, &mut tee, tel)
            .expect("flat-memory transient")
    };
    let elapsed = t0.elapsed().as_secs_f64();
    let rss_after = rss();
    let rss_delta = rss_after - rss_before;

    let m = eye.accumulator().metrics();
    let sm = metrics.metrics();
    println!(
        "leg 3  flat-memory: {pattern} {n_bits} bits, {} samples in {} chunks, {elapsed:.1} s ({:.0} steps/s)",
        stats.samples,
        stats.chunks,
        stats.samples as f64 / elapsed
    );
    println!(
        "       eye {:.1} mV x {:.1} ps, rms jitter {:.2} ps | vout in [{:.3}, {:.3}] V, {} crossings",
        m.height * 1e3,
        m.width * 1e12,
        m.rms_jitter * 1e12,
        sm.min(),
        sm.max(),
        sm.crossings()
    );
    println!(
        "       peak RSS: {:.1} MB -> {:.1} MB (delta {:.1} MB, budget {:.0} MB) | sink mem {:.2} MB | PWL knots {pwl_knots}",
        rss_before as f64 / 1e6,
        rss_after as f64 / 1e6,
        rss_delta as f64 / 1e6,
        PEAK_RSS_BUDGET as f64 / 1e6,
        eye.accumulator().mem_bytes() as f64 / 1e6
    );
    // Fixed stepping: t=0 plus ~t_stop/dt steps (the exact count shifts
    // by one with fp rounding of the step grid).
    let expected = (n_bits as f64 * UI / dt) as u64 + 1;
    assert!(
        stats.samples.abs_diff(expected) <= 1,
        "sample count {} far from expected {expected}",
        stats.samples
    );
    assert!(
        rss_delta < PEAK_RSS_BUDGET,
        "peak RSS grew by {rss_delta} B during the {n_bits}-bit run (budget {PEAK_RSS_BUDGET} B) — streaming memory is not flat"
    );
    assert!(m.height > 0.0, "eye closed at the buffer output");
    assert!(sm.count() == stats.samples, "metrics sink missed samples");

    obj(vec![
        ("pattern", Value::Str(pattern.into())),
        ("n_bits", Value::Num(n_bits as f64)),
        ("dt_s", Value::Num(dt)),
        ("samples", Value::Num(stats.samples as f64)),
        ("chunks", Value::Num(stats.chunks as f64)),
        ("elapsed_s", Value::Num(elapsed)),
        ("steps_per_s", Value::Num(stats.samples as f64 / elapsed)),
        ("eye_height_v", Value::Num(m.height)),
        ("eye_width_s", Value::Num(m.width)),
        ("rms_jitter_s", Value::Num(m.rms_jitter)),
        ("pp_jitter_s", Value::Num(m.pp_jitter)),
        ("crossings", Value::Num(sm.crossings() as f64)),
        ("peak_rss_before_b", Value::Num(rss_before as f64)),
        ("peak_rss_after_b", Value::Num(rss_after as f64)),
        ("peak_rss_delta_b", Value::Num(rss_delta as f64)),
        ("peak_rss_budget_b", Value::Num(PEAK_RSS_BUDGET as f64)),
        ("pwl_knots", Value::Num(pwl_knots as f64)),
        (
            "eye_accumulator_bytes",
            Value::Num(eye.accumulator().mem_bytes() as f64),
        ),
    ])
}

// ---------------------------------------------------------------------
// Leg 4: deterministic parallel fan-in
// ---------------------------------------------------------------------

fn fan_in(smoke: bool) -> Value {
    let n_bits = if smoke { 32 } else { 127 };
    let amplitudes: Vec<f64> = vec![0.5, 0.75, 1.0, 1.25, 1.5, 2.0];
    let eye_cfg = EyeAccumulatorConfig::new(UI, 1e-12, -0.5, 0.5).with_skip(4.0 * UI);
    let segment = |i: usize, scale: &f64| -> EyeAccumulator {
        let pdk = Pdk018::typical();
        let cfg = CmlBufferConfig::paper_default();
        let mut ckt = Circuit::new();
        let vdd = add_supply(&mut ckt, cml_pdk::VDD);
        let input = DiffPort::named(&mut ckt, "in");
        let out = DiffPort::named(&mut ckt, "out");
        let vcm = cml_buffer::output_common_mode(&cfg);
        let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
        let pwl = NrzConfig::new(UI, cfg.stage.swing() * scale)
            .with_offset(vcm)
            .render_pwl(&bits);
        add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
        cml_buffer::build(&mut ckt, &pdk, &cfg, &format!("buf{i}"), input, out, vdd);
        let tcfg = TranConfig::new(n_bits as f64 * UI, 2e-12);
        let probes = TranProbes::new().differential("vout", out.p, out.n);
        let mut eye = EyeSink::new("vout", eye_cfg.clone());
        tran::run_streaming(&ckt, &tcfg, &probes, &mut eye).expect("segment transient");
        eye.into_accumulator()
    };
    let merge = |mut a: EyeAccumulator, b: EyeAccumulator| {
        a.merge(&b);
        a
    };

    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args())).max(2);
    let t0 = Instant::now();
    let serial = cml_runner::par_fold(1, &amplitudes, segment, merge).expect("serial fold");
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let parallel = cml_runner::par_fold(threads, &amplitudes, segment, merge).expect("par fold");
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    let (ms, mp) = (serial.metrics(), parallel.metrics());
    let identical = serial.samples() == parallel.samples()
        && serial.crossings() == parallel.crossings()
        && ms.height.to_bits() == mp.height.to_bits()
        && ms.rms_jitter.to_bits() == mp.rms_jitter.to_bits()
        && ms.pp_jitter.to_bits() == mp.pp_jitter.to_bits();
    println!(
        "leg 4  fan-in: {} segments x {n_bits} bits | serial {serial_ms:.0} ms, {threads} threads {parallel_ms:.0} ms ({:.2}x) | identical: {identical}",
        amplitudes.len(),
        serial_ms / parallel_ms
    );
    assert!(identical, "parallel fan-in changed the merged eye");

    obj(vec![
        ("segments", Value::Num(amplitudes.len() as f64)),
        ("n_bits_each", Value::Num(n_bits as f64)),
        ("threads", Value::Num(threads as f64)),
        ("serial_ms", Value::Num(serial_ms)),
        ("parallel_ms", Value::Num(parallel_ms)),
        ("speedup", Value::Num(serial_ms / parallel_ms)),
        ("results_identical", Value::Bool(identical)),
        ("merged_samples", Value::Num(serial.samples() as f64)),
    ])
}

fn bits_flag(args: impl IntoIterator<Item = String>) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--bits" {
            return args.next()?.parse().ok().filter(|&n| n > 0);
        }
        if let Some(v) = a.strip_prefix("--bits=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bits = bits_flag(std::env::args());
    println!(
        "bench_pr6: streaming transient sinks{}",
        if smoke { " (smoke)" } else { "" }
    );
    let tel = Telemetry::enabled_with_env_sinks();

    let (leg1, leg2) = equivalence_and_spill(smoke);
    let leg3 = flat_memory(smoke, bits, &tel);
    let leg4 = fan_in(smoke);

    let report = obj(vec![
        ("bench", Value::Str("bench_pr6".into())),
        ("smoke", Value::Bool(smoke)),
        ("equivalence", leg1),
        ("spill", leg2),
        ("flat_memory", leg3),
        ("fan_in", leg4),
        ("telemetry", tel.report().to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("render BENCH_pr6.json");
    std::fs::write("BENCH_pr6.json", format!("{json}\n")).expect("write BENCH_pr6.json");
    println!("wrote BENCH_pr6.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
