//! Ablation study: each wide-band technique of §III toggled
//! independently, measured at the transistor level (or the appropriate
//! model level), quantifying what every design choice buys.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, eye_metrics, prbs7_wave};
use cml_channel::Backplane;
use cml_core::behav::{self, Block};
use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::gain_stage::{self, GainStageConfig};
use cml_core::cells::limiting_amp::{self, LimitingAmpConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_pdk::Pdk018;
use cml_sig::Bode;
use cml_spice::prelude::*;

fn buffer_bode(cfg: &CmlBufferConfig, c_load: f64) -> Bode {
    let pdk = Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        cml_buffer::output_common_mode(cfg),
        None,
    );
    cml_buffer::build(&mut ckt, &pdk, cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, c_load));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, c_load));
    let freqs = logspace(1e7, 60e9, 80);
    cml_core::freq::differential_bode(&ckt, output, &freqs).expect("buffer ac")
}

fn la_bode(cfg: &LimitingAmpConfig) -> Bode {
    let pdk = Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(&mut ckt, "VIN", input, limiting_amp::common_mode(cfg), None);
    limiting_amp::build(&mut ckt, &pdk, cfg, "la", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
    let freqs = logspace(1e6, 60e9, 120);
    cml_core::freq::differential_bode(&ckt, output, &freqs).expect("la ac")
}

fn report(label: &str, bode: &Bode) {
    println!(
        "  {label:<44} {:>7.2} dB {:>8.2} GHz {:>6.2} dB",
        bode.dc_gain_db(),
        bode.bandwidth_3db().map_or(f64::NAN, |b| b / 1e9),
        bode.peaking_db()
    );
}

fn main() {
    banner("Ablation study - what each wide-band technique buys");
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    println!("\nCML buffer (transistor level, 30 fF load, {threads} threads):");
    println!(
        "  {:<44} {:>10} {:>12} {:>9}",
        "configuration", "DC gain", "bandwidth", "peaking"
    );
    let full = CmlBufferConfig::paper_default();
    let buffer_points: Vec<(&str, CmlBufferConfig)> = vec![
        ("full wide-band buffer", full.clone()),
        (
            "- active inductor (plain diode load)",
            CmlBufferConfig {
                r_gate: 0.0,
                ..full.clone()
            },
        ),
        (
            "- active feedback",
            CmlBufferConfig {
                feedback_frac: 0.0,
                ..full.clone()
            },
        ),
        (
            "- negative Miller capacitance",
            CmlBufferConfig {
                neg_miller: 0.0,
                ..full.clone()
            },
        ),
        ("none (plain CML buffer)", CmlBufferConfig::plain()),
    ];
    let bodes = cml_runner::par_map(threads, &buffer_points, |_, (_, cfg)| {
        buffer_bode(cfg, 30e-15)
    });
    for ((label, _), bode) in buffer_points.iter().zip(&bodes) {
        report(label, bode);
    }

    println!("\nLimiting amplifier (transistor level, 4 stages):");
    println!(
        "  {:<44} {:>10} {:>12} {:>9}",
        "configuration", "mid gain", "bandwidth", "peaking"
    );
    let la_full = LimitingAmpConfig {
        offset_cancel: None,
        ..LimitingAmpConfig::paper_default()
    };
    let la_points: Vec<(&str, LimitingAmpConfig)> = vec![
        ("full LA (interstage fb + peaked loads)", la_full.clone()),
        (
            "- interstage active feedback",
            LimitingAmpConfig {
                interstage_fb: 0.0,
                ..la_full.clone()
            },
        ),
        (
            "- peaking loads (pure poly)",
            LimitingAmpConfig {
                stage: GainStageConfig::no_peaking(),
                ..la_full.clone()
            },
        ),
    ];
    let la_bodes = cml_runner::par_map(threads, &la_points, |_, (_, cfg)| la_bode(cfg));
    for ((label, _), bode) in la_points.iter().zip(&la_bodes) {
        report(label, bode);
    }
    let _ = gain_stage::output_common_mode(&GainStageConfig::paper_default());

    println!("\nLink-level (behavioural, 0.5 m backplane, PRBS-7):");
    let data = prbs7_wave(0.5);
    println!("  {:<44} {:>10} {:>12}", "configuration", "height", "width");
    let mut no_eq = behav::IoLink::paper_default();
    no_eq.rx = behav::InputInterface::without_equalizer();
    let mut no_pk = behav::IoLink::paper_default();
    no_pk.tx = behav::OutputInterface::without_peaking();
    let mut neither = behav::IoLink::paper_default();
    neither.rx = behav::InputInterface::without_equalizer();
    neither.tx = behav::OutputInterface::without_peaking();
    let link_points: Vec<(&str, behav::IoLink)> = vec![
        (
            "full link (equalizer + peaking)",
            behav::IoLink::paper_default(),
        ),
        ("- equalizer", no_eq),
        ("- voltage peaking", no_pk),
        ("- both", neither),
    ];
    let link_eyes = cml_runner::par_map(threads, &link_points, |_, (_, link)| {
        eye_metrics(&link.process(&data))
    });
    for ((label, _), m) in link_points.iter().zip(&link_eyes) {
        println!(
            "  {label:<44} {:>7.1} mV {:>9.1} ps",
            m.height * 1e3,
            m.width * 1e12
        );
    }

    let _ = Backplane::fr4_trace(0.5); // keep the channel import honest
}
