//! Fig. 5 — equalizer gain vs frequency under NMOS control-voltage
//! tuning, (a) without and (b) with the active-feedback current buffers.
//!
//! Transistor-level AC analysis of the Cherry-Hooper cell in
//! `cml_core::cells::equalizer`. The paper's claims to reproduce:
//! the gain from DC to ~6 GHz is adjusted by the NMOS gate voltage V1,
//! and the current buffers raise gain and linearity.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::banner;
use cml_core::cells::{add_diff_drive, add_supply, equalizer, DiffPort};
use cml_numeric::logspace;
use cml_pdk::Pdk018;
use cml_sig::Bode;
use cml_spice::prelude::*;

fn equalizer_bode(v_control: f64, active_feedback: bool) -> Bode {
    let pdk = Pdk018::typical();
    let cfg = equalizer::EqualizerConfig {
        v_control,
        active_feedback,
        ..equalizer::EqualizerConfig::paper_default()
    };
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
    equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, 20e-15));
    let freqs = logspace(1e7, 30e9, 61);
    cml_core::freq::differential_bode(&ckt, output, &freqs).expect("equalizer AC solve")
}

fn print_panel(title: &str, active_feedback: bool) {
    println!("\n{title}");
    println!(
        "{:>6} | {:>9} {:>9} {:>9} {:>9} {:>10}",
        "V1 (V)", "DC (dB)", "1G (dB)", "3G (dB)", "6G (dB)", "peak (dB)"
    );
    for v1 in [0.8, 1.0, 1.2, 1.4, 1.6, 1.8] {
        let bode = equalizer_bode(v1, active_feedback);
        println!(
            "{v1:>6.1} | {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
            bode.dc_gain_db(),
            bode.gain_db_at(1e9),
            bode.gain_db_at(3e9),
            bode.gain_db_at(6e9),
            bode.peaking_db()
        );
    }
}

fn main() {
    banner("Fig. 5 - equalizer frequency response vs NMOS control voltage V1");
    println!("(transistor-level AC analysis, differential gain)");
    print_panel("(a) without active-feedback current buffers M1/M2", false);
    print_panel("(b) with active-feedback current buffers M1/M2", true);

    // Summary of the two headline claims.
    let b_lo = equalizer_bode(0.8, true);
    let b_hi = equalizer_bode(1.8, true);
    let tune_range = b_hi.dc_gain_db() - b_lo.dc_gain_db();
    println!(
        "\nDC-gain tuning range via V1: {tune_range:.1} dB \
         (paper: gain adjustable from DC to 6 GHz)"
    );
    let g_fb = equalizer_bode(1.2, true).dc_gain_db();
    let g_nofb = equalizer_bode(1.2, false).dc_gain_db();
    println!(
        "Active feedback gain benefit at V1 = 1.2 V: {:.1} dB (paper Fig. 5(b) vs (a))",
        g_fb - g_nofb
    );
}
