//! PR benchmark: static-analyzer cost and closed-loop soundness on the
//! seed circuit blocks.
//!
//! The PR 8 analyzer (`cml_spice::analyze`) runs interval abstract
//! interpretation, conditioning prediction and the stiffness spectrum
//! over the MNA graph without simulating, so its cost must stay
//! negligible next to an actual solve. This benchmark measures:
//!
//! 1. **analyze** — a full `analyze()` pass over every builtin block,
//!    averaged over many repetitions;
//! 2. **dense transient** — the PR 2/3 baseline workload (transistor
//!    level input interface, PRBS-7 @ 10 Gb/s, 1 ps fixed grid) whose
//!    runtime the analyzer must stay under 1 % of;
//! 3. **warm start** — Newton iteration counts for every builtin's
//!    operating point, cold (all-zeros start) versus warm
//!    (`warm_start_from_analysis`), asserting both converge to the
//!    same voltages;
//! 4. **soundness loop** — `check_op` on every builtin (the converged
//!    op must land inside the predicted interval bounds; zero
//!    violations tolerated) and `check_counters` against the dense
//!    transient's telemetry.
//!
//! Asserts `analyze_ms / dense_ms < 1 %` on the transient workload and
//! writes `BENCH_pr8.json` in the current directory.
//!
//! Run with: `cargo run --release --bin bench_pr8 [--smoke]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::input_interface::InputInterfaceConfig;
use cml_core::cells::{add_diff_drive, add_supply, input_interface, DiffPort};
use cml_lint::{builtin_circuit, BUILTIN_NAMES};
use cml_pdk::Pdk018;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_spice::analysis::tran::{self, TranConfig};
use cml_spice::analysis::NewtonOptions;
use cml_spice::analyze;
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use serde::Value;
use std::time::Instant;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

/// Transistor-level receive chain with a PRBS-7 differential drive —
/// the same workload shape as `bench_pr2`/`bench_pr3`.
fn build_workload(n_bits: usize) -> (Circuit, f64) {
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    (ckt, n_bits as f64 * UI)
}

/// Average wall-clock of `f` over `reps` runs, in milliseconds.
fn avg_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Newton iteration count for one op solve with the given options.
fn op_iterations(ckt: &Circuit, opts: &NewtonOptions) -> (u64, Vec<f64>) {
    let tel = Telemetry::enabled();
    let op = cml_spice::analysis::op::solve_traced(ckt, opts, None, &tel).expect("op converges");
    (
        tel.report().counters.newton_iterations,
        op.solution().to_vec(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_bits = if smoke { 8 } else { 40 };
    let reps = if smoke { 20 } else { 200 };

    // --- 1. Analyzer cost over every builtin block ---------------------
    let builtins: Vec<(String, Circuit)> = BUILTIN_NAMES
        .iter()
        .map(|n| ((*n).to_string(), builtin_circuit(n).expect("builtin")))
        .collect();
    let mut per_block = Vec::new();
    for (name, ckt) in &builtins {
        let ms = avg_ms(reps, || {
            let _ = analyze::analyze(ckt);
        });
        let report = analyze::analyze(ckt);
        println!(
            "  analyze {name:<9} {ms:9.4} ms  ({} findings, {} sweeps)",
            report.findings.len(),
            report.fixpoint.sweeps
        );
        per_block.push((name.clone(), ms, report));
    }

    // --- 2. Dense transient baseline and the < 1 % budget --------------
    let (ckt, t_stop) = build_workload(n_bits);
    let n_elems = ckt.elements().count();
    let analyze_ms = avg_ms(reps, || {
        let _ = analyze::analyze(&ckt);
    });
    let workload_report = analyze::analyze(&ckt);

    let mut dense_cfg = TranConfig::new(t_stop, 1e-12);
    dense_cfg.newton.sparse_threshold = usize::MAX;
    let tel = Telemetry::enabled_with_env_sinks();
    let t0 = Instant::now();
    let res = tran::run_traced(&ckt, &dense_cfg, &tel).expect("transient");
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;
    let overhead = analyze_ms / dense_ms;
    // The smoke transient is 5x truncated (8 bits vs 40) while the
    // analyzer's cost is fixed per circuit, so the smoke budget scales
    // accordingly; the full run must clear the real 1 % budget.
    let budget = if smoke { 0.05 } else { 0.01 };
    println!(
        "  analyze workload ({n_elems} elements) {analyze_ms:.4} ms, dense transient \
         {dense_ms:.1} ms ({} points): {:.4} % overhead",
        res.len(),
        overhead * 1e2
    );
    assert!(
        overhead < budget,
        "analyzer overhead {:.3} % exceeds the {:.0} % budget",
        overhead * 1e2,
        budget * 1e2
    );

    // The conditioning prediction must agree with what the solver then
    // did: no silent dense fallbacks on a predicted-clean system.
    let counter_violations = analyze::check_counters(&workload_report, &tel.report().counters);
    assert!(
        counter_violations.is_empty(),
        "counter prediction violated:\n{}",
        counter_violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // --- 3 + 4. Warm-start savings and the closed soundness loop -------
    let mut warm_rows = Vec::new();
    let mut iters_cold_total = 0u64;
    let mut iters_warm_total = 0u64;
    for (name, ckt) in &builtins {
        let report = analyze::analyze(ckt);
        let cold_opts = NewtonOptions::default();
        let warm_opts = NewtonOptions {
            warm_start_from_analysis: true,
            ..NewtonOptions::default()
        };
        let (iters_cold, x_cold) = op_iterations(ckt, &cold_opts);
        let (iters_warm, x_warm) = op_iterations(ckt, &warm_opts);
        // Both paths must land on the same operating point.
        for (a, b) in x_cold.iter().zip(&x_warm) {
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                "{name}: warm and cold ops disagree ({a} vs {b})"
            );
        }
        // Soundness: the converged op sits inside the predicted bounds.
        let op = cml_spice::analysis::op::solve_with(ckt, &cold_opts, None).expect("op");
        let violations = analyze::check_op(ckt, &report, &op);
        assert!(
            violations.is_empty(),
            "{name}: interval bounds violated by the converged op:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        println!("  warm start {name:<9} {iters_cold:3} -> {iters_warm:3} Newton iterations, op in bounds");
        iters_cold_total += iters_cold;
        iters_warm_total += iters_warm;
        warm_rows.push(obj(vec![
            ("block", Value::Str(name.clone())),
            ("newton_iters_cold", Value::Num(iters_cold as f64)),
            ("newton_iters_warm", Value::Num(iters_warm as f64)),
        ]));
    }
    println!(
        "  warm start total: {iters_cold_total} -> {iters_warm_total} Newton iterations \
         over {} blocks",
        builtins.len()
    );

    let blocks_json: Vec<Value> = per_block
        .iter()
        .map(|(name, ms, report)| {
            obj(vec![
                ("block", Value::Str(name.clone())),
                ("analyze_ms", Value::Num(*ms)),
                ("findings", Value::Num(report.findings.len() as f64)),
                ("fixpoint_sweeps", Value::Num(report.fixpoint.sweeps as f64)),
                ("fixpoint_converged", Value::Bool(report.fixpoint.converged)),
            ])
        })
        .collect();

    let json_report = obj(vec![
        ("bench", Value::Str("bench_pr8".into())),
        ("smoke", Value::Bool(smoke)),
        (
            "workload",
            Value::Str(format!(
                "input interface (transistor level), {n_elems} elements, \
                 PRBS-7 {n_bits} bits @ 10 Gb/s, dt 1 ps"
            )),
        ),
        ("analyze_reps", Value::Num(reps as f64)),
        ("analyze_workload_ms", Value::Num(analyze_ms)),
        ("dense_fixed_tran_ms", Value::Num(dense_ms)),
        ("analyze_overhead_frac", Value::Num(overhead)),
        ("overhead_budget_frac", Value::Num(budget)),
        ("builtin_blocks", Value::Arr(blocks_json)),
        ("warm_start", Value::Arr(warm_rows)),
        (
            "newton_iters_cold_total",
            Value::Num(iters_cold_total as f64),
        ),
        (
            "newton_iters_warm_total",
            Value::Num(iters_warm_total as f64),
        ),
        ("op_bound_violations", Value::Num(0.0)),
        ("counter_prediction_violations", Value::Num(0.0)),
        ("telemetry", tel.report().to_value()),
    ]);
    let json = serde_json::to_string_pretty(&json_report).expect("render BENCH_pr8.json");
    std::fs::write("BENCH_pr8.json", format!("{json}\n")).expect("write BENCH_pr8.json");
    println!("wrote BENCH_pr8.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
