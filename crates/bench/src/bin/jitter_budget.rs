//! Jitter budget of the full link: TIE extraction, RJ/DJ decomposition,
//! and the BER-extrapolated eye width — the quantitative version of the
//! paper's eye-diagram figures.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, prbs7_wave, UI};
use cml_channel::Backplane;
use cml_core::behav::{Block, IoLink};
use cml_sig::jitter::{self, bathtub};

fn main() {
    banner("Jitter budget - RJ/DJ decomposition and BER bathtub of the link");

    for (label, link) in [
        ("back-to-back", IoLink::back_to_back()),
        ("0.3 m backplane", with_channel(0.3)),
        ("0.5 m backplane", with_channel(0.5)),
    ] {
        let out = link.process(&prbs7_wave(0.5)).skip_initial(3e-9);
        let tie = jitter::tie(&out, UI);
        let j = jitter::decompose(&tie);
        println!("\n{label}:");
        println!(
            "  TJ(pp) {:5.1} ps | DJ(pp) {:5.1} ps | RJ(rms) {:4.2} ps over {} crossings",
            j.tj_pp * 1e12,
            j.dj_pp * 1e12,
            j.rj_rms * 1e12,
            tie.len()
        );
        for ber in [1e-9, 1e-12, 1e-15] {
            let w = jitter::eye_width_at_ber(UI, &j, ber);
            println!(
                "  eye width at BER {ber:>7.0e}: {:5.1} ps ({:4.1} % UI)",
                w * 1e12,
                w / UI * 100.0
            );
        }
    }

    // Bathtub curve for the nominal link.
    let out = IoLink::paper_default()
        .process(&prbs7_wave(0.5))
        .skip_initial(3e-9);
    let j = jitter::decompose(&jitter::tie(&out, UI));
    println!("\nbathtub (0.5 m link), sampling offset vs estimated BER:");
    for p in bathtub(UI, &j, 13) {
        let bar_len = ((-p.ber.log10()).clamp(0.0, 16.0) * 3.0) as usize;
        println!(
            "  {:+6.1} ps | {:8.1e} {}",
            p.offset * 1e12,
            p.ber,
            "#".repeat(bar_len)
        );
    }
    let _ = Backplane::fr4_trace(0.1);
}

fn with_channel(len: f64) -> IoLink {
    let mut link = IoLink::paper_default();
    link.channel = Some(Backplane::fr4_trace(len));
    link
}
