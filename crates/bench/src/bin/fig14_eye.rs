//! Fig. 14 — simulated eye diagram of the full I/O interface at 10 Gb/s
//! with a 2⁷−1 PRBS input: (a) 4 mVpp input, (b) 1.8 Vpp input; output
//! measured into 50 Ω, paper reports 250 mVpp either way (40 dB input
//! dynamic range, 4 mV sensitivity).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, eye_art, eye_metrics, fmt_eye, prbs7_wave};
use cml_core::behav::{Block, InputInterface, OutputInterface};
use cml_sig::measure;

fn panel(label: &str, amplitude: f64) {
    let rx = InputInterface::paper_default();
    // Back-to-back measurement: the pre-emphasis is tuned off (there is
    // no lossy channel between the interfaces to compensate).
    let tx = OutputInterface::without_peaking();
    // Input interface reshapes, output interface drives the 50 Ω line.
    let reshaped = rx.process(&prbs7_wave(amplitude));
    let out = tx.process(&reshaped);
    let m = eye_metrics(&out);
    println!("\n{label}");
    println!("input swing: {:.4} Vpp", amplitude);
    println!(
        "output swing into 50 Ohm: {:.1} mVpp (paper: 250 mVpp)",
        measure::swing(&out) * 1e3
    );
    println!("eye: {}", fmt_eye(&m));
    println!("{}", eye_art(&out));
}

fn main() {
    banner("Fig. 14 - I/O interface eye @ 10 Gb/s, PRBS 2^7-1 (behavioural)");
    panel("(a) input signal swing 4 mV", 4e-3);
    panel("(b) input signal swing 1.8 V", 1.8);

    let rx = InputInterface::paper_default();
    let small = eye_metrics(&rx.process(&prbs7_wave(4e-3)));
    let large = eye_metrics(&rx.process(&prbs7_wave(1.8)));
    let range_db = 20.0 * (1.8f64 / 4e-3).log10();
    println!(
        "\ninput dynamic range exercised: {range_db:.0} dB (paper: 40 dB), \
         eyes open at both extremes: {} / {}",
        small.height > 0.0,
        large.height > 0.0
    );
}
