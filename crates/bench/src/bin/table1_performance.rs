//! Table I — performance summary and comparison with the published
//! baselines \[7\] (Tao/Berroth) and \[5\] (Galal/Razavi).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::banner;
use cml_core::baselines::PublishedDesign;
use cml_core::{power, report};

fn main() {
    // `--json` emits the rows machine-readably for downstream tooling.
    if std::env::args().any(|a| a == "--json") {
        let rows = report::table_one();
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("rows serialize")
        );
        return;
    }
    banner("Table I - performance and comparison with published results");
    println!(
        "\n{:<18} {:<12} {:>8} {:>10} {:>11} {:>10} {:>9} {:>12}",
        "design", "process", "supply", "power", "data rate", "BW(-3dB)", "DC gain", "core area"
    );
    for row in report::table_one() {
        println!("{}", row.formatted());
    }

    println!("\npower breakdown (this work):");
    for item in power::io_interface().items() {
        println!("  {:<26} {:6.2} mA", item.name, item.current * 1e3);
    }
    let total = power::io_interface();
    println!(
        "  {:<26} {:6.2} mA  = {:.1} mW at {} V",
        "total",
        total.total_current() * 1e3,
        total.total_power() * 1e3,
        cml_pdk::VDD
    );

    println!("\narea accounting (this work):");
    for b in [
        cml_core::area::input_interface(),
        cml_core::area::output_interface(),
        cml_core::area::bmvr(),
        cml_core::area::io_interface(),
    ] {
        println!(
            "  {:<26} {:8.4} mm2  ({} devices)",
            b.name(),
            b.total_mm2(),
            b.num_devices()
        );
    }
    let spirals = cml_core::area::io_interface_with_spirals().total_m2();
    let active = cml_core::area::io_interface().total_m2();
    println!(
        "  spiral-inductor counterfactual: {:.4} mm2 -> active inductors save {:.0} % \
         (paper: 80 %)",
        spirals * 1e6,
        (1.0 - active / spirals) * 100.0
    );

    println!("\nenergy per bit:");
    let ours = report::this_work();
    println!(
        "  this work          {:.1} pJ/bit",
        ours.power / ours.data_rate * 1e12
    );
    for d in [
        PublishedDesign::tao_berroth(),
        PublishedDesign::galal_razavi(),
    ] {
        println!("  {:<18} {:.1} pJ/bit", d.name, d.energy_per_bit() * 1e12);
    }
}
