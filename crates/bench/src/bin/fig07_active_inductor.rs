//! Fig. 7 — CML buffer with active-inductor control: (a) time-domain
//! step response, (b) frequency response, both versus PMOS load size.
//!
//! Transistor-level analyses of `cml_core::cells::cml_buffer`. Claims to
//! reproduce: the active inductor's inductive peaking extends bandwidth
//! over the plain load, and the gain/bandwidth trade is adjusted by the
//! PMOS device size.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::banner;
use cml_core::cells::cml_buffer::{self, CmlBufferConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_pdk::Pdk018;
use cml_sig::{measure, Bode, UniformWave};
use cml_spice::prelude::*;

const C_LOAD: f64 = 30e-15;

fn build_buffer(cfg: &CmlBufferConfig, step_input: bool) -> (Circuit, DiffPort) {
    let pdk = Pdk018::typical();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    let cm = cml_buffer::output_common_mode(cfg);
    let wf = step_input.then(|| {
        Waveform::Pwl(vec![
            (0.0, cm - 0.125),
            (100e-12, cm - 0.125),
            (110e-12, cm + 0.125),
            (400e-12, cm + 0.125),
            (410e-12, cm - 0.125),
        ])
    });
    add_diff_drive(&mut ckt, "VIN", input, cm, wf);
    cml_buffer::build(&mut ckt, &pdk, cfg, "buf", input, output, vdd);
    ckt.add(Capacitor::new("CLP", output.p, Circuit::GROUND, C_LOAD));
    ckt.add(Capacitor::new("CLN", output.n, Circuit::GROUND, C_LOAD));
    (ckt, output)
}

fn buffer_bode(cfg: &CmlBufferConfig) -> Bode {
    let (ckt, output) = build_buffer(cfg, false);
    let freqs = logspace(1e7, 60e9, 81);
    cml_core::freq::differential_bode(&ckt, output, &freqs).expect("buffer AC")
}

fn buffer_step(cfg: &CmlBufferConfig) -> UniformWave {
    let (ckt, output) = build_buffer(cfg, true);
    let tran = cml_spice::analysis::tran::run(&ckt, &TranConfig::new(0.6e-9, 1e-12))
        .expect("buffer transient");
    let diff = tran.differential(output.p, output.n);
    UniformWave::from_series(tran.times(), &diff, 1e-12)
}

fn main() {
    banner("Fig. 7 - CML buffer active-inductor control (transistor level)");

    println!("\n(a) time-domain response of a 250 mV step vs active inductor");
    println!(
        "{:<28} | {:>12} {:>12} {:>12}",
        "configuration", "rise (ps)", "overshoot %", "swing (mV)"
    );
    let mut plain = CmlBufferConfig::paper_default();
    plain.feedback_frac = 0.0;
    plain.neg_miller = 0.0;
    plain.r_gate = 0.0;
    for (name, r_gate) in [
        ("plain diode load", 0.0),
        ("active inductor Rg = 0.4 kOhm", 400.0),
        ("active inductor Rg = 0.8 kOhm", 800.0),
        ("active inductor Rg = 2.0 kOhm", 2e3),
    ] {
        let cfg = CmlBufferConfig {
            r_gate,
            ..plain.clone()
        };
        let w = buffer_step(&cfg).skip_initial(50e-12);
        let rise = measure::rise_time(&w).map_or(f64::NAN, |t| t * 1e12);
        println!(
            "{name:<28} | {rise:>12.1} {:>12.1} {:>12.1}",
            measure::overshoot(&w) * 100.0,
            measure::swing(&w) * 1e3
        );
    }

    println!("\n(b) frequency response vs PMOS load size (and Rg)");
    println!(
        "{:<28} | {:>9} {:>10} {:>10}",
        "configuration", "DC (dB)", "f3dB (GHz)", "peak (dB)"
    );
    for (name, pmos_scale, r_gate) in [
        ("PMOS x0.7, plain", 0.7, 0.0),
        ("PMOS x1.0, plain", 1.0, 0.0),
        ("PMOS x2.0, plain", 2.0, 0.0),
        ("PMOS x0.7, active inductor", 0.7, 400.0),
        ("PMOS x1.0, active inductor", 1.0, 400.0),
        ("PMOS x2.0, active inductor", 2.0, 400.0),
    ] {
        let cfg = CmlBufferConfig {
            pmos_scale,
            r_gate,
            ..plain.clone()
        };
        let bode = buffer_bode(&cfg);
        println!(
            "{name:<28} | {:>9.2} {:>10.2} {:>10.2}",
            bode.dc_gain_db(),
            bode.bandwidth_3db().map_or(f64::NAN, |b| b / 1e9),
            bode.peaking_db()
        );
    }

    let bw_plain = buffer_bode(&plain).bandwidth_3db().unwrap_or(0.0);
    let with = CmlBufferConfig {
        r_gate: 400.0,
        ..plain.clone()
    };
    let bw_ind = buffer_bode(&with).bandwidth_3db().unwrap_or(0.0);
    println!(
        "\nActive-inductor bandwidth extension: {:.2}x \
         (paper: inductive peaking enables 10 Gb/s operation)",
        bw_ind / bw_plain
    );
}
