//! §III.E — beta-multiplier voltage reference: temperature coefficient,
//! supply sensitivity and trimming range (transistor-level DC sweeps).
//!
//! Paper claims: tunable within 10 mV of a desired value, tempco below
//! 550 ppm/°C, supply sensitivity under 26 mV/V.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::banner;
use cml_core::cells::bmvr::{self, solve_vref, BmvrConfig};
use cml_pdk::{Corner, Pdk018};
use cml_spice::prelude::*;

fn main() {
    banner("§III.E - beta-multiplier voltage reference sweeps");
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    let cfg = BmvrConfig::paper_default();

    println!("\ntemperature sweep at VDD = 1.8 V (TT corner, {threads} threads):");
    println!("{:>8} | {:>10}", "T (degC)", "Vref (V)");
    let temps = [-40.0, -20.0, 0.0, 27.0, 50.0, 75.0, 100.0, 125.0];
    let vrefs = cml_runner::par_map(threads, &temps, |_, &t| {
        solve_vref(&Pdk018::new(Corner::Tt, t), &cfg, 1.8).expect("bmvr op")
    });
    for (t, v) in temps.iter().zip(&vrefs) {
        println!("{t:>8.0} | {v:>10.4}");
    }
    let v_nom = vrefs[3];
    let spread = vrefs.iter().cloned().fold(f64::MIN, f64::max)
        - vrefs.iter().cloned().fold(f64::MAX, f64::min);
    let tc = spread / (165.0 * v_nom) * 1e6;
    println!("tempco over -40..125 degC: {tc:.0} ppm/degC (paper: < 550)");

    println!("\nsupply sweep at 27 degC:");
    println!("{:>8} | {:>10}", "VDD (V)", "Vref (V)");
    let supplies = [1.6, 1.7, 1.8, 1.9, 2.0];
    let pdk = Pdk018::typical();
    let vs = cml_runner::par_map(threads, &supplies, |_, &vdd| {
        solve_vref(&pdk, &cfg, vdd).expect("bmvr op")
    });
    for (vdd, v) in supplies.iter().zip(&vs) {
        println!("{vdd:>8.1} | {v:>10.4}");
    }
    let sens = (vs[4] - vs[0]).abs() / 0.4 * 1e3;
    println!("supply sensitivity: {sens:.1} mV/V (paper: < 26)");

    // Small-signal cross-check: ride a 1 V AC perturbation on VDD and read
    // |vref(jw)| directly — at low frequency this is dVref/dVDD, the same
    // quantity the finite-difference sweep above estimates.
    let mut ckt = Circuit::new();
    let vdd_node = ckt.node("vdd");
    ckt.add(Vsource::dc("VDD", vdd_node, Circuit::GROUND, 1.8).with_ac(1.0));
    let vref_node = bmvr::build(&mut ckt, &pdk, &cfg, "bmvr", vdd_node);
    let ac_freqs = cml_numeric::logspace(1e3, 1e9, 13);
    let ac = cml_spice::analysis::ac::sweep_auto_with(
        &ckt,
        &ac_freqs,
        &cml_spice::analysis::NewtonOptions::default(),
        threads,
    )
    .expect("bmvr ac");
    let ac_sens = ac.voltage(vref_node, 0).abs() * 1e3;
    println!("small-signal PSRR at 1 kHz: {ac_sens:.1} mV/V (AC leg, matches DC sweep)");

    println!("\ntrim sweep (R_s) at nominal conditions:");
    println!("{:>10} | {:>10}", "R_s (kOhm)", "Vref (V)");
    let trims = [0.9e3, 1.0e3, 1.1e3, 1.2e3, 1.3e3, 1.4e3];
    let trim_vrefs = cml_runner::par_map(threads, &trims, |_, &rs| {
        let mut c = cfg.clone();
        c.r_s = rs;
        solve_vref(&pdk, &c, 1.8).expect("bmvr op")
    });
    for (rs, v) in trims.iter().zip(&trim_vrefs) {
        println!("{:>10.1} | {v:>10.4}", rs / 1e3);
    }
    println!("(adjacent trim steps move Vref by ~10 mV — the paper's trim resolution)");

    println!("\nprocess corners at 27 degC, VDD = 1.8 V:");
    println!("{:>8} | {:>10}", "corner", "Vref (V)");
    let corner_vrefs = cml_runner::par_map(threads, &Corner::ALL, |_, &corner| {
        solve_vref(&Pdk018::new(corner, 27.0), &cfg, 1.8).expect("bmvr op")
    });
    for (corner, v) in Corner::ALL.iter().zip(&corner_vrefs) {
        println!("{:>8} | {v:>10.4}", corner.name());
    }
}
