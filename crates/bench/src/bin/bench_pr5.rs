//! PR benchmark: solver-telemetry overhead and counter determinism.
//!
//! Re-runs the two hottest committed workloads — the PR 2 transistor-level
//! PRBS-7 transient eye (sparse LU + LTE-adaptive stepping) and the PR 4
//! sparse parallel AC sweep of the limiting amplifier — twice each:
//!
//! 1. **telemetry off** — `Telemetry::disabled()`, the zero-cost path every
//!    untraced entry point uses;
//! 2. **telemetry on** — a fresh enabled handle per repetition, coarse
//!    spans + counters recording (the default `CML_TELEMETRY=1` mode).
//!
//! Wall-clock is the per-leg median over interleaved off/on rounds so
//! scheduler noise and drift do not masquerade as instrumentation cost.
//! Asserts the enabled overhead
//! stays under the 2 % acceptance budget (full run only — the smoke grids
//! are too small to time), that counter totals from the AC sweep are
//! bit-identical across 1/2/N worker threads, and that neither workload
//! ever fell back to the dense solver. Writes `BENCH_pr5.json` (with the
//! full telemetry counter block of the traced runs) in the current
//! directory; `CML_TELEMETRY=json:...|trace:...` attaches file sinks on
//! top.
//!
//! Run with: `cargo run --release --bin bench_pr5 [--smoke] [--threads N]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::input_interface::InputInterfaceConfig;
use cml_core::cells::limiting_amp::{self, LimitingAmpConfig};
use cml_core::cells::{add_diff_drive, add_supply, input_interface, DiffPort};
use cml_numeric::logspace;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_spice::analysis::tran::{self, TranConfig};
use cml_spice::analysis::{ac, op, NewtonOptions};
use cml_spice::prelude::*;
use cml_spice::telemetry::{Counters, Telemetry};
use serde::Value;
use std::time::Instant;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

/// Enabled-vs-disabled overhead budget on each workload.
const OVERHEAD_BUDGET: f64 = 0.02;

/// The PR 2 eye workload: transistor-level receive chain, PRBS-7 drive.
fn build_tran_workload(n_bits: usize) -> (Circuit, f64) {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    (ckt, n_bits as f64 * UI)
}

/// The PR 4 AC workload: transistor-level limiting amplifier.
fn build_ac_workload() -> Circuit {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = LimitingAmpConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        limiting_amp::common_mode(&cfg),
        None,
    );
    limiting_amp::build(&mut ckt, &pdk, &cfg, "la", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    ckt
}

/// Median wall-clock of the off/on legs over `reps` interleaved rounds,
/// in milliseconds. Interleaving means slow drift (thermal, scheduler)
/// hits both legs alike instead of biasing whichever ran second; the
/// median discards both stall outliers and lucky minima, which on a
/// shared host scatter several percent either way — more than the
/// instrumentation cost being measured.
fn median_pair_ms<F: FnMut(), G: FnMut()>(reps: usize, mut off: F, mut on: G) -> (f64, f64) {
    let (mut offs, mut ons) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        let t0 = Instant::now();
        off();
        offs.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        on();
        ons.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };
    (median(&mut offs), median(&mut ons))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn overhead_block(name: &str, off_ms: f64, on_ms: f64) -> (f64, Value) {
    let overhead = (on_ms - off_ms) / off_ms;
    println!(
        "  {name:<14} off {off_ms:9.1} ms | on {on_ms:9.1} ms | overhead {:+.3} %",
        overhead * 1e2
    );
    let block = obj(vec![
        ("telemetry_off_ms", Value::Num(off_ms)),
        ("telemetry_on_ms", Value::Num(on_ms)),
        ("overhead_frac", Value::Num(overhead)),
        ("overhead_budget_frac", Value::Num(OVERHEAD_BUDGET)),
    ]);
    (overhead, block)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_bits = if smoke { 8 } else { 40 };
    let n_points = if smoke { 120 } else { 1200 };
    let reps = if smoke { 1 } else { 15 };
    // The AC sweep is ~6 ms of work fanned across threads: scheduler
    // jitter per round dwarfs any instrumentation cost, so it takes many
    // more interleaved rounds for the minima to converge.
    let ac_reps = if smoke { 1 } else { 25 };
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let par_threads = cml_runner::threads_flag(std::env::args())
        .unwrap_or(host_threads)
        .max(4);

    // --- Workload 1: PR 2 transient eye, sparse adaptive stepping. ---
    let (tran_ckt, t_stop) = build_tran_workload(n_bits);
    let mut tran_cfg = TranConfig::new(t_stop, 1e-12).adaptive();
    tran_cfg.newton.sparse_threshold = 1;
    println!(
        "tran workload: input interface, PRBS-7 {n_bits} bits @ 10 Gb/s, \
         sparse adaptive{}",
        if smoke { " (smoke)" } else { "" }
    );

    // Untimed warmup so the first timed leg is not charged the cold caches.
    tran::run_traced(&tran_ckt, &tran_cfg, &Telemetry::disabled()).expect("tran warmup");
    let (tran_off_ms, tran_on_ms) = median_pair_ms(
        reps,
        || {
            tran::run_traced(&tran_ckt, &tran_cfg, &Telemetry::disabled()).expect("tran off");
        },
        || {
            let tel = Telemetry::enabled();
            tran::run_traced(&tran_ckt, &tran_cfg, &tel).expect("tran on");
        },
    );
    // One env-sink handle carries the merged per-workload recordings, so
    // `CML_TELEMETRY=json:...|trace:...` sees both workloads in one file.
    let tel = Telemetry::enabled_with_env_sinks();

    // One more traced run whose report lands in the JSON.
    let tran_tel = tel.probe().fork(0);
    tran::run_traced(&tran_ckt, &tran_cfg, &tran_tel).expect("tran traced");
    let tran_report = tran_tel.report();
    tel.absorb(tran_tel.into_parts());
    let (tran_overhead, tran_block) = overhead_block("tran eye", tran_off_ms, tran_on_ms);

    // --- Workload 2: PR 4 sparse parallel AC sweep. ---
    let ac_ckt = build_ac_workload();
    let freqs = logspace(1e2, 60e9, n_points);
    let sparse_opts = NewtonOptions {
        sparse_threshold: 1,
        ..NewtonOptions::default()
    };
    let x_op = op::solve(&ac_ckt).expect("operating point");
    println!(
        "ac workload: limiting amplifier, {n_points}-point sweep 100 Hz .. 60 GHz, \
         {par_threads} threads"
    );

    // Untimed warmup (thread pool + caches) before the off/on pair.
    ac::sweep_traced(
        &ac_ckt,
        x_op.solution(),
        &freqs,
        &sparse_opts,
        par_threads,
        &Telemetry::disabled(),
    )
    .expect("ac warmup");
    let (ac_off_ms, ac_on_ms) = median_pair_ms(
        ac_reps,
        || {
            ac::sweep_traced(
                &ac_ckt,
                x_op.solution(),
                &freqs,
                &sparse_opts,
                par_threads,
                &Telemetry::disabled(),
            )
            .expect("ac off");
        },
        || {
            let tel = Telemetry::enabled();
            ac::sweep_traced(
                &ac_ckt,
                x_op.solution(),
                &freqs,
                &sparse_opts,
                par_threads,
                &tel,
            )
            .expect("ac on");
        },
    );
    let (ac_overhead, ac_block) = overhead_block("ac sweep", ac_off_ms, ac_on_ms);

    // --- Counter determinism: totals must not depend on the fan-out. ---
    let counters_at = |threads: usize| -> Counters {
        let tel = Telemetry::enabled();
        ac::sweep_traced(
            &ac_ckt,
            x_op.solution(),
            &freqs,
            &sparse_opts,
            threads,
            &tel,
        )
        .expect("ac determinism run");
        tel.report().counters
    };
    let c1 = counters_at(1);
    let c2 = counters_at(2);
    let cn = counters_at(par_threads);
    let deterministic = c1 == c2 && c2 == cn;
    println!(
        "  counters identical across 1/2/{par_threads} threads: {deterministic} \
         ({} AC points, {:.0} % sparse)",
        c1.ac_points,
        c1.ac_sparse_fraction() * 1e2
    );
    assert!(
        deterministic,
        "telemetry counters depend on the thread count:\n 1: {c1:?}\n 2: {c2:?}\n{par_threads}: {cn:?}"
    );

    // Both workloads must have stayed on the sparse path end to end.
    let ac_report = {
        let ac_tel = tel.probe().fork(0);
        ac::sweep_traced(
            &ac_ckt,
            x_op.solution(),
            &freqs,
            &sparse_opts,
            par_threads,
            &ac_tel,
        )
        .expect("ac traced");
        let report = ac_tel.report();
        tel.absorb(ac_tel.into_parts());
        report
    };
    assert_eq!(
        tran_report.counters.dense_fallbacks, 0,
        "transient workload fell back to the dense solver"
    );
    assert_eq!(
        ac_report.counters.dense_fallbacks, 0,
        "AC workload lost its sparse reference"
    );
    assert!(
        tran_report.check_well_nested().is_ok(),
        "transient spans are not well-nested"
    );

    // The overhead gate only binds on the full workload: smoke grids are
    // small enough that process startup noise dominates the ratio.
    if !smoke {
        assert!(
            tran_overhead < OVERHEAD_BUDGET,
            "transient telemetry overhead {:.2} % exceeds the {:.0} % budget",
            tran_overhead * 1e2,
            OVERHEAD_BUDGET * 1e2
        );
        assert!(
            ac_overhead < OVERHEAD_BUDGET,
            "AC telemetry overhead {:.2} % exceeds the {:.0} % budget",
            ac_overhead * 1e2,
            OVERHEAD_BUDGET * 1e2
        );
    }

    let report = obj(vec![
        ("bench", Value::Str("bench_pr5".into())),
        ("smoke", Value::Bool(smoke)),
        ("host_threads", Value::Num(host_threads as f64)),
        ("parallel_threads", Value::Num(par_threads as f64)),
        ("reps", Value::Num(reps as f64)),
        ("ac_reps", Value::Num(ac_reps as f64)),
        (
            "tran_eye",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!(
                        "input interface (transistor level), PRBS-7 {n_bits} bits \
                         @ 10 Gb/s, sparse adaptive"
                    )),
                ),
                ("timing", tran_block),
                ("telemetry", tran_report.to_value()),
            ]),
        ),
        (
            "ac_sweep",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!(
                        "limiting amplifier (transistor level), {n_points}-point \
                         AC sweep 100 Hz .. 60 GHz, {par_threads} threads"
                    )),
                ),
                ("timing", ac_block),
                ("counters_thread_invariant", Value::Bool(deterministic)),
                ("telemetry", ac_report.to_value()),
            ]),
        ),
        (
            "dense_fallbacks",
            Value::Num(
                (tran_report.counters.dense_fallbacks + ac_report.counters.dense_fallbacks) as f64,
            ),
        ),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("render BENCH_pr5.json");
    std::fs::write("BENCH_pr5.json", format!("{json}\n")).expect("write BENCH_pr5.json");
    println!("wrote BENCH_pr5.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
