//! Fig. 16 — output-interface waveform (a) without and (b) with the
//! voltage-peaking circuit, 10 Gb/s PRBS-7, plus the post-channel eye
//! benefit that motivates the pre-emphasis.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, eye_art, eye_metrics, fmt_eye, prbs7_wave, UI};
use cml_channel::Backplane;
use cml_core::behav::{Block, OutputInterface};
use cml_core::cells::output_stage::{build_output_interface, OutputInterfaceConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_pdk::Pdk018;
use cml_sig::measure;
use cml_sig::nrz::NrzConfig;
use cml_sig::UniformWave;
use cml_spice::prelude::*;

/// Transistor-level run of the Fig. 3 output interface.
fn transistor_waveform(peaking: bool) -> UniformWave {
    let pdk = Pdk018::typical();
    let cfg = if peaking {
        OutputInterfaceConfig::paper_default()
    } else {
        OutputInterfaceConfig::without_peaking()
    };
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let output = DiffPort::named(&mut ckt, "out");
    let bits: Vec<bool> = (0..16).map(|i| (i / 4) % 2 == 0).collect();
    let cm = 1.55;
    let pwl = NrzConfig::new(UI, 0.25).with_offset(cm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, cm, Some(Waveform::Pwl(pwl)));
    build_output_interface(&mut ckt, &pdk, &cfg, "oi", input, output, vdd);
    ckt.add(Resistor::new("RTp", vdd, output.p, 50.0));
    ckt.add(Resistor::new("RTn", vdd, output.n, 50.0));
    let tran = cml_spice::analysis::tran::run(&ckt, &TranConfig::new(1.6e-9, 1e-12)).expect("tran");
    UniformWave::from_series(tran.times(), &tran.differential(output.p, output.n), 1e-12)
        .skip_initial(0.15e-9)
}

fn emphasis(w: &UniformWave) -> f64 {
    let abs: Vec<f64> = w.samples().iter().map(|v| v.abs()).collect();
    cml_numeric::stats::max(&abs).expect("non-empty")
        / cml_numeric::stats::percentile(&abs, 50.0).expect("non-empty")
        - 1.0
}

fn main() {
    banner("Fig. 16 - output interface +/- voltage peaking");
    // TX waveform overshoot: use a sparse pattern so the settled rails
    // are unambiguous (the paper's scope shot shows isolated spikes).
    let bits: Vec<bool> = (0..64).map(|i| (i / 8) % 2 == 0).collect();
    let slow = NrzConfig::new(UI, 0.5).render(&bits);

    let plain = OutputInterface::without_peaking().process(&slow);
    let peaked = OutputInterface::paper_default().process(&slow);
    println!("\n(a) output signal without voltage peaking");
    println!(
        "swing {:.1} mVpp, overshoot {:.1} %",
        measure::swing(&plain) * 1e3,
        measure::overshoot(&plain) * 100.0
    );
    println!("(b) output signal with voltage peaking");
    println!(
        "swing {:.1} mVpp, overshoot {:.1} % (paper: tuning range up to 20 %)",
        measure::swing(&peaked) * 1e3,
        measure::overshoot(&peaked) * 100.0
    );

    // Transistor-level version of the same experiment (Fig. 3 netlist:
    // level shift, tapered stages, delay cell + Gilbert differentiator
    // boosting the final tail).
    println!("\ntransistor-level output interface (2^2-spaced 10 Gb/s pattern):");
    let t_plain = transistor_waveform(false);
    let t_peak = transistor_waveform(true);
    println!(
        "  without peaking: swing {:.1} mVpp, transition emphasis {:.1} %",
        measure::swing(&t_plain) * 1e3,
        emphasis(&t_plain) * 100.0
    );
    println!(
        "  with peaking:    swing {:.1} mVpp, transition emphasis {:.1} % (paper: up to 20 %)",
        measure::swing(&t_peak) * 1e3,
        emphasis(&t_peak) * 100.0
    );

    // Post-channel benefit at 10 Gb/s PRBS-7.
    let trace = Backplane::fr4_trace(0.4);
    let data = prbs7_wave(0.5);
    let rx_plain = trace.apply(&OutputInterface::without_peaking().process(&data), true);
    let rx_peaked = trace.apply(&OutputInterface::paper_default().process(&data), true);
    let m_plain = eye_metrics(&rx_plain);
    let m_peaked = eye_metrics(&rx_peaked);
    println!(
        "\npost-channel eye (0.4 m trace, {:.1} dB @ 5 GHz):",
        trace.attenuation_db(5e9)
    );
    println!("  without peaking: {}", fmt_eye(&m_plain));
    println!("{}", eye_art(&rx_plain));
    println!("  with peaking:    {}", fmt_eye(&m_peaked));
    println!("{}", eye_art(&rx_peaked));
    println!(
        "peaking benefit: height {:.1} -> {:.1} mV, width {:.1} -> {:.1} ps",
        m_plain.height * 1e3,
        m_peaked.height * 1e3,
        m_plain.width * 1e12,
        m_peaked.width * 1e12
    );
}
