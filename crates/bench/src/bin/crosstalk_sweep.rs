//! Multi-lane deployment stress (the paper's Fig. 1 switch fabric):
//! eye degradation versus adjacent-lane crosstalk coupling, over the
//! full composite channel (line card → connector → backplane →
//! connector → line card).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, eye_metrics, fmt_eye, prbs7_wave, UI};
use cml_channel::crosstalk::Crosstalk;
use cml_channel::segments::CompositeChannel;
use cml_core::behav::{Block, InputInterface, OutputInterface};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::UniformWave;

fn main() {
    banner("Crosstalk sweep - adjacent-lane aggressor over the switch-fabric path");
    let path = CompositeChannel::switch_fabric_path(0.35);
    println!(
        "channel: line card + 2 connectors + 0.35 m backplane, {:.1} dB @ 5 GHz, {:.2} ns delay",
        path.attenuation_db(5e9),
        path.total_delay() * 1e9
    );

    // Victim and (phase-offset) aggressor lanes.
    let victim_tx = OutputInterface::paper_default().process(&prbs7_wave(0.5));
    let aggressor_bits: Vec<bool> = Prbs::with_seed(7, (7, 1), 0x2B).take(381).collect();
    let aggressor_tx = NrzConfig::new(UI, 0.5).render(&aggressor_bits);
    // Rotate the aggressor half a UI so its edges hit the victim's eye center.
    let n = aggressor_tx.len();
    let rotated: Vec<f64> = (0..n)
        .map(|i| aggressor_tx.samples()[(i + 16) % n])
        .collect();
    let aggressor = UniformWave::new(aggressor_tx.t0(), aggressor_tx.dt(), rotated);

    let received = path.apply(&victim_tx, true);
    let mut rx = InputInterface::paper_default();
    rx.equalizer.boost = 1.5;

    println!(
        "\n{:>12} | receiver output eye (after equalizer + LA)",
        "coupling k"
    );
    for k_ps in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let xt = Crosstalk::new(k_ps * 1e-12);
        let noisy = xt.inject(&received, &aggressor);
        let out = rx.process(&noisy);
        let m = eye_metrics(&out);
        println!("{k_ps:>9.2} ps | {}", fmt_eye(&m));
    }
    println!(
        "\n(coupling k is the derivative gain of the aggressor edge into the\n\
         victim; 0.5 ps ≈ a typical adjacent stripline pair)"
    );
}
