//! §III.C motivation — Monte-Carlo DC-offset study of the limiting
//! amplifier: how device mismatch amplified through the gain chain
//! smears the output, and what the offset-cancellation loop recovers.

use cml_bench::banner;
use cml_core::montecarlo::{self, paper_default_study_par, vth_sigma};
use cml_numeric::stats;

fn main() {
    banner("§III.C - Monte-Carlo offset study of the limiting amplifier");
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    let sigma = vth_sigma(34e-6, cml_pdk::L_MIN);
    println!(
        "\nPelgrom mismatch (A_VT = {} mV*um): per-pair sigma(dVTH) = {:.2} mV \
         at W = 34 um, L = 0.18 um",
        montecarlo::A_VT * 1e9,
        sigma * 1e3
    );

    let n = 10_000;
    let study = paper_default_study_par(n, 0xC0FFEE, threads);
    println!("\n{n} Monte-Carlo samples through the 4-stage LA ({threads} threads):");
    println!(
        "  input-referred offset sigma : {:6.2} mV",
        study.input_sigma() * 1e3
    );
    println!(
        "  raw output offset sigma     : {:6.1} mV (gain-amplified, clamped at +/-250 mV)",
        study.raw_sigma() * 1e3
    );
    println!(
        "  cancelled output sigma      : {:6.2} mV (with the Fig. 8 feedback loop)",
        study.cancelled_sigma() * 1e3
    );
    println!(
        "  eye-smearing failures (|offset| > swing/2), raw: {:.2} %",
        study.raw_failure_rate(0.5) * 100.0
    );

    // Distribution tails.
    let p = |xs: &[f64], q: f64| stats::percentile(xs, q).unwrap_or(0.0) * 1e3;
    println!("\nraw output offset distribution (mV):");
    println!(
        "  p1 {:7.1} | p25 {:7.1} | p50 {:7.1} | p75 {:7.1} | p99 {:7.1}",
        p(&study.raw_outputs, 1.0),
        p(&study.raw_outputs, 25.0),
        p(&study.raw_outputs, 50.0),
        p(&study.raw_outputs, 75.0),
        p(&study.raw_outputs, 99.0)
    );
    println!("cancelled output offset distribution (mV):");
    println!(
        "  p1 {:7.2} | p25 {:7.2} | p50 {:7.2} | p75 {:7.2} | p99 {:7.2}",
        p(&study.cancelled_outputs, 1.0),
        p(&study.cancelled_outputs, 25.0),
        p(&study.cancelled_outputs, 50.0),
        p(&study.cancelled_outputs, 75.0),
        p(&study.cancelled_outputs, 99.0)
    );
    println!(
        "\nThe cancellation loop recovers ~{:.0}x — the paper's rationale for the\n\
         passive low-pass feedback network of Fig. 8.",
        study.raw_sigma() / study.cancelled_sigma()
    );
}
