//! §III.C motivation — Monte-Carlo DC-offset study of the limiting
//! amplifier: how device mismatch amplified through the gain chain
//! smears the output, and what the offset-cancellation loop recovers.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::banner;
use cml_core::montecarlo::{self, run_offset_study_batched, run_offset_study_par, vth_sigma};
use cml_core::yield_est::{behavioral_offset_yield, ChainSpec, YieldConfig};
use cml_numeric::stats;

fn main() {
    banner("§III.C - Monte-Carlo offset study of the limiting amplifier");
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    let no_batch = std::env::args().any(|a| a == "--no-batch");
    let sigma = vth_sigma(34e-6, cml_pdk::L_MIN);
    println!(
        "\nPelgrom mismatch (A_VT = {} mV*um): per-pair sigma(dVTH) = {:.2} mV \
         at W = 34 um, L = 0.18 um",
        montecarlo::A_VT * 1e9,
        sigma * 1e3
    );

    let n = 10_000;
    let (seed, gain, swing, loop_gain) = (0xC0FFEE, 2.3, 0.5, 31.6);
    let study = if no_batch {
        run_offset_study_par(n, gain, sigma, swing, loop_gain, seed, threads)
    } else {
        // The lane-packed kernel evaluates the same per-lane f64 chain,
        // so the batched study is *bit-identical* to the scalar one —
        // assert that here, where a regression would be visible first.
        let batched = run_offset_study_batched(n, gain, sigma, swing, loop_gain, seed, threads);
        let scalar = run_offset_study_par(n, gain, sigma, swing, loop_gain, seed, threads);
        let worst = batched
            .raw_outputs
            .iter()
            .zip(&scalar.raw_outputs)
            .chain(
                batched
                    .cancelled_outputs
                    .iter()
                    .zip(&scalar.cancelled_outputs),
            )
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst <= 1e-9,
            "batched study disagrees with scalar by {worst:.3e}"
        );
        batched
    };
    let engine = if no_batch { "scalar" } else { "batched" };
    println!(
        "\n{n} Monte-Carlo samples through the 4-stage LA ({threads} threads, {engine} engine):"
    );
    println!(
        "  input-referred offset sigma : {:6.2} mV",
        study.input_sigma() * 1e3
    );
    println!(
        "  raw output offset sigma     : {:6.1} mV (gain-amplified, clamped at +/-250 mV)",
        study.raw_sigma() * 1e3
    );
    println!(
        "  cancelled output sigma      : {:6.2} mV (with the Fig. 8 feedback loop)",
        study.cancelled_sigma() * 1e3
    );
    println!(
        "  eye-smearing failures (|offset| > swing/2), raw: {:.2} %",
        study.raw_failure_rate(0.5) * 100.0
    );

    // Distribution tails.
    let p = |xs: &[f64], q: f64| stats::percentile(xs, q).unwrap_or(0.0) * 1e3;
    println!("\nraw output offset distribution (mV):");
    println!(
        "  p1 {:7.1} | p25 {:7.1} | p50 {:7.1} | p75 {:7.1} | p99 {:7.1}",
        p(&study.raw_outputs, 1.0),
        p(&study.raw_outputs, 25.0),
        p(&study.raw_outputs, 50.0),
        p(&study.raw_outputs, 75.0),
        p(&study.raw_outputs, 99.0)
    );
    println!("cancelled output offset distribution (mV):");
    println!(
        "  p1 {:7.2} | p25 {:7.2} | p50 {:7.2} | p75 {:7.2} | p99 {:7.2}",
        p(&study.cancelled_outputs, 1.0),
        p(&study.cancelled_outputs, 25.0),
        p(&study.cancelled_outputs, 50.0),
        p(&study.cancelled_outputs, 75.0),
        p(&study.cancelled_outputs, 99.0)
    );
    println!(
        "\nThe cancellation loop recovers ~{:.0}x — the paper's rationale for the\n\
         passive low-pass feedback network of Fig. 8.",
        study.raw_sigma() / study.cancelled_sigma()
    );

    // Streaming per-sigma yield table: fail probability at k*sigma_raw
    // thresholds (k = 1..4) plus the eye criterion swing/2, raw vs
    // cancelled, through the importance-capable streaming estimator.
    let sigma_raw = study.raw_sigma();
    let mut thresholds: Vec<f64> = (1..=4).map(|k| k as f64 * sigma_raw).collect();
    thresholds.push(swing / 2.0);
    let cfg = YieldConfig::new(n, seed).with_threads(threads);
    let chain = ChainSpec {
        stage_gain: gain,
        sigma_vth: sigma,
        swing,
        loop_gain,
    };
    let by = behavioral_offset_yield(&cfg, &chain, &thresholds);
    println!("\nyield table (fraction of chips with |offset| <= threshold):");
    println!("  threshold          raw     cancelled");
    for (i, &thr) in thresholds.iter().enumerate() {
        let label = if i < 4 {
            format!("{}sigma_raw ({:5.1} mV)", i + 1, thr * 1e3)
        } else {
            format!("swing/2   ({:5.1} mV)", thr * 1e3)
        };
        println!(
            "  {label} {:9.4} {:9.4}",
            by.raw.yield_frac(i),
            by.cancelled.yield_frac(i)
        );
    }
}
