//! §II.A — input sensitivity and dynamic range of the input interface:
//! output swing and eye opening versus input amplitude from 1 mV to
//! 1.8 V (the paper quotes 4 mV sensitivity and 40 dB dynamic range).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_bench::{banner, eye_metrics, prbs7_wave};
use cml_core::behav::{Block, InputInterface};
use cml_sig::measure;

fn main() {
    banner("§II.A - input sensitivity / dynamic range sweep");
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    let rx = InputInterface::paper_default();
    println!(
        "\n{:>10} | {:>12} {:>12} {:>10} {:>10}   ({threads} threads)",
        "in (Vpp)", "out (mVpp)", "height (mV)", "width(ps)", "open"
    );
    let amps = [
        1e-3, 2e-3, 4e-3, 8e-3, 20e-3, 50e-3, 0.1, 0.25, 0.5, 1.0, 1.4, 1.8,
    ];
    let points = cml_runner::par_map(threads, &amps, |_, &amp| {
        let out = rx.process(&prbs7_wave(amp));
        (eye_metrics(&out), measure::swing(&out))
    });
    let mut sensitivity = None;
    for (amp, (m, swing)) in amps.iter().zip(&points) {
        println!(
            "{amp:>10.3} | {:>12.1} {:>12.1} {:>10.1} {:>10.2}",
            swing * 1e3,
            m.height * 1e3,
            m.width * 1e12,
            m.opening
        );
        if sensitivity.is_none() && m.opening > 0.4 && *swing > 0.3 {
            sensitivity = Some(*amp);
        }
    }
    match sensitivity {
        Some(s) => {
            let max = 1.8f64;
            println!(
                "\nmeasured sensitivity: {:.0} mV (paper: 4 mV); \
                 dynamic range {:.0} dB (paper: 40 dB)",
                s * 1e3,
                20.0 * (max / s).log10()
            );
        }
        None => println!("\nno amplitude met the open-eye criterion"),
    }
}
