//! PR benchmark: solver factorization reuse and parallel sweep engine.
//!
//! Times one transient-heavy workload (a deep RC ladder, where the
//! cross-timestep LU reuse in `cml_spice::analysis` removes the O(n³)
//! factorization from every Newton iteration) and one sweep-heavy
//! workload (a large Monte-Carlo offset study fanned out over
//! `cml_runner::par_map`), each against its unoptimized reference path,
//! verifying the results agree, and writes the wall-clock numbers to
//! `BENCH_pr1.json` in the current directory.
//!
//! Run with: `cargo run --release --bin bench_pr1 [--threads N]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::montecarlo;
use cml_spice::analysis::tran::{self, TranConfig};
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use serde::Value;
use std::time::Instant;

fn rc_ladder(n_stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(Vsource::new(
        "V1",
        prev,
        Circuit::GROUND,
        Waveform::step(0.0, 1.0, 10e-12, 5e-12),
    ));
    for i in 0..n_stages {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Resistor::new(&format!("R{i}"), prev, node, 150.0));
        ckt.add(Capacitor::new(
            &format!("C{i}"),
            node,
            Circuit::GROUND,
            40e-15,
        ));
        prev = node;
    }
    ckt
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    let tel = Telemetry::enabled_with_env_sinks();

    // --- Transient-heavy: 40-stage RC ladder, 6000 trapezoidal steps. ---
    let ckt = rc_ladder(40);
    let cfg = TranConfig::new(6e-9, 1e-12);
    let end = ckt.find_node("n39").unwrap();
    println!("transient-heavy: 40-stage RC ladder, {} steps", 6000);

    let t0 = Instant::now();
    let baseline = tran::run(&ckt, &cfg.clone().without_factor_reuse()).expect("baseline tran");
    let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let optimized = tran::run_traced(&ckt, &cfg, &tel).expect("optimized tran");
    let optimized_ms = t0.elapsed().as_secs_f64() * 1e3;

    let vb = baseline.voltage(end);
    let vo = optimized.voltage(end);
    let tran_diff = vb
        .iter()
        .zip(&vo)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    println!(
        "  baseline {baseline_ms:9.1} ms | reuse {optimized_ms:9.1} ms | speedup {:.2}x | max diff {tran_diff:.1e}",
        baseline_ms / optimized_ms
    );

    // --- Sweep-heavy: 300k-trial Monte-Carlo offset study. ---
    let n_trials = 300_000;
    println!("sweep-heavy: Monte-Carlo offset study, {n_trials} trials, {threads} threads");

    let t0 = Instant::now();
    let serial = montecarlo::paper_default_study_par(n_trials, 0xC0FFEE, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let parallel = montecarlo::paper_default_study_par(n_trials, 0xC0FFEE, threads);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    let identical = serial == parallel;
    println!(
        "  serial {serial_ms:11.1} ms | {threads:2} threads {parallel_ms:6.1} ms | speedup {:.2}x | identical: {identical}",
        serial_ms / parallel_ms
    );
    assert!(identical, "parallel sweep changed the aggregate");

    let report = obj(vec![
        ("bench", Value::Str("bench_pr1".into())),
        ("host_threads", Value::Num(threads as f64)),
        (
            "transient_heavy",
            obj(vec![
                (
                    "workload",
                    Value::Str("rc_ladder 40 stages, 6 ns @ 1 ps trapezoidal".into()),
                ),
                ("baseline_ms", Value::Num(baseline_ms)),
                ("factor_reuse_ms", Value::Num(optimized_ms)),
                ("speedup", Value::Num(baseline_ms / optimized_ms)),
                ("max_result_diff", Value::Num(tran_diff)),
            ]),
        ),
        (
            "sweep_heavy",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!("montecarlo offset study, {n_trials} trials")),
                ),
                ("threads", Value::Num(threads as f64)),
                ("serial_ms", Value::Num(serial_ms)),
                ("parallel_ms", Value::Num(parallel_ms)),
                ("speedup", Value::Num(serial_ms / parallel_ms)),
                ("results_identical", Value::Bool(identical)),
            ]),
        ),
        ("telemetry", tel.report().to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("render BENCH_pr1.json");
    std::fs::write("BENCH_pr1.json", format!("{json}\n")).expect("write BENCH_pr1.json");
    println!("wrote BENCH_pr1.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
