//! PR benchmark: batched structure-of-arrays Monte-Carlo yield
//! estimation — lane-packed multi-variant solves vs the per-trial
//! scalar loop.
//!
//! Four legs:
//!
//! 1. **agreement** — cold-started batched pair offsets vs independent
//!    scalar solves across all five process corners: every trial must
//!    agree to ≤ 1e-9 (the lockstep Newton replays the scalar
//!    trajectory bit-for-bit, so the observed error is ~1e-15);
//! 2. **throughput** — transistor-level trials/sec, per-trial scalar
//!    Newton ladder vs warm-started batched lockstep on the same trial
//!    stream; the batched path must clear ≥ 3×;
//! 3. **invariance** — the batched transistor yield table re-run at
//!    1/2/8 threads must be bit-identical, and the behavioral packed
//!    estimator must be bit-identical to its scalar reference;
//! 4. **flat-memory** — a multi-million-trial importance-sampled
//!    behavioral yield sweep streamed through `par_fold` chunks; peak
//!    RSS is sampled (`VmHWM`) before and after and the delta must stay
//!    under a fixed budget that does not scale with trial count.
//!
//! Run with: `cargo run --release --bin bench_pr7 [--smoke] [--trials N] [--threads N]`
//! `--smoke` shrinks every leg for CI.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::yield_est::{
    self, behavioral_offset_yield, behavioral_offset_yield_scalar, transistor_offset_yield,
    transistor_offset_yield_scalar, ChainSpec, PairYieldSpec, YieldConfig,
};
use cml_spice::telemetry::{self, Telemetry};
use serde::Value;
use std::time::Instant;

/// Peak-RSS growth budget for the behavioral mega-sweep, bytes.
/// Materializing 10M trials would need 3 × 8 B × 10⁷ ≈ 240 MB just for
/// the sample vectors; the streamed fold must fit chunk buffers and
/// accumulators in this fixed envelope regardless of trial count.
const PEAK_RSS_BUDGET: u64 = 64 * 1024 * 1024;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn rss() -> u64 {
    telemetry::peak_rss_bytes().expect("VmHWM available on Linux")
}

// ---------------------------------------------------------------------
// Leg 1: batched-vs-scalar agreement (the CI smoke gate)
// ---------------------------------------------------------------------

fn agreement(smoke: bool) -> Value {
    let n = if smoke { 48 } else { 240 };
    let spec = PairYieldSpec::paper_default().all_corners();
    // Cold start: the batched lockstep takes the same damped-Newton
    // trajectory as the scalar ladder, so agreement is ~1e-15, far
    // inside the ≤1e-9 gate.
    let cfg = YieldConfig::new(n, 0xC0FFEE)
        .with_chunk(48)
        .with_warm_start(false);
    let (batched, fallbacks) = yield_est::pair_offsets_batched(&cfg, &spec).expect("batched");
    let scalar = yield_est::pair_offsets_scalar(&cfg, &spec).expect("scalar");
    let worst = batched
        .iter()
        .zip(&scalar)
        .map(|(b, s)| (b - s).abs())
        .fold(0.0f64, f64::max);
    println!(
        "leg 1  agreement: {n} trials x 5 corners | worst batched-vs-scalar delta {worst:.2e} \
         (gate 1e-9) | {fallbacks} lane fallbacks"
    );
    assert!(
        worst <= 1e-9,
        "batched offsets diverged from scalar: worst delta {worst:e}"
    );
    obj(vec![
        ("trials", Value::Num(n as f64)),
        ("corners", Value::Num(5.0)),
        ("worst_delta_v", Value::Num(worst)),
        ("gate_v", Value::Num(1e-9)),
        ("lane_fallbacks", Value::Num(fallbacks as f64)),
    ])
}

// ---------------------------------------------------------------------
// Leg 2: scalar vs batched throughput
// ---------------------------------------------------------------------

fn throughput(smoke: bool, trials: Option<usize>, threads: usize, tel: &Telemetry) -> Value {
    let n = trials.unwrap_or(if smoke { 768 } else { 12_288 });
    let spec = PairYieldSpec::paper_chain();
    let thresholds = [5e-3, 0.1, 0.5];
    let cfg = YieldConfig::new(n, 0xBEEF)
        .with_chunk(512)
        .with_threads(threads);

    let t0 = Instant::now();
    let scalar = transistor_offset_yield_scalar(&cfg, &spec, &thresholds).expect("scalar sweep");
    let scalar_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let batched = transistor_offset_yield_traced_wrap(&cfg, &spec, &thresholds, tel);
    let batched_s = t0.elapsed().as_secs_f64();

    let speedup = scalar_s / batched_s;
    let worst_yield_delta = (0..thresholds.len())
        .map(|i| (batched.estimate.fail_prob(i) - scalar.estimate.fail_prob(i)).abs())
        .fold(0.0f64, f64::max);
    println!(
        "leg 2  throughput: {n} transistor trials, {threads} threads | scalar {:.0} trials/s, \
         batched {:.0} trials/s — {speedup:.1}x (target >=3x)",
        n as f64 / scalar_s,
        n as f64 / batched_s
    );
    println!(
        "       yield table (|Voff| > thr): {} | worst batched-vs-scalar yield delta {worst_yield_delta:.2e}",
        thresholds
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{:.0} mV: {:.4}", t * 1e3, batched.estimate.yield_frac(i)))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    assert!(
        speedup >= 3.0,
        "batched throughput {speedup:.2}x below the 3x target"
    );
    assert!(
        worst_yield_delta <= 1e-9,
        "batched yield table diverged from scalar by {worst_yield_delta:e}"
    );
    obj(vec![
        ("trials", Value::Num(n as f64)),
        ("threads", Value::Num(threads as f64)),
        ("scalar_s", Value::Num(scalar_s)),
        ("batched_s", Value::Num(batched_s)),
        ("scalar_trials_per_s", Value::Num(n as f64 / scalar_s)),
        ("batched_trials_per_s", Value::Num(n as f64 / batched_s)),
        ("speedup", Value::Num(speedup)),
        ("worst_yield_delta", Value::Num(worst_yield_delta)),
        ("lane_fallbacks", Value::Num(batched.fallbacks as f64)),
        (
            "yield_table",
            Value::Arr(
                thresholds
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        obj(vec![
                            ("threshold_v", Value::Num(t)),
                            ("yield", Value::Num(batched.estimate.yield_frac(i))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn transistor_offset_yield_traced_wrap(
    cfg: &YieldConfig,
    spec: &PairYieldSpec,
    thresholds: &[f64],
    tel: &Telemetry,
) -> cml_core::yield_est::TransistorYield {
    yield_est::transistor_offset_yield_traced(cfg, spec, thresholds, tel).expect("batched sweep")
}

// ---------------------------------------------------------------------
// Leg 3: thread-count and lane-packing invariance
// ---------------------------------------------------------------------

fn invariance(smoke: bool) -> Value {
    let n = if smoke { 192 } else { 1024 };
    let spec = PairYieldSpec::paper_default();
    let thresholds = [2e-3, 5e-3];
    let base = YieldConfig::new(n, 0xFEED).with_chunk(64);
    let reference = transistor_offset_yield(&base, &spec, &thresholds).expect("1-thread sweep");
    let mut identical = true;
    for threads in [2, 8] {
        let run = transistor_offset_yield(&base.clone().with_threads(threads), &spec, &thresholds)
            .expect("threaded sweep");
        identical &= run.estimate == reference.estimate;
        assert_eq!(
            run.estimate, reference.estimate,
            "{threads}-thread transistor yield diverged from serial"
        );
    }

    let chain = ChainSpec::paper_default();
    let bcfg = YieldConfig::new(n * 16, 0xACE)
        .with_chunk(1024)
        .with_threads(4);
    let packed = behavioral_offset_yield(&bcfg, &chain, &thresholds);
    let scalar_ref = behavioral_offset_yield_scalar(&bcfg, &chain, &thresholds);
    assert_eq!(
        packed, scalar_ref,
        "lane-packed behavioral estimator diverged from scalar reference"
    );
    println!(
        "leg 3  invariance: {n}-trial transistor yield bit-identical at 1/2/8 threads; \
         {}-trial behavioral packed == scalar bitwise",
        n * 16
    );
    obj(vec![
        ("transistor_trials", Value::Num(n as f64)),
        ("behavioral_trials", Value::Num((n * 16) as f64)),
        ("thread_counts", Value::Str("1/2/8".into())),
        ("bit_identical", Value::Bool(identical)),
    ])
}

// ---------------------------------------------------------------------
// Leg 4: flat-memory mega-sweep
// ---------------------------------------------------------------------

fn flat_memory(smoke: bool, threads: usize, tel: &Telemetry) -> Value {
    let n: usize = if smoke { 200_000 } else { 10_000_000 };
    let chain = ChainSpec::paper_default();
    // Importance-sample the tail: κ=2 widening makes 200 mV crossings
    // common enough to resolve at ppm yields.
    let cfg = YieldConfig::new(n, 0x106B5)
        .with_chunk(8192)
        .with_threads(threads)
        .with_sigma_scale(2.0);
    let thresholds = [0.05, 0.1, 0.2, 0.24];
    let rss_before = rss();
    let t0 = Instant::now();
    let est = yield_est::behavioral_offset_yield_traced(&cfg, &chain, &thresholds, tel);
    let elapsed = t0.elapsed().as_secs_f64();
    let rss_after = rss();
    let rss_delta = rss_after - rss_before;
    println!(
        "leg 4  flat-memory: {n} importance-sampled behavioral trials in {elapsed:.2} s \
         ({:.2e} trials/s, {threads} threads)",
        n as f64 / elapsed
    );
    println!(
        "       raw-offset yield: {} | effective samples {:.2e}",
        thresholds
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{:.0} mV: {:.6}", t * 1e3, est.raw.yield_frac(i)))
            .collect::<Vec<_>>()
            .join(" | "),
        est.raw.effective_samples()
    );
    println!(
        "       peak RSS: {:.1} MB -> {:.1} MB (delta {:.1} MB, budget {:.0} MB)",
        rss_before as f64 / 1e6,
        rss_after as f64 / 1e6,
        rss_delta as f64 / 1e6,
        PEAK_RSS_BUDGET as f64 / 1e6
    );
    assert!(
        rss_delta < PEAK_RSS_BUDGET,
        "peak RSS grew by {rss_delta} B during the {n}-trial sweep (budget {PEAK_RSS_BUDGET} B) \
         — streaming memory is not flat"
    );
    assert!(est.raw.trials == n as u64, "trial count mismatch");
    obj(vec![
        ("trials", Value::Num(n as f64)),
        ("threads", Value::Num(threads as f64)),
        ("sigma_scale", Value::Num(2.0)),
        ("chunk", Value::Num(8192.0)),
        ("elapsed_s", Value::Num(elapsed)),
        ("trials_per_s", Value::Num(n as f64 / elapsed)),
        ("effective_samples", Value::Num(est.raw.effective_samples())),
        ("peak_rss_before_b", Value::Num(rss_before as f64)),
        ("peak_rss_after_b", Value::Num(rss_after as f64)),
        ("peak_rss_delta_b", Value::Num(rss_delta as f64)),
        ("peak_rss_budget_b", Value::Num(PEAK_RSS_BUDGET as f64)),
        (
            "raw_yield_table",
            Value::Arr(
                thresholds
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| {
                        obj(vec![
                            ("threshold_v", Value::Num(t)),
                            ("yield", Value::Num(est.raw.yield_frac(i))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn trials_flag(args: impl IntoIterator<Item = String>) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--trials" {
            return args.next()?.parse().ok().filter(|&n| n > 0);
        }
        if let Some(v) = a.strip_prefix("--trials=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trials = trials_flag(std::env::args());
    let threads = cml_runner::threads(cml_runner::threads_flag(std::env::args()));
    println!(
        "bench_pr7: batched Monte-Carlo yield estimation{}",
        if smoke { " (smoke)" } else { "" }
    );
    let tel = Telemetry::enabled_with_env_sinks();

    let leg1 = agreement(smoke);
    let leg2 = throughput(smoke, trials, threads, &tel);
    let leg3 = invariance(smoke);
    let leg4 = flat_memory(smoke, threads, &tel);

    let report = tel.report();
    println!(
        "telemetry: {} trials, {} batch solves, lane occupancy {:.1} %, fallback rate {:.2e}",
        report.counters.trials_total,
        report.counters.batch_solves,
        report.counters.lane_occupancy() * 100.0,
        report.counters.lane_fallback_rate()
    );

    let out = obj(vec![
        ("bench", Value::Str("bench_pr7".into())),
        ("smoke", Value::Bool(smoke)),
        ("agreement", leg1),
        ("throughput", leg2),
        ("invariance", leg3),
        ("flat_memory", leg4),
        ("telemetry", report.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&out).expect("render BENCH_pr7.json");
    std::fs::write("BENCH_pr7.json", format!("{json}\n")).expect("write BENCH_pr7.json");
    println!("wrote BENCH_pr7.json");
}
