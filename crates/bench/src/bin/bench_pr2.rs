//! PR benchmark: sparse-MNA solve path and LTE-adaptive transient
//! stepping on a transistor-level eye workload.
//!
//! Builds the full input interface (equalizer → buffer → LA → output
//! buffer, ~100 MNA unknowns), drives it with a 10 Gb/s PRBS-7 NRZ
//! pattern and times three solver configurations:
//!
//! 1. **dense-fixed** — dense LU, fixed 1 ps grid (the pre-PR path,
//!    forced via `sparse_threshold = usize::MAX`);
//! 2. **sparse-fixed** — sparse LU with symbolic reuse on the *same*
//!    grid (results must agree with dense to ≤ 1e-9);
//! 3. **sparse-adaptive** — sparse LU plus the LTE step controller
//!    (eye height/width must stay within 1 % of the fixed-grid eye).
//!
//! Also re-times the PR-1 parallel sweep with a worker count resolved
//! from `available_parallelism().max(2)` — the PR-1 run recorded
//! `threads: 1` on a single-CPU host and never exercised the fan-out —
//! and writes everything to `BENCH_pr2.json` in the current directory.
//!
//! Run with: `cargo run --release --bin bench_pr2 [--smoke] [--threads N]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::input_interface::InputInterfaceConfig;
use cml_core::cells::{add_diff_drive, add_supply, input_interface, DiffPort};
use cml_core::montecarlo;
use cml_pdk::Pdk018;
use cml_sig::eye::{EyeDiagram, EyeMetrics};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::UniformWave;
use cml_spice::analysis::tran::{self, TranConfig, TranResult};
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use serde::Value;
use std::time::Instant;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

struct Workload {
    ckt: Circuit,
    out: DiffPort,
    t_stop: f64,
    skip: f64,
}

/// Transistor-level receive chain with a PRBS-7 differential drive.
fn build_workload(n_bits: usize) -> Workload {
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    Workload {
        ckt,
        out,
        t_stop: n_bits as f64 * UI,
        skip: 4.0 * UI,
    }
}

/// Runs one transient and reports wall-clock plus the result.
fn timed_run(w: &Workload, cfg: &TranConfig, tel: &Telemetry) -> (f64, TranResult) {
    let t0 = Instant::now();
    let res = tran::run_traced(&w.ckt, cfg, tel).expect("transient");
    (t0.elapsed().as_secs_f64() * 1e3, res)
}

/// Worst sample difference of the differential output between two runs
/// on identical time grids.
fn max_diff(w: &Workload, a: &TranResult, b: &TranResult) -> f64 {
    assert_eq!(a.times(), b.times(), "grids must match for comparison");
    let va = a.differential(w.out.p, w.out.n);
    let vb = b.differential(w.out.p, w.out.n);
    va.iter()
        .zip(&vb)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Folds the differential output into an eye (resampling first — the
/// adaptive grid is non-uniform).
fn eye_of(w: &Workload, res: &TranResult) -> EyeMetrics {
    let v = res.differential(w.out.p, w.out.n);
    let wave = UniformWave::from_series(res.times(), &v, 1e-12);
    EyeDiagram::fold(&wave.skip_initial(w.skip), UI).metrics()
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-30)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_bits = if smoke { 8 } else { 40 };
    let w = build_workload(n_bits);
    println!(
        "eye workload: transistor-level input interface, PRBS-7, {n_bits} bits @ 10 Gb/s{}",
        if smoke { " (smoke)" } else { "" }
    );

    let fixed = TranConfig::new(w.t_stop, 1e-12);
    let mut dense_cfg = fixed.clone();
    dense_cfg.newton.sparse_threshold = usize::MAX;
    let mut sparse_cfg = fixed.clone();
    sparse_cfg.newton.sparse_threshold = 1;
    let mut adaptive_cfg = TranConfig::new(w.t_stop, 1e-12).adaptive();
    adaptive_cfg.newton.sparse_threshold = 1;

    let tel = Telemetry::enabled_with_env_sinks();
    let (dense_ms, dense_res) = timed_run(&w, &dense_cfg, &Telemetry::disabled());
    let (sparse_ms, sparse_res) = timed_run(&w, &sparse_cfg, &tel);
    let (adaptive_ms, adaptive_res) = timed_run(&w, &adaptive_cfg, &tel);

    let diff = max_diff(&w, &dense_res, &sparse_res);
    let eye_fixed = eye_of(&w, &dense_res);
    let eye_adaptive = eye_of(&w, &adaptive_res);
    let height_rel = rel_diff(eye_adaptive.height, eye_fixed.height);
    let width_rel = rel_diff(eye_adaptive.width, eye_fixed.width);
    let speedup_sparse = dense_ms / sparse_ms;
    let speedup_adaptive = dense_ms / adaptive_ms;

    println!(
        "  dense fixed    {dense_ms:9.1} ms  ({} points)",
        dense_res.len()
    );
    println!(
        "  sparse fixed   {sparse_ms:9.1} ms  speedup {speedup_sparse:.2}x | max diff vs dense {diff:.2e}"
    );
    println!(
        "  sparse adaptive{adaptive_ms:9.1} ms  speedup {speedup_adaptive:.2}x  ({} points)",
        adaptive_res.len()
    );
    println!(
        "  eye: fixed {:.1} mV x {:.1} ps | adaptive {:.1} mV x {:.1} ps (rel diff {:.3} / {:.3})",
        eye_fixed.height * 1e3,
        eye_fixed.width * 1e12,
        eye_adaptive.height * 1e3,
        eye_adaptive.width * 1e12,
        height_rel,
        width_rel
    );

    assert!(
        diff <= 1e-9,
        "sparse/dense divergence {diff:.3e} exceeds 1e-9"
    );
    assert!(
        height_rel < 0.01 && width_rel < 0.01,
        "adaptive eye drifted: height rel {height_rel:.4}, width rel {width_rel:.4}"
    );

    // --- Sweep re-measurement (PR-1 recorded threads: 1 on a 1-CPU
    // host, so its speedup never exercised the fan-out path). ---
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let sweep_threads = cml_runner::threads_flag(std::env::args())
        .unwrap_or(host_threads)
        .max(2);
    let n_trials = if smoke { 20_000 } else { 200_000 };
    println!(
        "sweep: Monte-Carlo offset study, {n_trials} trials, host {host_threads} hw threads, fan-out {sweep_threads}"
    );
    let t0 = Instant::now();
    let serial = montecarlo::paper_default_study_par(n_trials, 0xC0FFEE, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let parallel = montecarlo::paper_default_study_par(n_trials, 0xC0FFEE, sweep_threads);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    let identical = serial == parallel;
    println!(
        "  serial {serial_ms:9.1} ms | {sweep_threads} threads {parallel_ms:9.1} ms | speedup {:.2}x | identical: {identical}",
        serial_ms / parallel_ms
    );
    assert!(identical, "parallel sweep changed the aggregate");

    let report = obj(vec![
        ("bench", Value::Str("bench_pr2".into())),
        ("smoke", Value::Bool(smoke)),
        (
            "eye_workload",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!(
                        "input interface (transistor level), PRBS-7 {n_bits} bits @ 10 Gb/s, dt 1 ps"
                    )),
                ),
                ("dense_fixed_ms", Value::Num(dense_ms)),
                ("sparse_fixed_ms", Value::Num(sparse_ms)),
                ("sparse_adaptive_ms", Value::Num(adaptive_ms)),
                ("speedup_sparse_fixed", Value::Num(speedup_sparse)),
                ("speedup_sparse_adaptive", Value::Num(speedup_adaptive)),
                ("sparse_dense_max_diff", Value::Num(diff)),
                ("fixed_points", Value::Num(dense_res.len() as f64)),
                ("adaptive_points", Value::Num(adaptive_res.len() as f64)),
                ("eye_height_fixed_v", Value::Num(eye_fixed.height)),
                ("eye_height_adaptive_v", Value::Num(eye_adaptive.height)),
                ("eye_width_fixed_s", Value::Num(eye_fixed.width)),
                ("eye_width_adaptive_s", Value::Num(eye_adaptive.width)),
                ("eye_height_rel_diff", Value::Num(height_rel)),
                ("eye_width_rel_diff", Value::Num(width_rel)),
            ]),
        ),
        (
            "sweep_heavy",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!("montecarlo offset study, {n_trials} trials")),
                ),
                ("host_threads", Value::Num(host_threads as f64)),
                ("threads", Value::Num(sweep_threads as f64)),
                ("serial_ms", Value::Num(serial_ms)),
                ("parallel_ms", Value::Num(parallel_ms)),
                ("speedup", Value::Num(serial_ms / parallel_ms)),
                ("results_identical", Value::Bool(identical)),
            ]),
        ),
        ("telemetry", tel.report().to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("render BENCH_pr2.json");
    std::fs::write("BENCH_pr2.json", format!("{json}\n")).expect("write BENCH_pr2.json");
    println!("wrote BENCH_pr2.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
