//! PR benchmark: pre-simulation lint overhead on the PRBS-7 eye
//! workload.
//!
//! The PR 3 linter runs as a mandatory precheck inside every analysis
//! entry point, so its cost is paid on each `op`/`dc`/`ac`/`tran` call.
//! This benchmark builds the same transistor-level input-interface
//! workload as `bench_pr2` (~100 MNA unknowns, 10 Gb/s PRBS-7 drive),
//! then measures:
//!
//! 1. **lint full** — a complete `lint()` pass (all severities),
//!    averaged over many repetitions;
//! 2. **lint precheck** — the error-only `precheck()` path the analyses
//!    actually call;
//! 3. **dense-fixed transient** — the PR 2 baseline solve
//!    (`sparse_threshold = usize::MAX`, 1 ps grid) whose runtime the
//!    lint must stay under 1 % of.
//!
//! Asserts `precheck_ms / dense_ms < 1 %` and writes `BENCH_pr3.json`
//! in the current directory.
//!
//! Run with: `cargo run --release --bin bench_pr3 [--smoke]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::input_interface::InputInterfaceConfig;
use cml_core::cells::{add_diff_drive, add_supply, input_interface, DiffPort};
use cml_pdk::Pdk018;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_spice::analysis::tran::{self, TranConfig};
use cml_spice::lint;
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use serde::Value;
use std::time::Instant;

/// 10 Gb/s unit interval.
const UI: f64 = 100e-12;

/// Transistor-level receive chain with a PRBS-7 differential drive —
/// the same workload shape as `bench_pr2`.
fn build_workload(n_bits: usize) -> (Circuit, f64) {
    let pdk = Pdk018::typical();
    let cfg = InputInterfaceConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    let vcm = cfg.equalizer.input_common_mode();
    let bits: Vec<bool> = Prbs::prbs7().take(n_bits).collect();
    let pwl = NrzConfig::new(UI, 0.2).with_offset(vcm).render_pwl(&bits);
    add_diff_drive(&mut ckt, "VIN", input, vcm, Some(Waveform::Pwl(pwl)));
    input_interface::build(&mut ckt, &pdk, &cfg, "rx", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    (ckt, n_bits as f64 * UI)
}

/// Average wall-clock of `f` over `reps` runs, in milliseconds.
fn avg_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_bits = if smoke { 8 } else { 40 };
    let reps = if smoke { 20 } else { 200 };
    let (ckt, t_stop) = build_workload(n_bits);
    let n_elems = ckt.elements().count();
    println!(
        "lint workload: transistor-level input interface, {n_elems} elements, \
         PRBS-7 {n_bits} bits @ 10 Gb/s{}",
        if smoke { " (smoke)" } else { "" }
    );

    // The workload must itself be error-clean, or the transient below
    // would be rejected before it ever solves.
    let report = lint::lint(&ckt);
    assert!(
        !report.has_errors(),
        "workload fails its own lint:\n{}",
        report.render(lint::Severity::Error)
    );

    let full_ms = avg_ms(reps, || {
        let r = lint::lint(&ckt);
        assert!(!r.has_errors());
    });
    let precheck_ms = avg_ms(reps, || {
        lint::precheck(&ckt).expect("clean workload");
    });

    // Dense-fixed baseline (PR 2's reference configuration). The lint
    // precheck runs inside this call too, so the measured ratio is if
    // anything pessimistic.
    let mut dense_cfg = TranConfig::new(t_stop, 1e-12);
    dense_cfg.newton.sparse_threshold = usize::MAX;
    let tel = Telemetry::enabled_with_env_sinks();
    let t0 = Instant::now();
    let res = tran::run_traced(&ckt, &dense_cfg, &tel).expect("transient");
    let dense_ms = t0.elapsed().as_secs_f64() * 1e3;

    let overhead = precheck_ms / dense_ms;
    println!("  lint full      {full_ms:9.4} ms (avg of {reps})");
    println!("  lint precheck  {precheck_ms:9.4} ms (avg of {reps})");
    println!("  dense transient{dense_ms:9.1} ms  ({} points)", res.len());
    println!(
        "  precheck overhead: {:.4} % of dense solve",
        overhead * 1e2
    );
    assert!(
        overhead < 0.01,
        "lint precheck overhead {:.3} % exceeds the 1 % budget",
        overhead * 1e2
    );

    let json_report = obj(vec![
        ("bench", Value::Str("bench_pr3".into())),
        ("smoke", Value::Bool(smoke)),
        (
            "workload",
            Value::Str(format!(
                "input interface (transistor level), {n_elems} elements, \
                 PRBS-7 {n_bits} bits @ 10 Gb/s, dt 1 ps"
            )),
        ),
        ("lint_reps", Value::Num(reps as f64)),
        ("lint_full_ms", Value::Num(full_ms)),
        ("lint_precheck_ms", Value::Num(precheck_ms)),
        ("dense_fixed_tran_ms", Value::Num(dense_ms)),
        ("precheck_overhead_frac", Value::Num(overhead)),
        ("overhead_budget_frac", Value::Num(0.01)),
        (
            "diagnostics_on_workload",
            Value::Num(report.diagnostics.len() as f64),
        ),
        ("telemetry", tel.report().to_value()),
    ]);
    let json = serde_json::to_string_pretty(&json_report).expect("render BENCH_pr3.json");
    std::fs::write("BENCH_pr3.json", format!("{json}\n")).expect("write BENCH_pr3.json");
    println!("wrote BENCH_pr3.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
