//! PR benchmark: sparse complex AC engine with shared symbolic analysis
//! and parallel frequency sweeps.
//!
//! Builds the transistor-level four-stage limiting amplifier and times a
//! wide AC sweep under three engine configurations:
//!
//! 1. **dense serial** — per-point dense complex LU (the pre-PR path,
//!    forced via `sparse_threshold = usize::MAX`, one thread);
//! 2. **sparse serial** — symbolic analysis recorded once, per-point
//!    numeric refactorization replayed into the frozen pattern (results
//!    must agree with dense to ≤ 1e-9);
//! 3. **sparse parallel** — the same sparse replay with the frequency
//!    grid partitioned across worker threads (results must be
//!    bit-identical to the serial sparse sweep).
//!
//! Writes everything to `BENCH_pr4.json` in the current directory.
//!
//! Run with: `cargo run --release --bin bench_pr4 [--smoke] [--threads N]`

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::cells::limiting_amp::{self, LimitingAmpConfig};
use cml_core::cells::{add_diff_drive, add_supply, DiffPort};
use cml_numeric::logspace;
use cml_spice::analysis::ac::{self, AcResult};
use cml_spice::analysis::{op, NewtonOptions};
use cml_spice::prelude::*;
use cml_spice::telemetry::Telemetry;
use serde::Value;
use std::time::Instant;

struct Workload {
    ckt: Circuit,
    out: DiffPort,
    dim: usize,
}

/// Transistor-level limiting amplifier with a unit differential AC drive.
fn build_workload() -> Workload {
    let pdk = cml_pdk::Pdk018::typical();
    let cfg = LimitingAmpConfig::paper_default();
    let mut ckt = Circuit::new();
    let vdd = add_supply(&mut ckt, cml_pdk::VDD);
    let input = DiffPort::named(&mut ckt, "in");
    let out = DiffPort::named(&mut ckt, "out");
    add_diff_drive(
        &mut ckt,
        "VIN",
        input,
        limiting_amp::common_mode(&cfg),
        None,
    );
    limiting_amp::build(&mut ckt, &pdk, &cfg, "la", input, out, vdd);
    ckt.add(Capacitor::new("CLP", out.p, Circuit::GROUND, 20e-15));
    ckt.add(Capacitor::new("CLN", out.n, Circuit::GROUND, 20e-15));
    let dim = ckt.num_unknown_nodes();
    Workload { ckt, out, dim }
}

/// Runs one AC sweep and reports wall-clock plus the result.
fn timed_sweep(
    w: &Workload,
    x_op: &[f64],
    freqs: &[f64],
    opts: &NewtonOptions,
    threads: usize,
    tel: &Telemetry,
) -> (f64, AcResult) {
    let t0 = Instant::now();
    let res = ac::sweep_traced(&w.ckt, x_op, freqs, opts, threads, tel).expect("ac sweep");
    (t0.elapsed().as_secs_f64() * 1e3, res)
}

/// Worst complex node-voltage difference between two sweeps across every
/// unknown node and frequency point.
fn max_diff(w: &Workload, n_freqs: usize, a: &AcResult, b: &AcResult) -> f64 {
    let mut worst = 0.0f64;
    for raw in 1..=w.ckt.num_unknown_nodes() {
        let node = NodeId::from_raw(raw as u32);
        for idx in 0..n_freqs {
            worst = worst.max((a.voltage(node, idx) - b.voltage(node, idx)).abs());
        }
    }
    worst
}

/// True when every complex sample of the two sweeps is bit-identical.
fn bit_identical(w: &Workload, n_freqs: usize, a: &AcResult, b: &AcResult) -> bool {
    for raw in 1..=w.ckt.num_unknown_nodes() {
        let node = NodeId::from_raw(raw as u32);
        for idx in 0..n_freqs {
            let x = a.voltage(node, idx);
            let y = b.voltage(node, idx);
            if x.re.to_bits() != y.re.to_bits() || x.im.to_bits() != y.im.to_bits() {
                return false;
            }
        }
    }
    true
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_points = if smoke { 120 } else { 2400 };
    let w = build_workload();
    let freqs = logspace(1e2, 60e9, n_points);
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let par_threads = cml_runner::threads_flag(std::env::args())
        .unwrap_or(host_threads)
        .max(4);
    println!(
        "AC workload: transistor-level limiting amplifier ({} unknowns), \
         {n_points}-point sweep 100 Hz .. 60 GHz{}",
        w.dim,
        if smoke { " (smoke)" } else { "" }
    );

    let dense_opts = NewtonOptions {
        sparse_threshold: usize::MAX,
        ..NewtonOptions::default()
    };
    let sparse_opts = NewtonOptions {
        sparse_threshold: 1,
        ..NewtonOptions::default()
    };
    let x_op = op::solve(&w.ckt).expect("operating point");

    let tel = Telemetry::enabled_with_env_sinks();
    let off = Telemetry::disabled();
    let (dense_ms, dense_res) = timed_sweep(&w, x_op.solution(), &freqs, &dense_opts, 1, &off);
    let (serial_ms, serial_res) = timed_sweep(&w, x_op.solution(), &freqs, &sparse_opts, 1, &off);
    let (par_ms, par_res) =
        timed_sweep(&w, x_op.solution(), &freqs, &sparse_opts, par_threads, &tel);

    let diff = max_diff(&w, n_points, &dense_res, &serial_res);
    let identical = bit_identical(&w, n_points, &serial_res, &par_res);
    let speedup_serial = dense_ms / serial_ms;
    let speedup_par = dense_ms / par_ms;
    let gain = serial_res.differential_trace(w.out.p, w.out.n)[0].abs();

    println!("  dense serial   {dense_ms:9.1} ms");
    println!(
        "  sparse serial  {serial_ms:9.1} ms  speedup {speedup_serial:.2}x | max diff vs dense {diff:.2e}"
    );
    println!(
        "  sparse x{par_threads:<2}     {par_ms:9.1} ms  speedup {speedup_par:.2}x | bit-identical to serial: {identical}"
    );
    println!("  (DC differential gain {gain:.2} — sanity that the sweep solved the real cell)");

    assert!(
        diff <= 1e-9,
        "sparse/dense AC divergence {diff:.3e} exceeds 1e-9"
    );
    assert!(identical, "parallel sweep is not bit-identical to serial");
    // The ≥ 3x end-to-end gate only binds on the full workload: the smoke
    // grid is small enough that process startup noise dominates.
    if !smoke {
        assert!(
            speedup_par >= 3.0,
            "sparse parallel speedup {speedup_par:.2}x below the 3x acceptance floor"
        );
    }

    let report = obj(vec![
        ("bench", Value::Str("bench_pr4".into())),
        ("smoke", Value::Bool(smoke)),
        (
            "ac_sweep",
            obj(vec![
                (
                    "workload",
                    Value::Str(format!(
                        "limiting amplifier (transistor level, {} unknowns), \
                         {n_points}-point AC sweep 100 Hz .. 60 GHz",
                        w.dim
                    )),
                ),
                ("host_threads", Value::Num(host_threads as f64)),
                ("parallel_threads", Value::Num(par_threads as f64)),
                ("dense_serial_ms", Value::Num(dense_ms)),
                ("sparse_serial_ms", Value::Num(serial_ms)),
                ("sparse_parallel_ms", Value::Num(par_ms)),
                ("speedup_sparse_serial", Value::Num(speedup_serial)),
                ("speedup_sparse_parallel", Value::Num(speedup_par)),
                ("sparse_dense_max_diff", Value::Num(diff)),
                ("parallel_bit_identical", Value::Bool(identical)),
            ]),
        ),
        ("telemetry", tel.report().to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("render BENCH_pr4.json");
    std::fs::write("BENCH_pr4.json", format!("{json}\n")).expect("write BENCH_pr4.json");
    println!("wrote BENCH_pr4.json");
    for p in tel.flush().expect("flush telemetry sinks") {
        println!("wrote {}", p.display());
    }
}
