//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Every table and figure in the paper's evaluation has a matching
//! binary in `src/bin/`:
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Fig. 5(a)/(b) equalizer frequency response | `fig05_equalizer` |
//! | Fig. 7(a)/(b) active-inductor control      | `fig07_active_inductor` |
//! | Fig. 14(a)/(b) I/O eye @ 10 Gb/s           | `fig14_eye` |
//! | Fig. 15(a)/(b) input eye ± equalizer       | `fig15_equalizer_eye` |
//! | Fig. 16(a)/(b) output ± voltage peaking    | `fig16_peaking` |
//! | Table I performance comparison             | `table1_performance` |
//! | §III.E BMVR claims                         | `bmvr_sweep` |
//! | §II.A sensitivity / dynamic range          | `sensitivity_sweep` |
//!
//! Criterion benchmarks for the underlying kernels live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::{EyeDiagram, EyeMetrics, UniformWave};

/// Unit interval used throughout: 100 ps (10 Gb/s).
pub const UI: f64 = 100e-12;

/// Renders the paper's 2⁷−1 PRBS test pattern (three periods so the eye
/// statistics settle) at the given peak-to-peak amplitude.
#[must_use]
pub fn prbs7_wave(amplitude: f64) -> UniformWave {
    let bits: Vec<bool> = Prbs::prbs7().take(381).collect();
    NrzConfig::new(UI, amplitude).render(&bits)
}

/// Folds a waveform into eye metrics, discarding the first 3 ns of
/// startup transient.
#[must_use]
pub fn eye_metrics(wave: &UniformWave) -> EyeMetrics {
    EyeDiagram::fold(&wave.skip_initial(3e-9), UI).metrics()
}

/// Renders an ASCII eye diagram (startup discarded).
#[must_use]
pub fn eye_art(wave: &UniformWave) -> String {
    EyeDiagram::fold(&wave.skip_initial(3e-9), UI).render_ascii(16, 64)
}

/// Prints a standard header for a figure binary.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Formats eye metrics on one line.
#[must_use]
pub fn fmt_eye(m: &EyeMetrics) -> String {
    format!(
        "height {:6.1} mV | width {:5.1} ps | rms jitter {:4.1} ps | opening {:4.2}",
        m.height * 1e3,
        m.width * 1e12,
        m.rms_jitter * 1e12,
        m.opening
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prbs_wave_has_expected_shape() {
        let w = prbs7_wave(0.5);
        assert_eq!(w.len(), 381 * 32);
        let m = eye_metrics(&w);
        assert!(m.opening > 0.9);
    }

    #[test]
    fn eye_art_renders() {
        let art = eye_art(&prbs7_wave(0.5));
        assert_eq!(art.lines().count(), 16);
    }

    #[test]
    fn fmt_eye_contains_units() {
        let s = fmt_eye(&eye_metrics(&prbs7_wave(0.5)));
        assert!(s.contains("mV") && s.contains("ps"));
    }
}

#[cfg(test)]
mod serde_tests {
    #[test]
    fn table_rows_roundtrip_as_json() {
        let rows = cml_core::report::table_one();
        let json = serde_json::to_string(&rows).expect("serialize");
        let back: Vec<cml_core::report::PerformanceRow> =
            serde_json::from_str(&json).expect("deserialize");
        assert_eq!(rows, back);
        assert!(json.contains("\"power\""));
    }

    #[test]
    fn eye_metrics_serialize() {
        let m = crate::eye_metrics(&crate::prbs7_wave(0.5));
        let json = serde_json::to_string(&m).expect("serialize");
        assert!(json.contains("\"height\""));
    }
}
