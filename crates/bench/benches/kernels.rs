//! Criterion benchmarks for the simulator and measurement kernels.

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_numeric::{fft, linspace, logspace, Complex64, DenseMatrix};
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::EyeDiagram;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu_solve");
    for &n in &[16usize, 64, 128] {
        // Diagonally dominant deterministic matrix.
        let mut m = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for cidx in 0..n {
                m[(r, cidx)] = ((r * 31 + cidx * 17) % 13) as f64 / 13.0;
            }
            m[(r, r)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| m.solve(&b).expect("solvable"));
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1024usize, 8192] {
        let data: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut x = data.clone();
                fft::fft(&mut x).expect("pow2");
                x
            });
        });
    }
    group.finish();
}

fn bench_eye_fold(c: &mut Criterion) {
    let bits: Vec<bool> = Prbs::prbs7().take(1270).collect();
    let wave = NrzConfig::new(100e-12, 0.5).render(&bits);
    c.bench_function("eye_fold_40k_samples", |b| {
        b.iter(|| EyeDiagram::fold(&wave, 100e-12).metrics());
    });
}

fn bench_channel(c: &mut Criterion) {
    let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
    let wave = NrzConfig::new(100e-12, 0.5).render(&bits);
    let bp = cml_channel::Backplane::fr4_trace(0.5);
    c.bench_function("backplane_apply_8k_samples", |b| {
        b.iter(|| bp.apply(&wave, true));
    });
}

fn bench_interp(c: &mut Criterion) {
    let xs = linspace(0.0, 1.0, 4096);
    let ys: Vec<f64> = xs.iter().map(|x| (x * 37.0).sin()).collect();
    c.bench_function("pchip_build_eval_4k", |b| {
        b.iter(|| {
            let p = cml_numeric::interp::Pchip::new(&xs, &ys).expect("grid");
            (0..100).map(|i| p.eval(i as f64 / 100.0)).sum::<f64>()
        });
    });
    let _ = logspace(1.0, 10.0, 4); // keep import used in all cfgs
}

criterion_group!(
    kernels,
    bench_lu,
    bench_fft,
    bench_eye_fold,
    bench_channel,
    bench_interp
);
criterion_main!(kernels);
