//! Criterion benchmarks — one per paper table/figure workload, timing
//! the regeneration path (reduced sweep sizes to keep bench time sane).

// Driver-style target: aborting on a malformed result with a message
// is the intended failure mode, so expect/unwrap are fine here.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use cml_core::behav::{Block, InputInterface, IoLink, OutputInterface};
use cml_core::cells::{add_diff_drive, add_supply, equalizer, DiffPort};
use cml_numeric::logspace;
use cml_pdk::Pdk018;
use cml_sig::nrz::NrzConfig;
use cml_sig::prbs::Prbs;
use cml_sig::{EyeDiagram, UniformWave};
use cml_spice::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn prbs_wave() -> UniformWave {
    let bits: Vec<bool> = Prbs::prbs7().take(254).collect();
    NrzConfig::new(100e-12, 0.5).render(&bits)
}

/// Fig. 5 workload: one transistor-level equalizer AC sweep.
fn bench_fig05(c: &mut Criterion) {
    c.bench_function("fig05_equalizer_ac", |b| {
        b.iter(|| {
            let pdk = Pdk018::typical();
            let cfg = equalizer::EqualizerConfig::paper_default();
            let mut ckt = Circuit::new();
            let vdd = add_supply(&mut ckt, cml_pdk::VDD);
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            add_diff_drive(&mut ckt, "VIN", input, cfg.input_common_mode(), None);
            equalizer::build(&mut ckt, &pdk, &cfg, "eq", input, output, vdd);
            let freqs = logspace(1e7, 30e9, 31);
            cml_spice::analysis::ac::sweep_auto(&ckt, &freqs).expect("ac")
        });
    });
}

/// Fig. 7 workload: one transistor-level buffer transient (reduced span).
fn bench_fig07(c: &mut Criterion) {
    c.bench_function("fig07_buffer_tran", |b| {
        b.iter(|| {
            let pdk = Pdk018::typical();
            let cfg = cml_core::cells::cml_buffer::CmlBufferConfig::paper_default();
            let mut ckt = Circuit::new();
            let vdd = add_supply(&mut ckt, cml_pdk::VDD);
            let input = DiffPort::named(&mut ckt, "in");
            let output = DiffPort::named(&mut ckt, "out");
            let cm = cml_core::cells::cml_buffer::output_common_mode(&cfg);
            add_diff_drive(
                &mut ckt,
                "VIN",
                input,
                cm,
                Some(Waveform::step(cm - 0.125, cm + 0.125, 50e-12, 10e-12)),
            );
            cml_core::cells::cml_buffer::build(&mut ckt, &pdk, &cfg, "buf", input, output, vdd);
            cml_spice::analysis::tran::run(&ckt, &TranConfig::new(0.2e-9, 2e-12)).expect("tran")
        });
    });
}

/// Fig. 14 workload: the full behavioural I/O chain on one PRBS period.
fn bench_fig14(c: &mut Criterion) {
    let wave = prbs_wave();
    let rx = InputInterface::paper_default();
    let tx = OutputInterface::without_peaking();
    c.bench_function("fig14_io_chain", |b| {
        b.iter(|| {
            let out = tx.process(&rx.process(&wave));
            EyeDiagram::fold(&out.skip_initial(2e-9), 100e-12).metrics()
        });
    });
}

/// Fig. 15/16 workload: the full link over the backplane.
fn bench_fig15(c: &mut Criterion) {
    let wave = prbs_wave();
    let link = IoLink::paper_default();
    c.bench_function("fig15_full_link", |b| {
        b.iter(|| {
            let out = link.process(&wave);
            EyeDiagram::fold(&out.skip_initial(2e-9), 100e-12).metrics()
        });
    });
}

/// Table I workload: assembling the full report.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_report", |b| {
        b.iter(cml_core::report::table_one);
    });
}

/// §III.E workload: one BMVR operating point.
fn bench_bmvr(c: &mut Criterion) {
    c.bench_function("bmvr_op", |b| {
        let cfg = cml_core::cells::bmvr::BmvrConfig::paper_default();
        let pdk = Pdk018::typical();
        b.iter(|| cml_core::cells::bmvr::solve_vref(&pdk, &cfg, 1.8).expect("op"));
    });
}

criterion_group!(
    figures,
    bench_fig05,
    bench_fig07,
    bench_fig14,
    bench_fig15,
    bench_table1,
    bench_bmvr
);
criterion_main!(figures);
