//! Deterministic parallel sweep execution.
//!
//! Every study binary in this repository is a *sweep*: evaluate an
//! expensive, pure function at each point of a parameter grid (corners,
//! amplitudes, trim codes, Monte-Carlo trials) and aggregate the
//! results. [`par_map`] is the shared engine for that shape. It fans the
//! points out across OS threads with simple atomic work-stealing, but
//! returns results **in input order**, keyed by index — so the
//! aggregated output is bit-for-bit identical for any thread count and
//! any scheduling, as long as the point function itself is pure.
//!
//! Thread count resolution (see [`threads`]): an explicit `--threads N`
//! CLI flag wins, then the `CML_THREADS` environment variable, then the
//! machine's available parallelism.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "CML_THREADS";

/// Resolves the worker-thread count: `cli` override if present, else the
/// `CML_THREADS` environment variable, else the machine's available
/// parallelism (at least 1). Zero values are treated as unset.
#[must_use]
pub fn threads(cli: Option<usize>) -> usize {
    if let Some(n) = cli.filter(|&n| n > 0) {
        return n;
    }
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Extracts a `--threads N` (or `--threads=N`) override from CLI
/// arguments, ignoring everything else. Returns `None` when absent or
/// malformed, making `threads(threads_flag(std::env::args()))` the
/// one-liner used by the sweep binaries.
pub fn threads_flag(args: impl IntoIterator<Item = String>) -> Option<usize> {
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next()?.parse().ok().filter(|&n| n > 0);
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in input order.
///
/// `f` receives `(index, &item)` — the index lets sweep points derive
/// per-point RNG seeds without threading state through the closure.
/// Work is distributed by an atomic next-item counter, so uneven point
/// costs load-balance; each worker tags its results with the item index
/// and the final vector is assembled by index, which makes the output
/// independent of the thread count and of scheduling. A panic in `f` is
/// propagated to the caller.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_stats(threads, items, f).0
}

/// [`par_map`] plus per-worker load statistics: the second return value
/// is `items_per_worker`, the number of items each spawned worker
/// processed (a single entry on the serial path).
///
/// The *results* are bit-identical for any thread count; the *load
/// vector* is scheduling-dependent by nature — it exists for telemetry
/// (spotting a starved worker or a pathological chunk split), not for
/// assertions. Keep it out of anything that must be deterministic.
pub fn par_map_stats<T, U, F>(threads: usize, items: &[T], f: F) -> (Vec<U>, Vec<usize>)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        let out: Vec<U> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let n = out.len();
        return (out, vec![n]);
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(items.len());
    let mut per_worker: Vec<usize> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for w in workers {
            match w.join() {
                Ok(local) => {
                    per_worker.push(local.len());
                    tagged.extend(local);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_by_key(|&(i, _)| i);
    (tagged.into_iter().map(|(_, u)| u).collect(), per_worker)
}

/// Maps `f` over `items` in parallel, then folds the per-item results
/// **in input order** with `merge`. Returns `None` for empty input.
///
/// This is the fan-in primitive for streaming-sink sweeps: each worker
/// builds a partial accumulator (an eye fold, a metrics block) for its
/// slice of the parameter grid, and the partials are merged left-to-
/// right by item index — never in completion order. As long as `f` is
/// pure and `merge` is associative over adjacent partials, the folded
/// result is bit-for-bit identical for any thread count and any
/// scheduling, the same guarantee [`par_map`] gives for plain vectors.
/// (`merge` need not be commutative: the fold order is fixed.)
pub fn par_fold<T, A, F, M>(threads: usize, items: &[T], f: F, mut merge: M) -> Option<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &T) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    let mut parts = par_map(threads, items, f).into_iter();
    let first = parts.next()?;
    Some(parts.fold(first, &mut merge))
}

/// Splits a 64-bit seed into a per-point stream seed.
///
/// Sweep points must not share one sequential RNG (the draw order would
/// then depend on execution order); instead each point derives its own
/// seed from the study seed and its index. SplitMix64 finalizer — the
/// standard remedy for correlated sequential seeds.
#[must_use]
pub fn point_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A float-heavy point function: any cross-thread reordering of
    /// *aggregation* would change the bits of a naive sum downstream, so
    /// identical output vectors are the property that matters.
    fn heavy(i: usize, x: &f64) -> f64 {
        let mut acc = *x;
        for k in 1..200 {
            acc += (acc * k as f64 + i as f64).sin() / k as f64;
        }
        acc
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(4, &items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_for_any_thread_count() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let reference = par_map(1, &items, heavy);
        for threads in [2, 3, 4, 8, 64] {
            let got = par_map(threads, &items, heavy);
            // Bit-for-bit, not approximately: the engine must not change
            // results, only wall-clock.
            assert!(
                reference
                    .iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {threads} changed the results"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_map(8, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map(8, &[41], |_, &v| v + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(4, &items, |i, _| {
                assert!(i != 7, "boom");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_map_stats_accounts_every_item() {
        let items: Vec<usize> = (0..100).collect();
        let (out, per_worker) = par_map_stats(4, &items, |_, &v| v);
        assert_eq!(out, items);
        assert_eq!(per_worker.len(), 4);
        assert_eq!(per_worker.iter().sum::<usize>(), items.len());
        // Serial path reports a single worker owning everything.
        let (_, serial) = par_map_stats(1, &items, |_, &v| v);
        assert_eq!(serial, vec![100]);
    }

    #[test]
    fn threads_resolution_order() {
        assert_eq!(threads(Some(3)), 3);
        assert!(threads(None) >= 1);
        // Zero is treated as unset, not as a request for zero workers.
        assert!(threads(Some(0)) >= 1);
    }

    #[test]
    fn threads_flag_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        assert_eq!(threads_flag(args(&["bin", "--threads", "6"])), Some(6));
        assert_eq!(threads_flag(args(&["bin", "--threads=2"])), Some(2));
        assert_eq!(threads_flag(args(&["bin"])), None);
        assert_eq!(threads_flag(args(&["bin", "--threads", "zero"])), None);
        assert_eq!(threads_flag(args(&["bin", "--threads=0"])), None);
    }

    #[test]
    fn par_fold_is_input_order_and_thread_invariant() {
        // Non-commutative merge (string concatenation) exposes any
        // completion-order fan-in immediately.
        let items: Vec<usize> = (0..64).collect();
        let reference = par_fold(1, &items, |i, _| format!("{i},"), |a, b| a + &b).unwrap();
        for threads in [2, 3, 8, 64] {
            let got = par_fold(threads, &items, |i, _| format!("{i},"), |a, b| a + &b).unwrap();
            assert_eq!(got, reference, "thread count {threads} changed fold order");
        }
        // Float partial sums must also be bit-identical.
        let waves: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let ref_sum = par_fold(1, &waves, heavy, |a, b| a + b).unwrap();
        for threads in [2, 7, 16] {
            let got = par_fold(threads, &waves, heavy, |a, b| a + b).unwrap();
            assert_eq!(got.to_bits(), ref_sum.to_bits());
        }
    }

    #[test]
    fn par_fold_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        assert!(par_fold(4, &empty, |_, &v| v, |a, b| a + b).is_none());
        assert_eq!(par_fold(4, &[41], |_, &v| v + 1, |a, b| a + b), Some(42));
    }

    #[test]
    fn point_seeds_are_distinct_streams() {
        let seeds: Vec<u64> = (0..1000).map(|i| point_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
        // Different study seeds give different streams.
        assert_ne!(point_seed(1, 0), point_seed(2, 0));
    }
}
