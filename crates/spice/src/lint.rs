//! Pre-simulation netlist linter: structural DRC, singularity prediction
//! and parameter-sanity diagnostics over a [`Circuit`].
//!
//! The linter inspects a circuit *statically* — no Newton iteration, no
//! factorization — and emits [`Diagnostic`]s with stable codes (L001…),
//! a severity, the offending element/node names and a fix hint. The
//! analysis entry points ([`crate::analysis::op`], `dc`, `ac`, `tran`)
//! run the error-level subset through [`precheck`] before touching the
//! solver, so a malformed netlist is rejected with an actionable
//! [`SpiceError::LintRejected`] instead of failing deep inside Newton
//! with a bare `SingularMatrix` (or converging to gmin-rescued garbage).
//! Set `CML_LINT=off` in the environment to bypass the precheck.
//!
//! # Passes
//!
//! 1. **Connectivity** — floating nodes ([`LintCode::FloatingNode`]),
//!    components with no DC path to ground ([`LintCode::NoDcPath`]),
//!    walked over each element's declared [`DcCoupling`]s.
//! 2. **Structural** — loops of voltage-defined elements
//!    ([`LintCode::VoltageLoop`]) via union-find, all-current-source
//!    cutsets ([`LintCode::CurrentCutset`]), and generic-rank prediction
//!    ([`LintCode::StructuralSingular`]): one recording-[`Stamper`] pass
//!    captures the DC stamp sparsity pattern (the same mechanism the
//!    sparse solver uses for pattern discovery) and a maximum bipartite
//!    matching bounds the rank — a deficient pattern is singular for
//!    *every* assignment of element values.
//! 3. **Parameter sanity** — duplicate names, degenerate MOSFET wiring,
//!    dead sources, implausible magnitudes, via [`Element::lint_self`].
//! 4. **Operating-point heuristics** — current-source bias networks with
//!    no driving voltage source anywhere in their DC-connected component
//!    ([`LintCode::UnreferencedBias`], the class of bug where a BMVR
//!    tail current lands on transistors whose gates can never leave 0 V).
//!
//! The graph passes and the matching are complementary: an ungrounded
//! resistor island has a generically full-rank pattern (its singularity
//! is a value-level cancellation), so only reachability sees it, while an
//! empty matrix row/column (floating MOSFET gate, unread VCCS output) is
//! invisible to reachability under generous couplings and only the
//! matching sees it.

use crate::circuit::{Circuit, NodeId};
use crate::element::{DcCoupling, Element, ElementKind, StampCtx, StampMode, Stamper};
use crate::SpiceError;
use cml_numeric::matching::max_bipartite_matching;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// How serious a diagnostic is. Errors predict a failed or meaningless
/// solve and make [`precheck`] reject the netlist; warnings and infos
/// never block simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Stylistic or harmless-but-suspicious construct.
    Info,
    /// Likely bug that the solver will nonetheless survive.
    Warning,
    /// Structural defect: the MNA system is singular or the element
    /// bookkeeping is corrupted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric form (`L001`…) is part of the
/// public interface: tests, tooling and suppression lists key on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// L001: a node appears in no element.
    FloatingNode,
    /// L002: a connected component has no DC path to ground.
    NoDcPath,
    /// L003: a loop of voltage-defined elements (V sources, inductors,
    /// VCVS outputs).
    VoltageLoop,
    /// L004: an island connected to the rest of the circuit only through
    /// current sources.
    CurrentCutset,
    /// L005: the DC stamp pattern is structurally rank-deficient.
    StructuralSingular,
    /// L006: two elements share a name.
    DuplicateName,
    /// L007: a MOSFET with drain and source on the same node.
    MosfetDegenerate,
    /// L008: a source that injects nothing in any analysis.
    DeadSource,
    /// L009: a parameter magnitude far outside the plausible range.
    ExtremeParameter,
    /// L010: a DC current source biasing a transistor network that
    /// contains no voltage source to reference.
    UnreferencedBias,
    /// L011: a node reached by exactly one two-terminal element — a stub
    /// that carries no current.
    DanglingStub,
    /// L012: an element with both terminals on the same node.
    SelfLoop,
}

impl LintCode {
    /// Every code, in numeric order — the documentation table and the
    /// CLI `--codes` listing iterate this.
    pub const ALL: [LintCode; 12] = [
        LintCode::FloatingNode,
        LintCode::NoDcPath,
        LintCode::VoltageLoop,
        LintCode::CurrentCutset,
        LintCode::StructuralSingular,
        LintCode::DuplicateName,
        LintCode::MosfetDegenerate,
        LintCode::DeadSource,
        LintCode::ExtremeParameter,
        LintCode::UnreferencedBias,
        LintCode::DanglingStub,
        LintCode::SelfLoop,
    ];

    /// The stable code string, `"L001"` … `"L012"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::FloatingNode => "L001",
            LintCode::NoDcPath => "L002",
            LintCode::VoltageLoop => "L003",
            LintCode::CurrentCutset => "L004",
            LintCode::StructuralSingular => "L005",
            LintCode::DuplicateName => "L006",
            LintCode::MosfetDegenerate => "L007",
            LintCode::DeadSource => "L008",
            LintCode::ExtremeParameter => "L009",
            LintCode::UnreferencedBias => "L010",
            LintCode::DanglingStub => "L011",
            LintCode::SelfLoop => "L012",
        }
    }

    /// Severity class of this code.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintCode::FloatingNode
            | LintCode::NoDcPath
            | LintCode::VoltageLoop
            | LintCode::CurrentCutset
            | LintCode::StructuralSingular
            | LintCode::DuplicateName => Severity::Error,
            LintCode::MosfetDegenerate
            | LintCode::DeadSource
            | LintCode::ExtremeParameter
            | LintCode::UnreferencedBias => Severity::Warning,
            LintCode::DanglingStub | LintCode::SelfLoop => Severity::Info,
        }
    }

    /// One-line name of the defect class.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            LintCode::FloatingNode => "floating node",
            LintCode::NoDcPath => "no DC path to ground",
            LintCode::VoltageLoop => "voltage-defined loop",
            LintCode::CurrentCutset => "current-source cutset",
            LintCode::StructuralSingular => "structurally singular MNA system",
            LintCode::DuplicateName => "duplicate element name",
            LintCode::MosfetDegenerate => "degenerate MOSFET connection",
            LintCode::DeadSource => "dead source",
            LintCode::ExtremeParameter => "implausible parameter magnitude",
            LintCode::UnreferencedBias => "bias network without voltage reference",
            LintCode::DanglingStub => "dangling stub",
            LintCode::SelfLoop => "element shorted to itself",
        }
    }

    /// Suggested fix, rendered under the diagnostic.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            LintCode::FloatingNode => {
                "connect the node to an element, or remove it from the netlist"
            }
            LintCode::NoDcPath => {
                "add a DC-conductive path (resistor, channel, source) from the island to ground; \
                 capacitors are open and current sources carry no potential at DC"
            }
            LintCode::VoltageLoop => {
                "break the loop: voltage sources, inductors and VCVS outputs each fix a voltage \
                 difference, and a closed loop of them over-determines KVL"
            }
            LintCode::CurrentCutset => {
                "give the island a non-current-source connection; a cut of ideal current sources \
                 leaves the island's charge (and potential) undefined"
            }
            LintCode::StructuralSingular => {
                "every listed unknown needs an equation that depends on it: attach a conductive \
                 element, or remove the unknown (e.g. drive a floating gate, load a VCCS output)"
            }
            LintCode::DuplicateName => {
                "rename one of the elements; branch-current lookup and diagnostics key on names"
            }
            LintCode::MosfetDegenerate => {
                "a MOSFET with drain tied to source conducts nothing; check the terminal order \
                 (d, g, s, b)"
            }
            LintCode::DeadSource => {
                "the source has zero DC and zero AC magnitude, so it only shorts/opens its nodes; \
                 give it a value or remove it"
            }
            LintCode::ExtremeParameter => {
                "the value parses but is orders of magnitude outside circuit practice; check the \
                 unit prefix (meg vs m, f vs F)"
            }
            LintCode::UnreferencedBias => {
                "the driven component contains transistors but no voltage source: gates can never \
                 leave 0 V, so the tail current has nowhere to flow; add the supply before solving"
            }
            LintCode::DanglingStub => {
                "the stub carries no current and does not affect the solution; remove it or finish \
                 the intended connection"
            }
            LintCode::SelfLoop => {
                "both terminals are on the same node, so the element drops zero volts and stamps \
                 nothing useful; check the node wiring"
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One linter finding: a coded defect with the names needed to locate it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code identifying the defect class.
    pub code: LintCode,
    /// Offending element, when the defect is element-shaped.
    pub element: Option<String>,
    /// Offending node names, when the defect is node-shaped.
    pub nodes: Vec<String>,
    /// Human-readable specifics.
    pub message: String,
}

impl Diagnostic {
    /// Severity of this diagnostic (derived from its code).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity(),
            self.code,
            self.code.title(),
            self.message
        )?;
        if let Some(e) = &self.element {
            write!(f, " (element {e})")?;
        }
        Ok(())
    }
}

/// Result of a lint run: diagnostics sorted errors-first, then by code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Whether any error-level diagnostic is present.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// Whether the report is completely clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics at exactly `sev`.
    #[must_use]
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// Diagnostics at or above `min`.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity() >= min)
    }

    /// Renders the report as human-readable text, one finding plus its
    /// fix hint per paragraph, for diagnostics at or above `min`.
    #[must_use]
    pub fn render(&self, min: Severity) -> String {
        let mut out = String::new();
        for d in self.at_least(min) {
            out.push_str(&d.to_string());
            out.push('\n');
            if !d.nodes.is_empty() {
                out.push_str(&format!("    nodes: {}\n", d.nodes.join(", ")));
            }
            out.push_str(&format!("    hint: {}\n", d.code.hint()));
        }
        out
    }
}

/// Whether the mandatory precheck is enabled (`CML_LINT=off|0|false`
/// disables it; read once per process).
fn lint_enabled() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        !matches!(
            std::env::var("CML_LINT")
                .map(|v| v.trim().to_ascii_lowercase())
                .as_deref(),
            Ok("off" | "0" | "false" | "no")
        )
    })
}

/// Runs every lint pass over the circuit.
#[must_use]
pub fn lint(ckt: &Circuit) -> LintReport {
    lint_impl(ckt, false)
}

/// The cheap, mandatory error-level subset run by every analysis entry
/// point. Returns [`SpiceError::LintRejected`] carrying the error
/// diagnostics when the netlist is structurally unsolvable; honours the
/// `CML_LINT=off` escape hatch.
///
/// # Errors
///
/// [`SpiceError::LintRejected`] when any error-level diagnostic fires.
pub fn precheck(ckt: &Circuit) -> Result<(), SpiceError> {
    if !lint_enabled() {
        return Ok(());
    }
    let report = lint_impl(ckt, true);
    if report.has_errors() {
        return Err(SpiceError::LintRejected {
            diagnostics: report.diagnostics,
        });
    }
    Ok(())
}

/// Unit-aware plausible magnitude band `(min, max, unit)` for a passive
/// element kind. The bands are per-kind on purpose: a 1 fF capacitor is
/// a perfectly ordinary parasitic, while a 1 fΩ "resistor" is a typo —
/// one global magnitude band cannot express both. `None` for kinds with
/// no meaningful single-parameter band.
#[must_use]
pub fn plausible_band(kind: ElementKind) -> Option<(f64, f64, &'static str)> {
    match kind {
        ElementKind::Resistor => Some((1e-3, 1e9, "ohm")),
        ElementKind::Capacitor => Some((1e-18, 1e-3, "F")),
        ElementKind::Inductor => Some((1e-15, 1.0, "H")),
        _ => None,
    }
}

/// L009 helper: renders the extreme-parameter message when `value` falls
/// outside the [`plausible_band`] of `kind`, `None` when plausible (or
/// when the kind has no band).
#[must_use]
pub fn extreme_value(quantity: &str, value: f64, kind: ElementKind) -> Option<String> {
    let (min, max, unit) = plausible_band(kind)?;
    if value < min || value > max {
        Some(format!(
            "{quantity} {value:.3e} {unit} is outside the plausible band [{min:.0e}, {max:.0e}] {unit}"
        ))
    } else {
        None
    }
}

/// Names of elements that appear more than once (helper for cell-builder
/// debug assertions in `cml-core`, which lint partial circuits where the
/// full connectivity passes would falsely fire).
#[must_use]
pub fn duplicate_element_names(ckt: &Circuit) -> Vec<String> {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for e in ckt.elements() {
        *counts.entry(e.name()).or_insert(0) += 1;
    }
    let mut dupes: Vec<String> = counts
        .into_iter()
        .filter(|&(_, c)| c > 1)
        .map(|(n, _)| n.to_string())
        .collect();
    dupes.sort();
    dupes
}

/// Union-find over node raw ids.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Maximum node names listed per component-level diagnostic.
const MAX_LISTED_NODES: usize = 6;

fn node_names(ckt: &Circuit, raws: &[usize]) -> Vec<String> {
    raws.iter()
        .take(MAX_LISTED_NODES)
        .map(|&r| ckt.node_name(NodeId::from_raw(r as u32)).to_string())
        .collect()
}

fn lint_impl(ckt: &Circuit, errors_only: bool) -> LintReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let n_total = ckt.num_nodes();
    let elems: Vec<&dyn Element> = ckt.elements().collect();

    // Incidence: raw node id → element indices (deduplicated per element).
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n_total];
    for (ei, e) in elems.iter().enumerate() {
        let mut nodes: Vec<u32> = e.nodes().iter().map(|n| n.raw()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for raw in nodes {
            incident[raw as usize].push(ei);
        }
    }

    // L006: duplicate element names.
    {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for e in &elems {
            *counts.entry(e.name()).or_insert(0) += 1;
        }
        let mut dupes: Vec<(&str, usize)> = counts.into_iter().filter(|&(_, c)| c > 1).collect();
        dupes.sort_unstable();
        for (name, count) in dupes {
            diags.push(Diagnostic {
                code: LintCode::DuplicateName,
                element: Some(name.to_string()),
                nodes: Vec::new(),
                message: format!("element name '{name}' is used by {count} elements"),
            });
        }
    }

    // Element-local sanity (L007/L008/L009/L012) — warnings and infos.
    if !errors_only {
        for e in &elems {
            for (code, message) in e.lint_self() {
                diags.push(Diagnostic {
                    code,
                    element: Some(e.name().to_string()),
                    nodes: e
                        .nodes()
                        .iter()
                        .map(|&n| ckt.node_name(n).to_string())
                        .collect(),
                    message,
                });
            }
        }
    }

    // L001: nodes in no element.
    let mut floating = vec![false; n_total];
    for (raw, inc) in incident.iter().enumerate().skip(1) {
        if inc.is_empty() {
            floating[raw] = true;
            let name = ckt.node_name(NodeId::from_raw(raw as u32)).to_string();
            diags.push(Diagnostic {
                code: LintCode::FloatingNode,
                element: None,
                nodes: vec![name.clone()],
                message: format!("node '{name}' appears in no element"),
            });
        }
    }

    // DC-connectivity components over conductive + voltage-defined
    // couplings, and the voltage-defined edge list for loop detection.
    let mut dsu = Dsu::new(n_total);
    let mut v_edges: Vec<(usize, usize, usize)> = Vec::new(); // (a, b, elem)
    for (ei, e) in elems.iter().enumerate() {
        for c in e.dc_couplings() {
            match c {
                DcCoupling::Conductive(a, b) => dsu.union(a.raw() as usize, b.raw() as usize),
                DcCoupling::VoltageDefined(a, b) => {
                    v_edges.push((a.raw() as usize, b.raw() as usize, ei));
                    dsu.union(a.raw() as usize, b.raw() as usize);
                }
                DcCoupling::CurrentInjection(..) => {}
            }
        }
    }

    // L002 / L004: ungrounded components.
    let ground_root = dsu.find(0);
    let mut comps: HashMap<usize, Vec<usize>> = HashMap::new();
    for (raw, &is_floating) in floating.iter().enumerate().take(n_total).skip(1) {
        if !is_floating {
            let root = dsu.find(raw);
            if root != ground_root {
                comps.entry(root).or_default().push(raw);
            }
        }
    }
    let mut comps: Vec<Vec<usize>> = comps.into_values().collect();
    comps.sort_by_key(|c| c[0]);
    for comp in &comps {
        let root = dsu.find(comp[0]);
        // Elements crossing the cut around this component.
        let mut crossing: Vec<usize> = Vec::new();
        for &raw in comp {
            for &ei in &incident[raw] {
                let nodes = elems[ei].nodes();
                if nodes.iter().any(|n| dsu.find(n.raw() as usize) != root) {
                    crossing.push(ei);
                }
            }
        }
        crossing.sort_unstable();
        crossing.dedup();
        let all_current = !crossing.is_empty()
            && crossing
                .iter()
                .all(|&ei| elems[ei].kind() == ElementKind::CurrentSource);
        let names = node_names(ckt, comp);
        let listed = names.join(", ");
        let suffix = if comp.len() > MAX_LISTED_NODES {
            format!(" (+{} more)", comp.len() - MAX_LISTED_NODES)
        } else {
            String::new()
        };
        if all_current {
            diags.push(Diagnostic {
                code: LintCode::CurrentCutset,
                element: Some(elems[crossing[0]].name().to_string()),
                nodes: names,
                message: format!(
                    "node(s) {listed}{suffix} connect to the rest of the circuit only through \
                     ideal current sources"
                ),
            });
        } else {
            diags.push(Diagnostic {
                code: LintCode::NoDcPath,
                element: None,
                nodes: names,
                message: format!("node(s) {listed}{suffix} have no DC path to ground"),
            });
        }
    }

    // L003: loops (and self-shorts) of voltage-defined elements.
    {
        let mut vdsu = Dsu::new(n_total);
        for &(a, b, ei) in &v_edges {
            if a == b {
                diags.push(Diagnostic {
                    code: LintCode::VoltageLoop,
                    element: Some(elems[ei].name().to_string()),
                    nodes: vec![ckt.node_name(NodeId::from_raw(a as u32)).to_string()],
                    message: format!("'{}' has both terminals on the same node", elems[ei].name()),
                });
            } else if vdsu.find(a) == vdsu.find(b) {
                diags.push(Diagnostic {
                    code: LintCode::VoltageLoop,
                    element: Some(elems[ei].name().to_string()),
                    nodes: node_names(ckt, &[a, b]),
                    message: format!(
                        "'{}' closes a loop of voltage-defined elements (voltage sources, \
                         inductors, VCVS outputs)",
                        elems[ei].name()
                    ),
                });
            } else {
                vdsu.union(a, b);
            }
        }
    }

    let have_errors = diags.iter().any(|d| d.severity() == Severity::Error);

    // L005: structural rank of the recorded DC stamp pattern. Skipped
    // when a graph pass already found an error — those passes explain
    // the deficiency with a sharper message, and the matching would
    // re-report the same unknowns.
    if !have_errors {
        let (dim, n_nodes, positions, branch_owner) = stamp_pattern(ckt, &elems);
        if dim > 0 {
            let m = max_bipartite_matching(dim, dim, &positions);
            if m.size < dim {
                let unknowns: Vec<String> = m
                    .unmatched_cols()
                    .iter()
                    .take(MAX_LISTED_NODES)
                    .map(|&i| unknown_name(ckt, i, n_nodes, &branch_owner))
                    .collect();
                let node_list: Vec<String> = m
                    .unmatched_cols()
                    .iter()
                    .filter(|&&i| i < n_nodes)
                    .map(|&i| ckt.node_name(NodeId::from_raw(i as u32 + 1)).to_string())
                    .collect();
                diags.push(Diagnostic {
                    code: LintCode::StructuralSingular,
                    element: None,
                    nodes: node_list,
                    message: format!(
                        "structural rank {} < dimension {dim}: unknown(s) {} appear in no \
                         independent equation",
                        m.size,
                        unknowns.join(", ")
                    ),
                });
            }
        }
    }

    // Heuristics (L010/L011) only fire on circuits that are otherwise
    // structurally sound — anything else would bury the real error.
    if !errors_only && !diags.iter().any(|d| d.severity() == Severity::Error) {
        // Components (by root) containing a voltage source / a MOSFET.
        let mut has_vsource: HashMap<usize, bool> = HashMap::new();
        let mut has_mosfet: HashMap<usize, bool> = HashMap::new();
        for e in &elems {
            let mark = match e.kind() {
                ElementKind::VoltageSource => &mut has_vsource,
                ElementKind::Mosfet => &mut has_mosfet,
                _ => continue,
            };
            for n in e.nodes() {
                mark.insert(dsu.find(n.raw() as usize), true);
            }
        }
        // L010: DC current sources into voltage-reference-free networks.
        for e in &elems {
            if e.kind() != ElementKind::CurrentSource {
                continue;
            }
            if e.dc_source_value().unwrap_or(0.0) == 0.0 {
                continue;
            }
            let roots: Vec<usize> = e
                .nodes()
                .iter()
                .map(|n| dsu.find(n.raw() as usize))
                .collect();
            let sees_vsource = roots
                .iter()
                .any(|r| has_vsource.get(r).copied().unwrap_or(false));
            let sees_mosfet = roots
                .iter()
                .any(|r| has_mosfet.get(r).copied().unwrap_or(false));
            if sees_mosfet && !sees_vsource {
                diags.push(Diagnostic {
                    code: LintCode::UnreferencedBias,
                    element: Some(e.name().to_string()),
                    nodes: e
                        .nodes()
                        .iter()
                        .map(|&n| ckt.node_name(n).to_string())
                        .collect(),
                    message: format!(
                        "current source '{}' drives a transistor network that contains no \
                         voltage source",
                        e.name()
                    ),
                });
            }
        }
        // L011: single-element resistor/inductor stubs.
        for (raw, inc) in incident.iter().enumerate().take(n_total).skip(1) {
            if inc.len() != 1 {
                continue;
            }
            let ei = inc[0];
            let kind = elems[ei].kind();
            if !matches!(kind, ElementKind::Resistor | ElementKind::Inductor) {
                continue;
            }
            let nodes = elems[ei].nodes();
            if nodes.len() == 2 && nodes[0] != nodes[1] {
                let name = ckt.node_name(NodeId::from_raw(raw as u32)).to_string();
                diags.push(Diagnostic {
                    code: LintCode::DanglingStub,
                    element: Some(elems[ei].name().to_string()),
                    nodes: vec![name.clone()],
                    message: format!(
                        "node '{name}' is reached only by '{}'; the stub carries no current",
                        elems[ei].name()
                    ),
                });
            }
        }
    }

    // Stable presentation: errors first, then by code, then by locus.
    diags.sort_by(|a, b| {
        b.severity()
            .cmp(&a.severity())
            .then(a.code.cmp(&b.code))
            .then(a.element.cmp(&b.element))
            .then(a.nodes.cmp(&b.nodes))
    });
    LintReport { diagnostics: diags }
}

/// Records the DC stamp sparsity pattern with one recording-[`Stamper`]
/// pass at `x = 0` — no gmin, no symmetrization, no forced diagonal, so
/// the pattern is exactly what the elements write. Returns
/// `(dim, n_nodes, positions, branch_owner)` where `branch_owner[k]` is
/// the element owning branch unknown `k`.
pub(crate) fn stamp_pattern(
    ckt: &Circuit,
    elems: &[&dyn Element],
) -> (usize, usize, Vec<(usize, usize)>, Vec<String>) {
    let n_nodes = ckt.num_unknown_nodes();
    let mut branch_owner: Vec<String> = Vec::new();
    for e in elems {
        for _ in 0..e.num_branches() {
            branch_owner.push(e.name().to_string());
        }
    }
    let dim = n_nodes + branch_owner.len();
    let x = vec![0.0; dim];
    let mut positions: Vec<(usize, usize)> = Vec::new();
    let mut scratch_rhs = vec![0.0; dim];
    let mut branch_base = 0;
    for e in elems {
        let ctx = StampCtx {
            x: &x,
            state: &[],
            branch_base,
            n_nodes,
            mode: StampMode::dc(),
        };
        let mut stamper = Stamper::pattern(&mut positions, &mut scratch_rhs, n_nodes);
        e.stamp(&ctx, &mut stamper);
        branch_base += e.num_branches();
    }
    (dim, n_nodes, positions, branch_owner)
}

/// Human name of MNA unknown `i`: a node voltage or a branch current.
pub(crate) fn unknown_name(
    ckt: &Circuit,
    i: usize,
    n_nodes: usize,
    branch_owner: &[String],
) -> String {
    if i < n_nodes {
        format!("v({})", ckt.node_name(NodeId::from_raw(i as u32 + 1)))
    } else {
        format!("i({})", branch_owner[i - n_nodes])
    }
}
