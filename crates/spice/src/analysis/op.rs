//! DC operating-point analysis.
//!
//! Plain Newton from a zero guess, with two homotopy fallbacks when it
//! fails: **gmin stepping** (start with heavy conductance to ground and
//! relax it decade by decade) and **source stepping** (ramp all independent
//! sources from zero), both warm-starting each stage from the previous
//! solution — the same ladder ngspice climbs.

use super::{NewtonOptions, NewtonWorkspace, System};
use crate::circuit::{Circuit, NodeId};
use crate::element::StampMode;
use crate::SpiceError;
use cml_telemetry::{EventKind, Phase, Telemetry};
use std::collections::HashMap;

/// Result of an operating-point solve.
#[derive(Debug, Clone)]
pub struct OpResult {
    x: Vec<f64>,
    n_nodes: usize,
    branch_names: HashMap<String, usize>,
}

impl OpResult {
    /// Node voltage at the operating point (0 for ground).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        super::voltage_from(&self.x, node)
    }

    /// Branch current of a named voltage-defined element (voltage source
    /// or inductor).
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotFound`] if no such branch exists.
    pub fn current(&self, element: &str) -> Result<f64, SpiceError> {
        self.branch_names
            .get(element)
            .map(|&i| self.x[i])
            .ok_or_else(|| SpiceError::NotFound {
                what: "branch element",
                name: element.to_string(),
            })
    }

    /// The full solution vector (node voltages then branch currents).
    #[must_use]
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Number of non-ground nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total power delivered by sources = total power dissipated, in watts.
    ///
    /// Computed as −Σ(dc_power of sources); element `dc_power` reports
    /// absorbed power, so a delivering source contributes negatively.
    #[must_use]
    pub fn total_power(&self, ckt: &Circuit) -> f64 {
        let sys_names = &self.branch_names;
        let mut delivered = 0.0;
        for e in ckt.elements() {
            let bb = sys_names.get(e.name()).copied().unwrap_or(0);
            if let Some(p) = e.dc_power(&self.x, bb) {
                if p < 0.0 {
                    delivered -= p;
                }
            }
        }
        delivered
    }
}

/// Solves the DC operating point of a circuit.
///
/// # Errors
///
/// [`SpiceError::NoConvergence`] if all homotopies fail,
/// [`SpiceError::Singular`] for structurally singular netlists.
pub fn solve(ckt: &Circuit) -> Result<OpResult, SpiceError> {
    solve_with(ckt, &NewtonOptions::default(), None)
}

/// Solves the operating point with custom Newton options and an optional
/// source evaluation time (used by transient analysis, which wants the
/// waveform values at `t = 0` rather than the DC values).
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with(
    ckt: &Circuit,
    opts: &NewtonOptions,
    at_time: Option<f64>,
) -> Result<OpResult, SpiceError> {
    solve_traced(ckt, opts, at_time, &Telemetry::disabled())
}

/// [`solve_with`] recording solver telemetry (spans, Newton/homotopy
/// counters, lint-precheck time) into `tel`.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_traced(
    ckt: &Circuit,
    opts: &NewtonOptions,
    at_time: Option<f64>,
    tel: &Telemetry,
) -> Result<OpResult, SpiceError> {
    let res = solve_traced_impl(ckt, opts, at_time, tel);
    if let Err(e) = &res {
        // Forensic dump on the failure path only; a no-op unless a
        // flight directory is configured (see `crate::flight`).
        crate::flight::record_failure(ckt, opts, "op", e, tel);
    }
    res
}

fn solve_traced_impl(
    ckt: &Circuit,
    opts: &NewtonOptions,
    at_time: Option<f64>,
    tel: &Telemetry,
) -> Result<OpResult, SpiceError> {
    let _span = tel.span("analysis", "op");
    {
        let _t = tel.timer(Phase::LintPrecheck);
        if let Err(e) = super::cache::lint_precheck_cached(ckt, opts.cache_enabled(), tel) {
            if let SpiceError::LintRejected { diagnostics } = &e {
                let errors = diagnostics.len() as u32;
                tel.event(|| EventKind::LintRejected { errors });
            }
            return Err(e);
        }
    }
    tel.count(|c| c.lint_prechecks += 1);
    let sys = System::new(ckt);
    let x = solve_system(&sys, opts, at_time, tel)?;
    Ok(OpResult {
        x,
        n_nodes: sys.n_nodes(),
        branch_names: sys.branch_names().clone(),
    })
}

pub(crate) fn solve_system(
    sys: &System<'_>,
    opts: &NewtonOptions,
    at_time: Option<f64>,
    tel: &Telemetry,
) -> Result<Vec<f64>, SpiceError> {
    let dim = sys.dim();
    let x0 = if opts.warm_start_from_analysis && crate::analyze::enabled() {
        if opts.cache_enabled() {
            super::cache::warm_start_cached(sys, opts.gmin, dim, tel)
        } else {
            crate::analyze::warm_start_vector(sys.circuit(), opts.gmin, dim, tel)
        }
    } else {
        vec![0.0; dim]
    };
    let state: Vec<f64> = Vec::new();
    let mode = |scale: f64| StampMode::Dc {
        source_scale: scale,
        at_time,
    };
    // One workspace for the whole homotopy ladder: no stamp caching in
    // DC mode (gmin and source scale change between rungs), but the
    // matrix, RHS and LU buffers are reused instead of reallocated.
    let mut ws = NewtonWorkspace::new();
    let mut newton = |mode: StampMode, x0: &[f64], o: &NewtonOptions| {
        sys.newton_with(mode, x0, &state, o, "op", &mut ws, false, tel)
    };

    // 1. Plain Newton.
    if let Ok(x) = newton(mode(1.0), &x0, opts) {
        return Ok(x);
    }

    // 2. Gmin stepping: relax a heavy conditioning conductance.
    let _span = tel.span_fine("solver", "op_homotopy");
    let mut x = x0.clone();
    let mut ok = true;
    let mut gmin = 1e-2;
    while gmin >= opts.gmin {
        let staged = NewtonOptions { gmin, ..*opts };
        match newton(mode(1.0), &x, &staged) {
            Ok(next) => x = next,
            Err(_) => {
                ok = false;
                break;
            }
        }
        gmin /= 10.0;
    }
    if ok {
        return Ok(x);
    }

    // 3. Source stepping: ramp sources from 5 % to 100 %.
    let mut x = x0;
    let steps = 20;
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        let staged = NewtonOptions {
            gmin: opts.gmin.max(1e-9),
            ..*opts
        };
        x = newton(mode(scale), &x, &staged)?;
    }
    // Final polish at full sources and nominal gmin.
    newton(mode(1.0), &x, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::dc("V1", vin, Circuit::GROUND, 3.0));
        ckt.add(Resistor::new("R1", vin, out, 2e3));
        ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e3));
        let op = solve(&ckt).unwrap();
        assert!((op.voltage(out) - 1.0).abs() < 1e-9);
        assert!((op.voltage(vin) - 3.0).abs() < 1e-9);
        // Branch current: 3 V / 3 kΩ = 1 mA flowing out of the source's
        // positive terminal → branch current is −1 mA (SPICE convention).
        assert!((op.current("V1").unwrap() + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        ckt.add(Isource::dc("I1", Circuit::GROUND, n1, 1e-3));
        ckt.add(Resistor::new("R1", n1, Circuit::GROUND, 1e3));
        let op = solve(&ckt).unwrap();
        assert!((op.voltage(n1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, b, 100.0));
        ckt.add(Inductor::new("L1", b, Circuit::GROUND, 1e-9));
        let op = solve(&ckt).unwrap();
        assert!(op.voltage(b).abs() < 1e-6);
        assert!((op.current("L1").unwrap() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 2.0));
        ckt.add(Resistor::new("R1", a, b, 1e3));
        ckt.add(Capacitor::new("C1", b, Circuit::GROUND, 1e-12));
        let op = solve(&ckt).unwrap();
        // No DC path through C: b floats up to a's potential via R.
        assert!((op.voltage(b) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn diode_clamp_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Isource::dc("I1", Circuit::GROUND, a, 1e-3));
        ckt.add(Diode::new("D1", a, Circuit::GROUND, DiodeParams::default()));
        let op = solve(&ckt).unwrap();
        let v = op.voltage(a);
        assert!(v > 0.5 && v < 0.8, "diode drop = {v}");
    }

    #[test]
    fn nmos_common_source_bias() {
        // NMOS with RD load: check the op point sits where the load line
        // and square law intersect.
        let params = MosParams {
            mos_type: MosType::Nmos,
            w: 10e-6,
            l: 0.18e-6,
            vth0: 0.45,
            kp: 170e-6,
            lambda: 0.1,
            cox: 8.4e-3,
            cov: 3.0e-10,
            cj: 1.0e-3,
            ldiff: 0.5e-6,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
        ckt.add(Vsource::dc("VG", g, Circuit::GROUND, 0.8));
        ckt.add(Resistor::new("RD", vdd, d, 1e3));
        ckt.add(Mosfet::new(
            "M1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            params.clone(),
        ));
        let op = solve(&ckt).unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.0 && vd < 1.8, "vd = {vd}");
        // KCL: ID = (VDD − VD)/RD must equal the square-law current.
        let id_load = (1.8 - vd) / 1e3;
        let ev = crate::devices::mosfet::square_law(&params, 0.8, vd);
        assert!(
            (id_load - ev.ids).abs() / id_load < 1e-3,
            "load {id_load} vs device {}",
            ev.ids
        );
    }

    #[test]
    fn pmos_source_follower_converges() {
        let params = MosParams {
            mos_type: MosType::Pmos,
            w: 20e-6,
            l: 0.18e-6,
            vth0: 0.45,
            kp: 60e-6,
            lambda: 0.1,
            cox: 8.4e-3,
            cov: 3.0e-10,
            cj: 1.0e-3,
            ldiff: 0.5e-6,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add(Vsource::dc("VDD", vdd, Circuit::GROUND, 1.8));
        ckt.add(Vsource::dc("VG", g, Circuit::GROUND, 0.9));
        ckt.add(Resistor::new("RD", d, Circuit::GROUND, 500.0));
        ckt.add(Mosfet::new("M1", d, g, vdd, vdd, params));
        let op = solve(&ckt).unwrap();
        let vd = op.voltage(d);
        // PMOS pulls the drain up from ground.
        assert!(vd > 0.1, "vd = {vd}");
    }

    #[test]
    fn total_power_of_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 2.0));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
        let op = solve(&ckt).unwrap();
        // P = V²/R = 4 mW.
        assert!((op.total_power(&ckt) - 4e-3).abs() < 1e-9);
    }

    #[test]
    fn missing_branch_current_errors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Isource::dc("I1", Circuit::GROUND, a, 1e-3));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
        let op = solve(&ckt).unwrap();
        assert!(matches!(op.current("I1"), Err(SpiceError::NotFound { .. })));
    }
}
