//! Streaming waveform sinks for transient analysis.
//!
//! The historical transient API buffered every solution vector densely
//! (`sols.push(x.clone())`), which caps run length at a few thousand
//! bits of pattern before memory blows up. The streaming architecture
//! inverts the flow: [`super::tran::run_streaming`] pushes fixed-size
//! **columnar chunks** — a times slice plus one column per selected
//! probe — into a caller-supplied [`WaveSink`], so a million-bit PRBS
//! run holds only O(chunk) waveform data regardless of duration.
//!
//! * [`TranProbes`] selects which waveforms materialize (node voltages,
//!   differential pairs, branch currents) — unselected state is solved
//!   but never copied out of the Newton loop;
//! * [`WaveSink`] is the consumer trait ([`begin`](WaveSink::begin) /
//!   [`chunk`](WaveSink::chunk) / [`finish`](WaveSink::finish));
//! * [`DenseSink`] reimplements the classic accumulate-everything
//!   behaviour as just another sink — the dense
//!   [`super::tran::run`] entry point is a thin wrapper over it, so
//!   every existing caller is source-compatible;
//! * [`Tee`] fans one stream out to two sinks (e.g. eye fold + disk
//!   spill in a single pass).
//!
//! Chunk size comes from [`super::tran::TranConfig::chunk_size`]
//! (default 1024 samples, `CML_TRAN_CHUNK` env override). See
//! DESIGN.md §12 for the memory model.

use super::System;
use crate::circuit::NodeId;
use crate::SpiceError;
use cml_telemetry::Telemetry;

/// One probed waveform: what a column of the streamed chunks contains.
#[derive(Debug, Clone, PartialEq)]
pub enum TranProbe {
    /// Voltage of a node (ground probes stream constant 0).
    Voltage(NodeId),
    /// Differential voltage `v(p) − v(n)`.
    Differential(NodeId, NodeId),
    /// Branch current of a named voltage-defined element.
    Current(String),
}

/// Probe selection for a streaming transient run.
///
/// Built with the fluent helpers; each probe contributes one named
/// column, in insertion order:
///
/// ```ignore
/// let probes = TranProbes::new()
///     .differential("vout", out_p, out_n)
///     .current("i(V1)", "V1");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TranProbes {
    cols: Vec<(String, TranProbe)>,
    full_state: bool,
}

impl TranProbes {
    /// No probes yet; chain the helpers below.
    #[must_use]
    pub fn new() -> Self {
        TranProbes::default()
    }

    /// Every MNA unknown (all node voltages, then all branch currents)
    /// becomes a column. This is what the dense compatibility path uses;
    /// streaming million-point runs should select probes instead.
    #[must_use]
    pub fn full_state() -> Self {
        TranProbes {
            cols: Vec::new(),
            full_state: true,
        }
    }

    /// Adds a node-voltage probe.
    #[must_use]
    pub fn voltage(mut self, name: impl Into<String>, node: NodeId) -> Self {
        self.cols.push((name.into(), TranProbe::Voltage(node)));
        self
    }

    /// Adds a differential probe `v(p) − v(n)`.
    #[must_use]
    pub fn differential(mut self, name: impl Into<String>, p: NodeId, n: NodeId) -> Self {
        self.cols.push((name.into(), TranProbe::Differential(p, n)));
        self
    }

    /// Adds a branch-current probe for a named voltage-defined element.
    #[must_use]
    pub fn current(mut self, name: impl Into<String>, element: impl Into<String>) -> Self {
        self.cols
            .push((name.into(), TranProbe::Current(element.into())));
        self
    }

    /// Number of probes (0 for [`full_state`](TranProbes::full_state),
    /// whose width depends on the circuit).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when no explicit probes were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// True for the full-state selection.
    #[must_use]
    pub fn is_full_state(&self) -> bool {
        self.full_state
    }
}

/// Summary of a streaming transient run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranStats {
    /// Accepted samples streamed (including the `t = 0` point).
    pub samples: u64,
    /// Chunks emitted.
    pub chunks: u64,
}

/// Run-level metadata handed to [`WaveSink::begin`] and
/// [`WaveSink::finish`].
#[derive(Debug, Clone)]
pub struct TranMeta {
    /// Column names, one per chunk column, in chunk order.
    pub col_names: Vec<String>,
    /// Stop time of the run, seconds.
    pub t_stop: f64,
    /// Nominal timestep, seconds (adaptive runs may accept larger or
    /// smaller steps).
    pub dt: f64,
    /// Maximum samples per chunk; every chunk except the last is exactly
    /// this long.
    pub chunk_size: usize,
}

impl TranMeta {
    /// Number of columns per chunk.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.col_names.len()
    }
}

/// One columnar slab of accepted transient samples.
///
/// `times` and every column in `cols` have identical length;
/// `first_index` is the absolute sample index of `times[0]` across the
/// whole run (chunk boundaries carry no other meaning — accumulators
/// must be chunk-invariant).
#[derive(Debug)]
pub struct WaveChunk<'a> {
    /// Absolute index of the first sample in this chunk.
    pub first_index: u64,
    /// Accepted time points, seconds.
    pub times: &'a [f64],
    /// One waveform column per probe, each `times.len()` long.
    pub cols: &'a [Vec<f64>],
}

impl WaveChunk<'_> {
    /// Samples in this chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the chunk carries no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

/// Consumer of streamed transient waveforms.
///
/// The engine calls [`begin`](WaveSink::begin) once, then
/// [`chunk`](WaveSink::chunk) for each slab of accepted samples (every
/// chunk full-size except possibly the last), then
/// [`finish`](WaveSink::finish) exactly once on success. An `Err` from
/// any method aborts the run and propagates to the caller.
pub trait WaveSink {
    /// Called once before the first chunk.
    ///
    /// # Errors
    ///
    /// Aborts the run.
    fn begin(&mut self, _meta: &TranMeta) -> Result<(), SpiceError> {
        Ok(())
    }

    /// Called for every chunk of accepted samples, in time order.
    ///
    /// # Errors
    ///
    /// Aborts the run.
    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError>;

    /// Called once after the final chunk of a successful run.
    ///
    /// # Errors
    ///
    /// Propagates to the caller as the run's result.
    fn finish(&mut self, _meta: &TranMeta) -> Result<(), SpiceError> {
        Ok(())
    }
}

/// Fans a stream out to two sinks, driving both in lockstep (chain
/// `Tee`s for wider fan-out). The first error from either sink aborts.
pub struct Tee<'a> {
    a: &'a mut dyn WaveSink,
    b: &'a mut dyn WaveSink,
}

impl<'a> Tee<'a> {
    /// Tees the stream into `a` and `b` (called in that order).
    pub fn new(a: &'a mut dyn WaveSink, b: &'a mut dyn WaveSink) -> Self {
        Tee { a, b }
    }
}

impl WaveSink for Tee<'_> {
    fn begin(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        self.a.begin(meta)?;
        self.b.begin(meta)
    }

    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        self.a.chunk(chunk)?;
        self.b.chunk(chunk)
    }

    fn finish(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        self.a.finish(meta)?;
        self.b.finish(meta)
    }
}

/// The classic accumulate-everything behaviour as a sink: buffers every
/// chunk densely in memory (columnar). [`super::tran::run`] drives one
/// of these over a full-state probe set and wraps the result in
/// [`super::tran::TranResult`], so dense callers see no change.
#[derive(Debug, Default)]
pub struct DenseSink {
    times: Vec<f64>,
    cols: Vec<Vec<f64>>,
    col_names: Vec<String>,
}

impl DenseSink {
    /// An empty dense buffer.
    #[must_use]
    pub fn new() -> Self {
        DenseSink::default()
    }

    /// Accepted time points so far.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Buffered columns (probe order).
    #[must_use]
    pub fn cols(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Column names from the run metadata.
    #[must_use]
    pub fn col_names(&self) -> &[String] {
        &self.col_names
    }

    /// Consumes the sink into `(times, cols)`.
    #[must_use]
    pub fn into_parts(self) -> (Vec<f64>, Vec<Vec<f64>>) {
        (self.times, self.cols)
    }
}

impl WaveSink for DenseSink {
    fn begin(&mut self, meta: &TranMeta) -> Result<(), SpiceError> {
        let cap = super::tran::clamped_step_estimate(meta.t_stop, meta.dt);
        self.times = Vec::with_capacity(cap);
        self.col_names = meta.col_names.clone();
        self.cols = (0..meta.n_cols())
            .map(|_| Vec::with_capacity(cap))
            .collect();
        Ok(())
    }

    fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
        self.times.extend_from_slice(chunk.times);
        for (dst, src) in self.cols.iter_mut().zip(chunk.cols) {
            dst.extend_from_slice(src);
        }
        Ok(())
    }
}

/// A probe resolved against a concrete MNA system.
enum ResolvedCol {
    /// Copy of one state-vector entry.
    State(usize),
    /// Constant zero (a ground-node probe).
    Ground,
    /// Difference of two optional state entries (`None` = ground).
    Diff(Option<usize>, Option<usize>),
}

impl ResolvedCol {
    #[inline]
    fn extract(&self, x: &[f64]) -> f64 {
        let get = |i: &Option<usize>| i.map_or(0.0, |i| x[i]);
        match self {
            ResolvedCol::State(i) => x[*i],
            ResolvedCol::Ground => 0.0,
            ResolvedCol::Diff(p, n) => get(p) - get(n),
        }
    }
}

/// Column extractor + fixed-size staging buffer between the stepping
/// loops and a sink. The loops push `(t, x)` pairs; the emitter extracts
/// the selected columns and flushes a [`WaveChunk`] whenever
/// `chunk_size` samples have accumulated (and once more at the end).
pub(crate) struct ChunkEmitter<'s> {
    sink: &'s mut dyn WaveSink,
    meta: TranMeta,
    resolved: Vec<ResolvedCol>,
    times: Vec<f64>,
    cols: Vec<Vec<f64>>,
    emitted: u64,
    chunks: u64,
}

impl<'s> ChunkEmitter<'s> {
    /// Resolves `probes` against `sys` and announces the run to `sink`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotFound`] for a current probe naming no branch;
    /// any error from [`WaveSink::begin`].
    pub(crate) fn new(
        sys: &System<'_>,
        probes: &TranProbes,
        chunk_size: usize,
        t_stop: f64,
        dt: f64,
        sink: &'s mut dyn WaveSink,
    ) -> Result<Self, SpiceError> {
        let chunk_size = chunk_size.max(1);
        let (col_names, resolved) = if probes.is_full_state() {
            let names = (0..sys.dim()).map(|i| format!("x{i}")).collect();
            let cols = (0..sys.dim()).map(ResolvedCol::State).collect();
            (names, cols)
        } else {
            let mut names = Vec::with_capacity(probes.cols.len());
            let mut cols = Vec::with_capacity(probes.cols.len());
            for (name, probe) in &probes.cols {
                let rc = match probe {
                    TranProbe::Voltage(node) => match node.index() {
                        Some(i) => ResolvedCol::State(i),
                        None => ResolvedCol::Ground,
                    },
                    TranProbe::Differential(p, n) => ResolvedCol::Diff(p.index(), n.index()),
                    TranProbe::Current(element) => {
                        let idx = *sys.branch_names().get(element).ok_or_else(|| {
                            SpiceError::NotFound {
                                what: "branch element",
                                name: element.clone(),
                            }
                        })?;
                        ResolvedCol::State(idx)
                    }
                };
                names.push(name.clone());
                cols.push(rc);
            }
            (names, cols)
        };
        let meta = TranMeta {
            col_names,
            t_stop,
            dt,
            chunk_size,
        };
        sink.begin(&meta)?;
        let n_cols = resolved.len();
        Ok(ChunkEmitter {
            sink,
            meta,
            resolved,
            times: Vec::with_capacity(chunk_size),
            cols: (0..n_cols)
                .map(|_| Vec::with_capacity(chunk_size))
                .collect(),
            emitted: 0,
            chunks: 0,
        })
    }

    /// Stages one accepted sample; flushes a chunk when full.
    ///
    /// # Errors
    ///
    /// Any error from [`WaveSink::chunk`].
    pub(crate) fn push(&mut self, t: f64, x: &[f64], tel: &Telemetry) -> Result<(), SpiceError> {
        self.times.push(t);
        for (col, rc) in self.cols.iter_mut().zip(&self.resolved) {
            col.push(rc.extract(x));
        }
        if self.times.len() >= self.meta.chunk_size {
            self.flush(tel)?;
        }
        Ok(())
    }

    /// Flushes any staged samples as one chunk.
    fn flush(&mut self, tel: &Telemetry) -> Result<(), SpiceError> {
        if self.times.is_empty() {
            return Ok(());
        }
        let n = self.times.len() as u64;
        let chunk = WaveChunk {
            first_index: self.emitted,
            times: &self.times,
            cols: &self.cols,
        };
        self.sink.chunk(&chunk)?;
        self.emitted += n;
        self.chunks += 1;
        tel.count(|c| {
            c.wave_chunks += 1;
            c.wave_samples += n;
        });
        self.times.clear();
        for col in &mut self.cols {
            col.clear();
        }
        Ok(())
    }

    /// Flushes the tail chunk and calls [`WaveSink::finish`].
    ///
    /// # Errors
    ///
    /// Any error from the final [`WaveSink::chunk`] or
    /// [`WaveSink::finish`].
    pub(crate) fn finish(&mut self, tel: &Telemetry) -> Result<TranStats, SpiceError> {
        self.flush(tel)?;
        self.sink.finish(&self.meta)?;
        Ok(TranStats {
            samples: self.emitted,
            chunks: self.chunks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sink that records the chunk structure it sees.
    #[derive(Default)]
    struct Recorder {
        begun: usize,
        finished: usize,
        chunk_lens: Vec<usize>,
        first_indices: Vec<u64>,
        samples: Vec<(f64, Vec<f64>)>,
    }

    impl WaveSink for Recorder {
        fn begin(&mut self, _meta: &TranMeta) -> Result<(), SpiceError> {
            self.begun += 1;
            Ok(())
        }

        fn chunk(&mut self, chunk: &WaveChunk<'_>) -> Result<(), SpiceError> {
            self.chunk_lens.push(chunk.len());
            self.first_indices.push(chunk.first_index);
            for (i, &t) in chunk.times.iter().enumerate() {
                self.samples
                    .push((t, chunk.cols.iter().map(|c| c[i]).collect()));
            }
            Ok(())
        }

        fn finish(&mut self, _meta: &TranMeta) -> Result<(), SpiceError> {
            self.finished += 1;
            Ok(())
        }
    }

    #[test]
    fn dense_sink_concatenates_chunks() {
        let meta = TranMeta {
            col_names: vec!["a".into(), "b".into()],
            t_stop: 1.0,
            dt: 0.25,
            chunk_size: 2,
        };
        let mut sink = DenseSink::new();
        sink.begin(&meta).unwrap();
        sink.chunk(&WaveChunk {
            first_index: 0,
            times: &[0.0, 0.25],
            cols: &[vec![1.0, 2.0], vec![10.0, 20.0]],
        })
        .unwrap();
        sink.chunk(&WaveChunk {
            first_index: 2,
            times: &[0.5],
            cols: &[vec![3.0], vec![30.0]],
        })
        .unwrap();
        sink.finish(&meta).unwrap();
        assert_eq!(sink.times(), &[0.0, 0.25, 0.5]);
        assert_eq!(sink.cols()[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(sink.cols()[1], vec![10.0, 20.0, 30.0]);
        assert_eq!(sink.col_names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn tee_drives_both_sinks() {
        let meta = TranMeta {
            col_names: vec!["a".into()],
            t_stop: 1.0,
            dt: 0.5,
            chunk_size: 4,
        };
        let mut r1 = Recorder::default();
        let mut r2 = Recorder::default();
        {
            let mut tee = Tee::new(&mut r1, &mut r2);
            tee.begin(&meta).unwrap();
            tee.chunk(&WaveChunk {
                first_index: 0,
                times: &[0.0, 0.5],
                cols: &[vec![1.0, -1.0]],
            })
            .unwrap();
            tee.finish(&meta).unwrap();
        }
        for r in [&r1, &r2] {
            assert_eq!(r.begun, 1);
            assert_eq!(r.finished, 1);
            assert_eq!(r.chunk_lens, vec![2]);
            assert_eq!(r.samples[1].1, vec![-1.0]);
        }
    }
}
