//! Analysis drivers: operating point, DC sweep, AC, transient.
//!
//! All analyses share the internal `System` assembler, which owns the MNA
//! bookkeeping: branch-unknown allocation, per-element state arena layout,
//! Jacobian assembly and the damped Newton loop.

pub mod ac;
pub mod dc;
pub mod op;
pub mod tran;

use crate::circuit::{Circuit, NodeId};
use crate::element::{AcStamper, StampCtx, StampMode, Stamper};
use crate::SpiceError;
use cml_numeric::{Complex64, ComplexMatrix, DenseMatrix};
use std::collections::HashMap;

/// Newton iteration limits and tolerances (SPICE-like defaults).
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum iterations per solve.
    pub max_iter: usize,
    /// Absolute voltage tolerance, volts.
    pub vntol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Absolute branch-current tolerance, amps.
    pub abstol: f64,
    /// Per-iteration voltage step clamp, volts (Newton damping).
    pub max_step: f64,
    /// Conductance added from every node to ground for matrix conditioning.
    pub gmin: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 150,
            vntol: 1e-6,
            reltol: 1e-3,
            abstol: 1e-9,
            max_step: 0.5,
            gmin: 1e-12,
        }
    }
}

/// MNA bookkeeping for one circuit: unknown layout and state arena layout.
#[derive(Debug)]
pub(crate) struct System<'a> {
    ckt: &'a Circuit,
    n_nodes: usize,
    n_branches: usize,
    /// Per-element first-branch offset (relative to the branch region).
    branch_bases: Vec<usize>,
    /// Per-element first state slot.
    state_bases: Vec<usize>,
    state_len: usize,
    /// Element name → absolute unknown index of its first branch current.
    branch_names: HashMap<String, usize>,
}

impl<'a> System<'a> {
    pub(crate) fn new(ckt: &'a Circuit) -> Self {
        let n_nodes = ckt.num_unknown_nodes();
        let mut branch_bases = Vec::new();
        let mut state_bases = Vec::new();
        let mut branch_names = HashMap::new();
        let mut n_branches = 0;
        let mut state_len = 0;
        for e in ckt.elements() {
            branch_bases.push(n_branches);
            state_bases.push(state_len);
            if e.num_branches() > 0 {
                branch_names.insert(e.name().to_string(), n_nodes + n_branches);
            }
            n_branches += e.num_branches();
            state_len += e.state_size();
        }
        System {
            ckt,
            n_nodes,
            n_branches,
            branch_bases,
            state_bases,
            state_len,
            branch_names,
        }
    }

    pub(crate) fn dim(&self) -> usize {
        self.n_nodes + self.n_branches
    }

    pub(crate) fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub(crate) fn state_len(&self) -> usize {
        self.state_len
    }

    pub(crate) fn branch_names(&self) -> &HashMap<String, usize> {
        &self.branch_names
    }

    fn ctx<'b>(
        &self,
        idx: usize,
        x: &'b [f64],
        state: &'b [f64],
        mode: StampMode,
    ) -> (StampCtx<'b>, usize) {
        let e = self.ckt.elements().nth(idx).expect("element index");
        let sb = self.state_bases[idx];
        let sl = e.state_size();
        // DC solves pass an empty arena (state is only meaningful in
        // transient mode); fall back to an empty slice there.
        let state_slice = state.get(sb..sb + sl).unwrap_or(&[]);
        (
            StampCtx {
                x,
                state: state_slice,
                branch_base: self.branch_bases[idx],
                n_nodes: self.n_nodes,
                mode,
            },
            idx,
        )
    }

    /// Assembles the Jacobian and RHS at guess `x`.
    pub(crate) fn assemble(
        &self,
        x: &[f64],
        state: &[f64],
        mode: StampMode,
        gmin: f64,
        matrix: &mut DenseMatrix,
        rhs: &mut Vec<f64>,
    ) {
        matrix.clear();
        rhs.clear();
        rhs.resize(self.dim(), 0.0);
        for (idx, e) in self.ckt.elements().enumerate() {
            let (ctx, _) = self.ctx(idx, x, state, mode);
            let mut stamper = Stamper::new(matrix, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        // Conditioning gmin from every node to ground.
        for i in 0..self.n_nodes {
            matrix[(i, i)] += gmin;
        }
    }

    /// Damped Newton iteration from initial guess `x0`.
    pub(crate) fn newton(
        &self,
        mode: StampMode,
        x0: &[f64],
        state: &[f64],
        opts: &NewtonOptions,
        analysis: &'static str,
    ) -> Result<Vec<f64>, SpiceError> {
        let dim = self.dim();
        let mut x = x0.to_vec();
        let mut matrix = DenseMatrix::zeros(dim, dim);
        let mut rhs = Vec::with_capacity(dim);
        let mut worst = f64::INFINITY;
        for _iter in 0..opts.max_iter {
            self.assemble(&x, state, mode, opts.gmin, &mut matrix, &mut rhs);
            let x_new = matrix.lu()?.solve(&rhs)?;
            // Convergence check + damping.
            let mut converged = true;
            worst = 0.0;
            let mut x_next = vec![0.0; dim];
            for i in 0..dim {
                let delta = x_new[i] - x[i];
                let (atol, clamp) = if i < self.n_nodes {
                    (opts.vntol, opts.max_step)
                } else {
                    (opts.abstol, f64::INFINITY)
                };
                let tol = atol + opts.reltol * x[i].abs().max(x_new[i].abs());
                if delta.abs() > tol {
                    converged = false;
                }
                worst = worst.max(delta.abs());
                x_next[i] = x[i] + delta.clamp(-clamp, clamp);
            }
            if !x_next.iter().all(|v| v.is_finite()) {
                return Err(SpiceError::NoConvergence {
                    analysis,
                    iterations: opts.max_iter,
                    residual: f64::INFINITY,
                });
            }
            let undamped = x_next
                .iter()
                .zip(&x_new)
                .all(|(a, b)| (a - b).abs() < 1e-15);
            x = x_next;
            if converged && undamped {
                return Ok(x);
            }
        }
        Err(SpiceError::NoConvergence {
            analysis,
            iterations: opts.max_iter,
            residual: worst,
        })
    }

    /// Initializes the transient state arena from a DC solution.
    pub(crate) fn init_state(&self, x: &[f64]) -> Vec<f64> {
        let mut state = vec![0.0; self.state_len];
        for (idx, e) in self.ckt.elements().enumerate() {
            let sb = self.state_bases[idx];
            let sl = e.state_size();
            let ctx = StampCtx {
                x,
                state: &[],
                branch_base: self.branch_bases[idx],
                n_nodes: self.n_nodes,
                mode: StampMode::dc(),
            };
            e.init_state(&ctx, &mut state[sb..sb + sl]);
        }
        state
    }

    /// Writes the next-state arena after a converged transient step.
    pub(crate) fn update_state(
        &self,
        x: &[f64],
        state_prev: &[f64],
        mode: StampMode,
        state_next: &mut [f64],
    ) {
        for (idx, e) in self.ckt.elements().enumerate() {
            let sb = self.state_bases[idx];
            let sl = e.state_size();
            let ctx = StampCtx {
                x,
                state: &state_prev[sb..sb + sl],
                branch_base: self.branch_bases[idx],
                n_nodes: self.n_nodes,
                mode,
            };
            e.update_state(&ctx, &mut state_next[sb..sb + sl]);
        }
    }

    /// Assembles and solves the complex small-signal system at `omega`.
    pub(crate) fn solve_ac(
        &self,
        x_op: &[f64],
        omega: f64,
        gmin: f64,
    ) -> Result<Vec<Complex64>, SpiceError> {
        let dim = self.dim();
        let mut matrix = ComplexMatrix::zeros(dim, dim);
        let mut rhs = vec![Complex64::ZERO; dim];
        for (idx, e) in self.ckt.elements().enumerate() {
            let mut stamper = AcStamper::new(&mut matrix, &mut rhs, self.n_nodes);
            e.stamp_ac(x_op, self.branch_bases[idx], omega, &mut stamper);
        }
        for i in 0..self.n_nodes {
            matrix[(i, i)] += Complex64::from_real(gmin);
        }
        Ok(matrix.solve(&rhs)?)
    }
}

/// Voltage lookup shared by all result types.
pub(crate) fn voltage_from(x: &[f64], node: NodeId) -> f64 {
    node.index().map_or(0.0, |i| x[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn branch_allocation_and_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, b, 10.0));
        ckt.add(Inductor::new("L1", b, Circuit::GROUND, 1e-9));
        let sys = System::new(&ckt);
        assert_eq!(sys.n_nodes(), 2);
        assert_eq!(sys.dim(), 4); // 2 nodes + V branch + L branch
        assert_eq!(sys.branch_names()["V1"], 2);
        assert_eq!(sys.branch_names()["L1"], 3);
        assert_eq!(sys.state_len(), 2); // inductor state only
    }
}
