//! Analysis drivers: operating point, DC sweep, AC, transient.
//!
//! All analyses share the internal `System` assembler, which owns the MNA
//! bookkeeping: branch-unknown allocation, per-element state arena layout,
//! Jacobian assembly and the damped Newton loop.

pub mod ac;
pub mod batch;
pub mod cache;
pub mod dc;
pub mod op;
pub mod sink;
pub mod spill;
pub mod tran;

use crate::circuit::{Circuit, NodeId};
use crate::element::{AcStamper, Element, Integration, StampCtx, StampMode, StampSlots, Stamper};
use crate::SpiceError;
use cml_numeric::sparse::CsrMatrix;
use cml_numeric::{Complex64, ComplexMatrix, DenseMatrix, LuFactors, RefactorOutcome, SparseLu};
use cml_telemetry::{EventKind, Phase, Telemetry};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Matrix dimension at and above which the solver switches from dense to
/// sparse LU when no override is given. Chosen so the paper's individual
/// cells (a few dozen unknowns) stay on the dense path, which wins on
/// tiny systems, while full-link chains go sparse.
const DEFAULT_SPARSE_THRESHOLD: usize = 50;

/// Resolves the process-wide default sparse threshold, honouring the
/// `CML_SPARSE_THRESHOLD` environment variable (read once).
fn default_sparse_threshold() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::env::var("CML_SPARSE_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_SPARSE_THRESHOLD)
    })
}

/// Newton iteration limits and tolerances (SPICE-like defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations per solve.
    pub max_iter: usize,
    /// Absolute voltage tolerance, volts.
    pub vntol: f64,
    /// Relative tolerance.
    pub reltol: f64,
    /// Absolute branch-current tolerance, amps.
    pub abstol: f64,
    /// Per-iteration voltage step clamp, volts (Newton damping).
    pub max_step: f64,
    /// Conductance added from every node to ground for matrix conditioning.
    pub gmin: f64,
    /// MNA dimension at and above which solves use the sparse LU path
    /// instead of dense — real `SparseLu<f64>` for DC/transient, complex
    /// `SparseLu<Complex64>` on the `G + jωC` systems of AC sweeps.
    /// Defaults to the `CML_SPARSE_THRESHOLD` environment variable when
    /// set, else 50. Set to `usize::MAX` to force dense, to 1 to force
    /// sparse.
    pub sparse_threshold: usize,
    /// Start Newton from the interval-analysis midpoint vector instead of
    /// all-zeros (see [`crate::analyze::dc_bounds`]). Opt-in; also gated by
    /// the `CML_ANALYZE` environment variable.
    pub warm_start_from_analysis: bool,
    /// Use the content-addressed topology artifact cache (`cml-cache`)
    /// for stamp patterns, symbolic LU analyses, frozen AC pivot
    /// orders, lint verdicts and warm-start vectors. Defaults on; also
    /// gated process-wide by the `CML_CACHE` environment variable (off
    /// there wins over on here). The cache is advisory — disabling it
    /// changes cost, never results.
    pub cache: bool,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 150,
            vntol: 1e-6,
            reltol: 1e-3,
            abstol: 1e-9,
            max_step: 0.5,
            gmin: 1e-12,
            sparse_threshold: default_sparse_threshold(),
            warm_start_from_analysis: false,
            cache: true,
        }
    }
}

impl NewtonOptions {
    /// Whether cache lookups should run for this solve: the per-options
    /// flag AND the process-wide `CML_CACHE` gate.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache && cml_cache::enabled()
    }
}

/// Cache key identifying a transient Jacobian structure: the linear part
/// of the MNA matrix is fully determined by the step size, the
/// integration method and the conditioning gmin (see
/// [`crate::element::Element::is_nonlinear`]), so factorizations can be
/// reused across Newton iterations and timesteps that share this key.
type MatKey = (u64, Integration, u64);

/// Which stamp-mode family a sparsity pattern was discovered under.
/// Reactive elements stamp companion conductances only in transient
/// mode, so DC and transient Jacobians have different patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    Dc,
    Tran,
}

impl ModeKind {
    fn of(mode: StampMode) -> Self {
        match mode {
            StampMode::Dc { .. } => ModeKind::Dc,
            StampMode::Tran { .. } => ModeKind::Tran,
        }
    }
}

/// Sparse-path state cached in the Newton workspace: the fixed-pattern
/// CSR Jacobian, its LU (symbolic analysis + pivot order frozen after
/// the first factorization), the cached linear-element values, and one
/// stamp-pointer cache per assembly-pass shape.
#[derive(Debug, Clone)]
struct SparseState {
    /// Fixed-pattern Jacobian; only `vals` change between solves.
    mat: CsrMatrix,
    /// Sparse LU with replayable refactorization.
    lu: SparseLu,
    /// Cached guess-independent values (linear stamps + gmin) for the
    /// key in `NewtonWorkspace::lin_key`, parallel to `mat.vals()`.
    lin_vals: Vec<f64>,
    /// Value-slot of each node diagonal, for the gmin stamp.
    diag_slots: Vec<usize>,
    /// Stamp-pointer caches: full assembly, linear-only assembly, and
    /// the nonlinear top-up pass.
    slots_full: StampSlots,
    slots_lin: StampSlots,
    slots_nonlin: StampSlots,
    /// Mode family the pattern was discovered under.
    kind: ModeKind,
}

/// Internal error type for one Newton attempt: either a real solver
/// error, or "the sparsity pattern was missing a written position" —
/// the caller reacts to the latter by rebuilding the pattern (and, if
/// it happens again, permanently falling back to dense).
enum AttemptError {
    Spice(SpiceError),
    PatternMiss,
}

impl From<SpiceError> for AttemptError {
    fn from(e: SpiceError) -> Self {
        AttemptError::Spice(e)
    }
}

impl From<cml_numeric::NumericError> for AttemptError {
    fn from(e: cml_numeric::NumericError) -> Self {
        AttemptError::Spice(e.into())
    }
}

/// Reusable buffers for [`System::newton_with`]: the MNA matrix, its LU
/// factors, the cached linear-element stamps and the iteration vectors.
/// Create once per analysis and pass to every solve; allocations and —
/// when `reuse` is enabled — factorizations then amortize across
/// timesteps instead of being redone from scratch each Newton iteration.
#[derive(Debug)]
pub(crate) struct NewtonWorkspace {
    /// Full Jacobian (linear stamps + nonlinear linearizations).
    matrix: DenseMatrix,
    /// Cached guess-independent stamps (linear elements + gmin), valid
    /// for the transient key in `lin_key`.
    lin_matrix: DenseMatrix,
    /// Full RHS (rebuilt per iteration for nonlinear circuits).
    rhs: Vec<f64>,
    /// Guess-independent RHS stamps, rebuilt once per solve call.
    lin_rhs: Vec<f64>,
    /// Current iterate.
    x: Vec<f64>,
    /// Raw Newton solution before damping.
    x_new: Vec<f64>,
    /// LU factors, reused in place (no per-iteration allocation).
    factors: LuFactors,
    /// Key `lin_matrix` was assembled for.
    lin_key: Option<MatKey>,
    /// Key `factors` holds a factorization of `lin_matrix` for (only
    /// meaningful on circuits with no nonlinear devices, where the full
    /// Jacobian *is* the linear matrix).
    factored_key: Option<MatKey>,
    /// Sparse-path state; `None` until the first solve at or above the
    /// sparse threshold (or after a pattern invalidation).
    sparse: Option<SparseState>,
    /// Set when the sparse path misbehaved twice (pattern misses) —
    /// every further solve in this workspace stays dense.
    sparse_disabled: bool,
    /// Whether the previous solve ran sparse; a flip invalidates the
    /// linear-stamp caches (they live in different buffers per path).
    last_solve_sparse: Option<bool>,
    /// Set after a pattern miss: this workspace stops trusting the
    /// topology cache's interned pattern (which just missed) and derives
    /// fresh patterns from its own guesses instead.
    sparse_cache_bypass: bool,
}

impl NewtonWorkspace {
    pub(crate) fn new() -> Self {
        NewtonWorkspace {
            matrix: DenseMatrix::zeros(0, 0),
            lin_matrix: DenseMatrix::zeros(0, 0),
            rhs: Vec::new(),
            lin_rhs: Vec::new(),
            x: Vec::new(),
            x_new: Vec::new(),
            factors: LuFactors::default(),
            lin_key: None,
            factored_key: None,
            sparse: None,
            sparse_disabled: false,
            last_solve_sparse: None,
            sparse_cache_bypass: false,
        }
    }
}

/// MNA bookkeeping for one circuit: unknown layout and state arena layout.
#[derive(Debug)]
pub(crate) struct System<'a> {
    ckt: &'a Circuit,
    n_nodes: usize,
    n_branches: usize,
    /// Per-element first-branch offset (relative to the branch region).
    branch_bases: Vec<usize>,
    /// Per-element first state slot.
    state_bases: Vec<usize>,
    state_len: usize,
    /// Element name → absolute unknown index of its first branch current.
    branch_names: HashMap<String, usize>,
    /// Whether any element's stamp depends on the Newton guess.
    has_nonlinear: bool,
}

impl<'a> System<'a> {
    pub(crate) fn new(ckt: &'a Circuit) -> Self {
        let n_nodes = ckt.num_unknown_nodes();
        let mut branch_bases = Vec::new();
        let mut state_bases = Vec::new();
        let mut branch_names = HashMap::new();
        let mut n_branches = 0;
        let mut state_len = 0;
        let mut has_nonlinear = false;
        for e in ckt.elements() {
            branch_bases.push(n_branches);
            state_bases.push(state_len);
            if e.num_branches() > 0 {
                branch_names.insert(e.name().to_string(), n_nodes + n_branches);
            }
            n_branches += e.num_branches();
            state_len += e.state_size();
            has_nonlinear |= e.is_nonlinear();
        }
        System {
            ckt,
            n_nodes,
            n_branches,
            branch_bases,
            state_bases,
            state_len,
            branch_names,
            has_nonlinear,
        }
    }

    pub(crate) fn circuit(&self) -> &'a Circuit {
        self.ckt
    }

    pub(crate) fn dim(&self) -> usize {
        self.n_nodes + self.n_branches
    }

    pub(crate) fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub(crate) fn state_len(&self) -> usize {
        self.state_len
    }

    pub(crate) fn branch_names(&self) -> &HashMap<String, usize> {
        &self.branch_names
    }

    fn ctx<'b>(
        &self,
        idx: usize,
        e: &dyn Element,
        x: &'b [f64],
        state: &'b [f64],
        mode: StampMode,
    ) -> StampCtx<'b> {
        let sb = self.state_bases[idx];
        let sl = e.state_size();
        // DC solves pass an empty arena (state is only meaningful in
        // transient mode); fall back to an empty slice there.
        let state_slice = state.get(sb..sb + sl).unwrap_or(&[]);
        StampCtx {
            x,
            state: state_slice,
            branch_base: self.branch_bases[idx],
            n_nodes: self.n_nodes,
            mode,
        }
    }

    /// Assembles the Jacobian and RHS at guess `x`.
    pub(crate) fn assemble(
        &self,
        x: &[f64],
        state: &[f64],
        mode: StampMode,
        gmin: f64,
        matrix: &mut DenseMatrix,
        rhs: &mut Vec<f64>,
    ) {
        matrix.clear();
        rhs.clear();
        rhs.resize(self.dim(), 0.0);
        for (idx, e) in self.ckt.elements().enumerate() {
            let ctx = self.ctx(idx, e, x, state, mode);
            let mut stamper = Stamper::new(matrix, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        // Conditioning gmin from every node to ground.
        for i in 0..self.n_nodes {
            matrix[(i, i)] += gmin;
        }
    }

    /// Assembles every guess-independent (linear-element) stamp: matrix,
    /// RHS and the conditioning gmin.
    ///
    /// Passes an *empty* guess slice on purpose: elements reporting
    /// `is_nonlinear() == false` promise never to read `ctx.x`, and an
    /// out-of-bounds panic here is the loud contract check for a device
    /// that lies about its linearity.
    fn assemble_linear(
        &self,
        state: &[f64],
        mode: StampMode,
        gmin: f64,
        matrix: &mut DenseMatrix,
        rhs: &mut Vec<f64>,
    ) {
        matrix.clear();
        rhs.clear();
        rhs.resize(self.dim(), 0.0);
        for (idx, e) in self.ckt.elements().enumerate() {
            if e.is_nonlinear() {
                continue;
            }
            let ctx = self.ctx(idx, e, &[], state, mode);
            let mut stamper = Stamper::new(matrix, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        for i in 0..self.n_nodes {
            matrix[(i, i)] += gmin;
        }
    }

    /// Re-assembles only the linear RHS (source values, companion-model
    /// history currents), dropping matrix writes: used when the cached
    /// linear matrix is still valid but time or state has advanced.
    fn stamp_linear_rhs(&self, state: &[f64], mode: StampMode, rhs: &mut Vec<f64>) {
        rhs.clear();
        rhs.resize(self.dim(), 0.0);
        for (idx, e) in self.ckt.elements().enumerate() {
            if e.is_nonlinear() {
                continue;
            }
            let ctx = self.ctx(idx, e, &[], state, mode);
            let mut stamper = Stamper::rhs_only(rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
    }

    /// Adds the nonlinear-device linearizations at guess `x` on top of
    /// already-copied linear stamps.
    fn stamp_nonlinear(
        &self,
        x: &[f64],
        state: &[f64],
        mode: StampMode,
        matrix: &mut DenseMatrix,
        rhs: &mut [f64],
    ) {
        for (idx, e) in self.ckt.elements().enumerate() {
            if !e.is_nonlinear() {
                continue;
            }
            let ctx = self.ctx(idx, e, x, state, mode);
            let mut stamper = Stamper::new(matrix, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
    }

    /// Discovers the Jacobian sparsity pattern with one recording stamp
    /// pass at `x0`, then builds the fixed-pattern CSR matrix and its
    /// sparse LU. The recorded position set is symmetrized (devices like
    /// MOSFETs keep a stable position *set* across operating regions,
    /// but individual entries can migrate across the diagonal on a
    /// drain/source swap) and every diagonal is added (the conditioning
    /// gmin lands there, and structural diagonal zeros would force
    /// avoidable pivoting). Returns `None` when a pattern cannot be
    /// built; the caller then disables the sparse path.
    fn build_sparse(&self, x0: &[f64], state: &[f64], mode: StampMode) -> Option<SparseState> {
        let dim = self.dim();
        let mut positions: Vec<(usize, usize)> = Vec::new();
        let mut scratch_rhs = vec![0.0; dim];
        for (idx, e) in self.ckt.elements().enumerate() {
            let ctx = self.ctx(idx, e, x0, state, mode);
            let mut stamper = Stamper::pattern(&mut positions, &mut scratch_rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        let n_recorded = positions.len();
        for i in 0..n_recorded {
            let (r, c) = positions[i];
            positions.push((c, r));
        }
        positions.extend((0..dim).map(|i| (i, i)));
        let mat = CsrMatrix::from_pattern(dim, dim, &positions).ok()?;
        let lu = SparseLu::new(&mat).ok()?;
        let diag_slots: Option<Vec<usize>> = (0..self.n_nodes).map(|i| mat.find(i, i)).collect();
        let nnz = mat.vals().len();
        Some(SparseState {
            mat,
            lu,
            lin_vals: vec![0.0; nnz],
            diag_slots: diag_slots?,
            slots_full: StampSlots::default(),
            slots_lin: StampSlots::default(),
            slots_nonlin: StampSlots::default(),
            kind: ModeKind::of(mode),
        })
    }

    /// Sparse analogue of [`System::assemble`]: every stamp accumulates
    /// directly into its reserved CSR value slot.
    fn assemble_sparse_full(
        &self,
        x: &[f64],
        state: &[f64],
        mode: StampMode,
        gmin: f64,
        sp: &mut SparseState,
        rhs: &mut Vec<f64>,
    ) -> Result<(), AttemptError> {
        sp.mat.clear_vals();
        rhs.clear();
        rhs.resize(self.dim(), 0.0);
        sp.slots_full.begin_pass();
        for (idx, e) in self.ckt.elements().enumerate() {
            let ctx = self.ctx(idx, e, x, state, mode);
            let mut stamper = Stamper::sparse(&mut sp.mat, &mut sp.slots_full, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        if sp.slots_full.missing() {
            return Err(AttemptError::PatternMiss);
        }
        for &s in &sp.diag_slots {
            sp.mat.vals_mut()[s] += gmin;
        }
        Ok(())
    }

    /// Sparse analogue of [`System::assemble_linear`]; passes the same
    /// empty guess slice as the loud linearity-contract check.
    fn assemble_sparse_linear(
        &self,
        state: &[f64],
        mode: StampMode,
        gmin: f64,
        sp: &mut SparseState,
        rhs: &mut Vec<f64>,
    ) -> Result<(), AttemptError> {
        sp.mat.clear_vals();
        rhs.clear();
        rhs.resize(self.dim(), 0.0);
        sp.slots_lin.begin_pass();
        for (idx, e) in self.ckt.elements().enumerate() {
            if e.is_nonlinear() {
                continue;
            }
            let ctx = self.ctx(idx, e, &[], state, mode);
            let mut stamper = Stamper::sparse(&mut sp.mat, &mut sp.slots_lin, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        if sp.slots_lin.missing() {
            return Err(AttemptError::PatternMiss);
        }
        for &s in &sp.diag_slots {
            sp.mat.vals_mut()[s] += gmin;
        }
        Ok(())
    }

    /// Sparse analogue of [`System::stamp_nonlinear`]: tops up the copied
    /// linear values with the nonlinear-device linearizations at `x`.
    fn stamp_sparse_nonlinear(
        &self,
        x: &[f64],
        state: &[f64],
        mode: StampMode,
        sp: &mut SparseState,
        rhs: &mut [f64],
    ) -> Result<(), AttemptError> {
        sp.slots_nonlin.begin_pass();
        for (idx, e) in self.ckt.elements().enumerate() {
            if !e.is_nonlinear() {
                continue;
            }
            let ctx = self.ctx(idx, e, x, state, mode);
            let mut stamper = Stamper::sparse(&mut sp.mat, &mut sp.slots_nonlin, rhs, self.n_nodes);
            e.stamp(&ctx, &mut stamper);
        }
        if sp.slots_nonlin.missing() {
            return Err(AttemptError::PatternMiss);
        }
        Ok(())
    }

    /// Reuse key for the current solve, or `None` when the mode does not
    /// support stamp caching (DC homotopies vary `source_scale` and gmin
    /// between calls; transient steps are keyed by step size, method and
    /// gmin — time enters only through the RHS, which is always rebuilt).
    fn mat_key(mode: StampMode, gmin: f64) -> Option<MatKey> {
        match mode {
            StampMode::Tran { dt, method, .. } => Some((dt.to_bits(), method, gmin.to_bits())),
            StampMode::Dc { .. } => None,
        }
    }

    /// Damped Newton iteration using caller-owned buffers.
    ///
    /// With `reuse` enabled (transient mode only) the solver exploits the
    /// [`crate::element::Element::is_nonlinear`] contract three ways:
    ///
    /// * linear-element matrix/RHS stamps are assembled once per call
    ///   instead of once per Newton iteration;
    /// * the linear matrix is cached across *timesteps* sharing a
    ///   `(dt, method, gmin)` key, so unchanged companion conductances
    ///   are not re-stamped at all;
    /// * on circuits with no nonlinear devices the LU factorization
    ///   itself is cached across timesteps, reducing each step from
    ///   O(n³) to an O(n²) substitution.
    ///
    /// On linear circuits the reuse path is bit-for-bit identical to the
    /// plain path (same stamps, same order, same factorization); with
    /// nonlinear devices the split stamping reorders floating-point
    /// additions and may differ from the interleaved order at the last
    /// ulp (well inside Newton tolerances). See DESIGN.md.
    ///
    /// Systems at or above [`NewtonOptions::sparse_threshold`] unknowns
    /// solve through the sparse LU path (fixed-pattern CSR Jacobian,
    /// stamp-pointer caching, replayed numeric refactorization — see
    /// DESIGN.md §8). A stamp that misses the cached pattern triggers one
    /// pattern rebuild; a second miss permanently falls back to dense
    /// for this workspace, so correctness never depends on discovery
    /// having seen every position.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn newton_with(
        &self,
        mode: StampMode,
        x0: &[f64],
        state: &[f64],
        opts: &NewtonOptions,
        analysis: &'static str,
        ws: &mut NewtonWorkspace,
        reuse: bool,
        tel: &Telemetry,
    ) -> Result<Vec<f64>, SpiceError> {
        // Fine-gated: one Newton solve per transient step means two clock
        // reads per step here, which alone would eat most of the coarse
        // mode's < 2 % overhead budget on step-bound workloads.
        let _t = tel.timer_fine(Phase::NewtonSolve);
        let _span = tel.span_fine("solver", "newton");
        tel.count(|c| c.newton_solves += 1);
        let mut rebuilds = 0;
        loop {
            match self.newton_attempt(mode, x0, state, opts, analysis, ws, reuse, tel) {
                Ok(x) => return Ok(x),
                Err(AttemptError::Spice(e)) => return Err(e),
                Err(AttemptError::PatternMiss) => {
                    // An element stamped a position absent from the cached
                    // pattern. Rebuild once from the current guess; a
                    // second miss means the pattern is guess-dependent in
                    // a way discovery can't capture — stay dense. The
                    // topology cache is bypassed from here on: serving the
                    // interned pattern again would just miss again.
                    ws.sparse = None;
                    ws.lin_key = None;
                    ws.factored_key = None;
                    ws.sparse_cache_bypass = true;
                    rebuilds += 1;
                    tel.count(|c| c.pattern_rebuilds += 1);
                    if rebuilds >= 2 {
                        ws.sparse_disabled = true;
                        tel.count(|c| c.dense_fallbacks += 1);
                        tel.degradation(
                            "sparse-dense-fallback",
                            "sparse solve pattern missed twice; this workspace \
                             permanently falls back to the dense path",
                        );
                    }
                }
            }
        }
    }

    /// One Newton solve attempt on either the dense or the sparse path.
    #[allow(clippy::too_many_arguments)]
    fn newton_attempt(
        &self,
        mode: StampMode,
        x0: &[f64],
        state: &[f64],
        opts: &NewtonOptions,
        analysis: &'static str,
        ws: &mut NewtonWorkspace,
        reuse: bool,
        tel: &Telemetry,
    ) -> Result<Vec<f64>, AttemptError> {
        let dim = self.dim();
        if ws.matrix.rows() != dim || ws.matrix.cols() != dim {
            ws.matrix = DenseMatrix::zeros(dim, dim);
            ws.lin_matrix = DenseMatrix::zeros(dim, dim);
            ws.lin_key = None;
            ws.factored_key = None;
            ws.sparse = None;
        }
        let use_sparse = !ws.sparse_disabled && dim > 0 && dim >= opts.sparse_threshold;
        if use_sparse {
            let fresh = matches!(&ws.sparse,
                Some(sp) if sp.kind == ModeKind::of(mode) && sp.mat.rows() == dim);
            if !fresh {
                let _t = tel.timer(Phase::PatternDiscovery);
                ws.sparse = if opts.cache_enabled() && !ws.sparse_cache_bypass {
                    cache::sparse_state_cached(self, x0, state, mode, tel)
                } else {
                    self.build_sparse(x0, state, mode)
                };
                ws.lin_key = None;
                ws.factored_key = None;
                if ws.sparse.is_none() {
                    ws.sparse_disabled = true;
                    tel.count(|c| c.dense_fallbacks += 1);
                    tel.degradation(
                        "sparse-pattern-unbuildable",
                        "sparse solve requested but the Jacobian pattern could \
                         not be built; this workspace stays on the dense path",
                    );
                } else {
                    tel.count(|c| c.pattern_builds += 1);
                }
            }
        }
        let run_sparse = use_sparse && ws.sparse.is_some();
        if ws.last_solve_sparse != Some(run_sparse) {
            // The dense/sparse choice flipped; the linear caches live in
            // different buffers per path, so both keys are stale.
            ws.lin_key = None;
            ws.factored_key = None;
            ws.last_solve_sparse = Some(run_sparse);
        }
        let key = if reuse {
            Self::mat_key(mode, opts.gmin)
        } else {
            None
        };
        if let Some(k) = key {
            if ws.lin_key == Some(k) {
                // Matrix still valid; only sources / companion history
                // moved, and those live purely in the RHS.
                tel.count(|c| c.lin_stamp_hits += 1);
                self.stamp_linear_rhs(state, mode, &mut ws.lin_rhs);
            } else if run_sparse {
                tel.count(|c| c.lin_stamp_builds += 1);
                let Some(sp) = ws.sparse.as_mut() else {
                    return Err(AttemptError::Spice(SpiceError::Internal {
                        message: "sparse solve selected without sparse workspace".to_string(),
                    }));
                };
                self.assemble_sparse_linear(state, mode, opts.gmin, sp, &mut ws.lin_rhs)?;
                sp.lin_vals.clear();
                sp.lin_vals.extend_from_slice(sp.mat.vals());
                ws.lin_key = Some(k);
                ws.factored_key = None;
            } else {
                tel.count(|c| c.lin_stamp_builds += 1);
                self.assemble_linear(state, mode, opts.gmin, &mut ws.lin_matrix, &mut ws.lin_rhs);
                ws.lin_key = Some(k);
                ws.factored_key = None;
            }
        }

        ws.x.clear();
        ws.x.extend_from_slice(x0);
        // Per-attempt residual trajectory: a flight bundle records the
        // *last* attempt's convergence history, not a concatenation of
        // every homotopy rung tried before it.
        tel.trajectory_reset();
        let mut worst = f64::INFINITY;
        for iter in 0..opts.max_iter {
            tel.count(|c| c.newton_iterations += 1);
            if run_sparse {
                let Some(sp) = ws.sparse.as_mut() else {
                    return Err(AttemptError::Spice(SpiceError::Internal {
                        message: "sparse solve selected without sparse workspace".to_string(),
                    }));
                };
                ws.x_new.resize(dim, 0.0);
                match key {
                    Some(k) if !self.has_nonlinear => {
                        if ws.factored_key == Some(k) {
                            tel.count(|c| c.factor_reuse_hits += 1);
                        } else {
                            sp.mat.vals_mut().copy_from_slice(&sp.lin_vals);
                            let oc = {
                                let _t = tel.timer_fine(Phase::Refactor);
                                sp.lu.refactor(&sp.mat)?
                            };
                            note_refactor(tel, oc, sp.lu.last_dead_pivot());
                            ws.factored_key = Some(k);
                        }
                        let _t = tel.timer_fine(Phase::BackSubstitute);
                        sp.lu.solve_into(&ws.lin_rhs, &mut ws.x_new)?;
                        tel.count(|c| c.sparse_solves += 1);
                    }
                    Some(_) => {
                        sp.mat.vals_mut().copy_from_slice(&sp.lin_vals);
                        ws.rhs.clear();
                        ws.rhs.extend_from_slice(&ws.lin_rhs);
                        self.stamp_sparse_nonlinear(&ws.x, state, mode, sp, &mut ws.rhs)?;
                        let oc = {
                            let _t = tel.timer_fine(Phase::Refactor);
                            sp.lu.refactor(&sp.mat)?
                        };
                        note_refactor(tel, oc, sp.lu.last_dead_pivot());
                        let _t = tel.timer_fine(Phase::BackSubstitute);
                        sp.lu.solve_into(&ws.rhs, &mut ws.x_new)?;
                        tel.count(|c| c.sparse_solves += 1);
                    }
                    None => {
                        self.assemble_sparse_full(&ws.x, state, mode, opts.gmin, sp, &mut ws.rhs)?;
                        let oc = {
                            let _t = tel.timer_fine(Phase::Refactor);
                            sp.lu.refactor(&sp.mat)?
                        };
                        note_refactor(tel, oc, sp.lu.last_dead_pivot());
                        let _t = tel.timer_fine(Phase::BackSubstitute);
                        sp.lu.solve_into(&ws.rhs, &mut ws.x_new)?;
                        tel.count(|c| c.sparse_solves += 1);
                    }
                }
            } else {
                match key {
                    Some(k) if !self.has_nonlinear => {
                        // Fully linear system: the cached linear matrix *is*
                        // the Jacobian and its factorization survives across
                        // timesteps with the same key.
                        if ws.factored_key == Some(k) {
                            tel.count(|c| c.factor_reuse_hits += 1);
                        } else {
                            let _t = tel.timer_fine(Phase::Factor);
                            ws.factors.refactor(&ws.lin_matrix)?;
                            tel.count(|c| c.full_factorizations += 1);
                            ws.factored_key = Some(k);
                        }
                        let _t = tel.timer_fine(Phase::BackSubstitute);
                        ws.factors.solve_into(&ws.lin_rhs, &mut ws.x_new)?;
                        tel.count(|c| c.dense_solves += 1);
                    }
                    Some(_) => {
                        ws.matrix.copy_from(&ws.lin_matrix);
                        ws.rhs.clear();
                        ws.rhs.extend_from_slice(&ws.lin_rhs);
                        self.stamp_nonlinear(&ws.x, state, mode, &mut ws.matrix, &mut ws.rhs);
                        {
                            let _t = tel.timer_fine(Phase::Factor);
                            ws.factors.refactor(&ws.matrix)?;
                        }
                        tel.count(|c| c.full_factorizations += 1);
                        let _t = tel.timer_fine(Phase::BackSubstitute);
                        ws.factors.solve_into(&ws.rhs, &mut ws.x_new)?;
                        tel.count(|c| c.dense_solves += 1);
                    }
                    None => {
                        self.assemble(&ws.x, state, mode, opts.gmin, &mut ws.matrix, &mut ws.rhs);
                        {
                            let _t = tel.timer_fine(Phase::Factor);
                            ws.factors.refactor(&ws.matrix)?;
                        }
                        tel.count(|c| c.full_factorizations += 1);
                        let _t = tel.timer_fine(Phase::BackSubstitute);
                        ws.factors.solve_into(&ws.rhs, &mut ws.x_new)?;
                        tel.count(|c| c.dense_solves += 1);
                    }
                }
            }
            // Convergence check + damping, updating the iterate in place.
            let mut converged = true;
            let mut undamped = true;
            worst = 0.0;
            for i in 0..dim {
                let delta = ws.x_new[i] - ws.x[i];
                let (atol, clamp) = if i < self.n_nodes {
                    (opts.vntol, opts.max_step)
                } else {
                    (opts.abstol, f64::INFINITY)
                };
                let tol = atol + opts.reltol * ws.x[i].abs().max(ws.x_new[i].abs());
                if delta.abs() > tol {
                    converged = false;
                }
                worst = worst.max(delta.abs());
                let next = ws.x[i] + delta.clamp(-clamp, clamp);
                if (next - ws.x_new[i]).abs() >= 1e-15 {
                    undamped = false;
                }
                ws.x[i] = next;
            }
            tel.trajectory_push(worst);
            // Fine-gated: one event per Newton iteration means one
            // clock read per iteration, which in coarse mode would eat
            // the < 2 % overhead budget (see the timer note above). The
            // flight recorder still gets every residual via the cheap
            // `trajectory_push` — no clock, no ring traffic.
            tel.event_fine(|| EventKind::NewtonIteration {
                analysis: analysis.into(),
                iteration: iter as u32,
                residual: worst,
                damped: !undamped,
            });
            if !ws.x.iter().all(|v| v.is_finite()) {
                tel.event(|| EventKind::NewtonDiverged {
                    analysis: analysis.into(),
                    iterations: (iter + 1) as u32,
                    residual: f64::INFINITY,
                });
                return Err(SpiceError::NoConvergence {
                    analysis,
                    iterations: opts.max_iter,
                    residual: f64::INFINITY,
                }
                .into());
            }
            if converged && undamped {
                return Ok(ws.x.clone());
            }
        }
        tel.event(|| EventKind::NewtonDiverged {
            analysis: analysis.into(),
            iterations: opts.max_iter as u32,
            residual: worst,
        });
        Err(SpiceError::NoConvergence {
            analysis,
            iterations: opts.max_iter,
            residual: worst,
        }
        .into())
    }

    /// Initializes the transient state arena from a DC solution.
    pub(crate) fn init_state(&self, x: &[f64]) -> Vec<f64> {
        let mut state = vec![0.0; self.state_len];
        for (idx, e) in self.ckt.elements().enumerate() {
            let sb = self.state_bases[idx];
            let sl = e.state_size();
            let ctx = StampCtx {
                x,
                state: &[],
                branch_base: self.branch_bases[idx],
                n_nodes: self.n_nodes,
                mode: StampMode::dc(),
            };
            e.init_state(&ctx, &mut state[sb..sb + sl]);
        }
        state
    }

    /// Writes the next-state arena after a converged transient step.
    pub(crate) fn update_state(
        &self,
        x: &[f64],
        state_prev: &[f64],
        mode: StampMode,
        state_next: &mut [f64],
    ) {
        for (idx, e) in self.ckt.elements().enumerate() {
            let sb = self.state_bases[idx];
            let sl = e.state_size();
            let ctx = StampCtx {
                x,
                state: &state_prev[sb..sb + sl],
                branch_base: self.branch_bases[idx],
                n_nodes: self.n_nodes,
                mode,
            };
            e.update_state(&ctx, &mut state_next[sb..sb + sl]);
        }
    }

    /// Assembles and solves the complex small-signal system at `omega`
    /// into caller-owned buffers: `x` carries the RHS in and the solution
    /// out, and the matrix (restamped per frequency, then consumed by the
    /// in-place elimination) is reallocated only on dimension change.
    pub(crate) fn solve_ac_into(
        &self,
        x_op: &[f64],
        omega: f64,
        gmin: f64,
        matrix: &mut ComplexMatrix,
        x: &mut Vec<Complex64>,
    ) -> Result<(), SpiceError> {
        let dim = self.dim();
        if matrix.rows() != dim || matrix.cols() != dim {
            *matrix = ComplexMatrix::zeros(dim, dim);
        } else {
            matrix.clear();
        }
        x.clear();
        x.resize(dim, Complex64::ZERO);
        for (idx, e) in self.ckt.elements().enumerate() {
            let mut stamper = AcStamper::new(matrix, x, self.n_nodes);
            e.stamp_ac(x_op, self.branch_bases[idx], omega, &mut stamper);
        }
        for i in 0..self.n_nodes {
            matrix[(i, i)] += Complex64::from_real(gmin);
        }
        matrix.solve_in_place(x)?;
        Ok(())
    }

    /// Discovers the AC stamp pattern with one recording pass at `omega`
    /// and builds the fixed-pattern complex CSR matrix plus its sparse
    /// LU (symbolic analysis only; the caller runs the first numeric
    /// factorization). The union pattern of `G + jωC` is
    /// frequency-independent — every element writes its full footprint
    /// at any `omega` — so one recording serves the whole sweep. As in
    /// [`build_sparse`](Self::build_sparse), the position set is
    /// symmetrized and every diagonal is added. Returns `None` when the
    /// pattern cannot be built; the sweep then stays dense.
    fn build_ac_sparse(&self, x_op: &[f64], omega: f64) -> Option<AcSparseState> {
        let dim = self.dim();
        let mut positions: Vec<(usize, usize)> = Vec::new();
        let mut scratch_rhs = vec![Complex64::ZERO; dim];
        for (idx, e) in self.ckt.elements().enumerate() {
            let mut stamper = AcStamper::pattern(&mut positions, &mut scratch_rhs, self.n_nodes);
            e.stamp_ac(x_op, self.branch_bases[idx], omega, &mut stamper);
        }
        let n_recorded = positions.len();
        for i in 0..n_recorded {
            let (r, c) = positions[i];
            positions.push((c, r));
        }
        positions.extend((0..dim).map(|i| (i, i)));
        let mat = CsrMatrix::<Complex64>::from_pattern(dim, dim, &positions).ok()?;
        let lu = SparseLu::new(&mat).ok()?;
        let diag_slots: Option<Vec<usize>> = (0..self.n_nodes).map(|i| mat.find(i, i)).collect();
        Some(AcSparseState {
            mat,
            lu,
            slots: StampSlots::default(),
            diag_slots: diag_slots?,
        })
    }

    /// Sparse analogue of the assembly half of
    /// [`solve_ac_into`](Self::solve_ac_into): restamps `G + jωC` at
    /// `omega` into the reserved CSR slots and rebuilds the RHS. Returns
    /// `false` on a pattern miss (an element wrote a position absent from
    /// the recorded pattern); the caller then solves this point dense.
    fn assemble_ac_sparse(
        &self,
        x_op: &[f64],
        omega: f64,
        gmin: f64,
        sp: &mut AcSparseState,
        rhs: &mut Vec<Complex64>,
    ) -> bool {
        sp.mat.clear_vals();
        rhs.clear();
        rhs.resize(self.dim(), Complex64::ZERO);
        sp.slots.begin_pass();
        for (idx, e) in self.ckt.elements().enumerate() {
            let mut stamper = AcStamper::sparse(&mut sp.mat, &mut sp.slots, rhs, self.n_nodes);
            e.stamp_ac(x_op, self.branch_bases[idx], omega, &mut stamper);
        }
        if sp.slots.missing() {
            return false;
        }
        for &s in &sp.diag_slots {
            sp.mat.vals_mut()[s] += Complex64::from_real(gmin);
        }
        true
    }
}

/// Sparse AC sweep state: the fixed-pattern `G + jωC` matrix, its
/// complex LU (pivot order frozen at the sweep's reference frequency),
/// the stamp-pointer cache, and the node-diagonal slots for gmin.
///
/// `Clone` matters: the sweep factors one reference state, then every
/// parallel worker clones it — same frozen pivot order everywhere — and
/// replays numeric refactorizations per frequency point.
#[derive(Debug, Clone)]
pub(crate) struct AcSparseState {
    /// Fixed-pattern complex MNA matrix; only `vals` change per point.
    mat: CsrMatrix<Complex64>,
    /// Complex sparse LU with a replay-only refactorization path.
    lu: SparseLu<Complex64>,
    /// Stamp-pointer cache for the per-point assembly pass.
    slots: StampSlots,
    /// Value-slot of each node diagonal, for the gmin stamp.
    diag_slots: Vec<usize>,
}

/// Voltage lookup shared by all result types.
pub(crate) fn voltage_from(x: &[f64], node: NodeId) -> f64 {
    node.index().map_or(0.0, |i| x[i])
}

/// Records a sparse refactorization outcome into the solver counters. A
/// pivot fallback is also a full factorization (the heal re-runs the
/// pivot search), so it increments both counters — and, since a pivot
/// death is exactly the "numerics drifted off the frozen order" signal
/// a forensic bundle wants, it additionally logs a structured
/// [`EventKind::PivotFallback`] event carrying the dead column and the
/// pivot magnitude the replay saw there.
fn note_refactor(tel: &Telemetry, outcome: RefactorOutcome, dead_pivot: Option<(usize, f64)>) {
    tel.count(|c| match outcome {
        RefactorOutcome::Replayed => c.refactorizations += 1,
        RefactorOutcome::FullFactor => c.full_factorizations += 1,
        RefactorOutcome::PivotFallback => {
            c.pivot_fallbacks += 1;
            c.full_factorizations += 1;
        }
    });
    if matches!(outcome, RefactorOutcome::PivotFallback) {
        let (column, pivot) = dead_pivot.unwrap_or((0, 0.0));
        tel.event(|| EventKind::PivotFallback {
            column: column as u64,
            pivot,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn branch_allocation_and_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, b, 10.0));
        ckt.add(Inductor::new("L1", b, Circuit::GROUND, 1e-9));
        let sys = System::new(&ckt);
        assert_eq!(sys.n_nodes(), 2);
        assert_eq!(sys.dim(), 4); // 2 nodes + V branch + L branch
        assert_eq!(sys.branch_names()["V1"], 2);
        assert_eq!(sys.branch_names()["L1"], 3);
        assert_eq!(sys.state_len(), 2); // inductor state only
    }
}
