//! Transient analysis.
//!
//! Two stepping modes share the same companion models (trapezoidal or
//! backward-Euler) and warm-started Newton solves:
//!
//! * **Fixed** (default): the nominal timestep everywhere, with automatic
//!   step halving on Newton failure up to a retry budget.
//! * **Adaptive** ([`TranConfig::adaptive`]): local-truncation-error
//!   control. Each accepted solution is compared against a polynomial
//!   predictor extrapolated from the previous accepted points; steps
//!   whose deviation exceeds the error band are rejected and halved,
//!   and quiet stretches grow the step back up to a cap. Source corners
//!   (PWL knots, pulse edges) are breakpoints: the controller lands a
//!   step exactly on each one and restarts small, so edges are never
//!   straddled. See DESIGN.md §8.
//!
//! The initial condition is the operating point with sources evaluated
//! at `t = 0`.

use super::op::solve_system;
use super::{NewtonOptions, NewtonWorkspace, System};
use crate::circuit::{Circuit, NodeId};
use crate::element::{Integration, StampMode};
use crate::SpiceError;
use cml_telemetry::{Phase, Telemetry};
use std::collections::HashMap;

/// Configuration for a transient run.
#[derive(Debug, Clone)]
pub struct TranConfig {
    /// Stop time, seconds.
    pub t_stop: f64,
    /// Nominal timestep, seconds.
    pub dt: f64,
    /// Integration method for companion models.
    pub method: Integration,
    /// Newton options per step.
    pub newton: NewtonOptions,
    /// Maximum consecutive step halvings before giving up.
    pub max_halvings: u32,
    /// Local-truncation-error control: when `true`, each step's solution
    /// is compared against a polynomial predictor (quadratic through the
    /// three previous accepted points once available, linear before
    /// that). Steps whose normalized deviation exceeds `lte_factor`
    /// tolerance bands are rejected and retried at half the step, down
    /// to `dt / 4096`; comfortably accurate steps grow back by doubling,
    /// up to `max(dt, t_stop / 50)`. Source-waveform corners become
    /// breakpoints the controller lands on exactly, restarting with a
    /// small step (`dt / 64`) and a cleared predictor history on the far
    /// side. `dt` remains the first-step size and the scale all limits
    /// derive from.
    pub adaptive: bool,
    /// Rejection threshold for adaptive mode, in units of the Newton
    /// tolerance band (`reltol·|x| + vntol`).
    pub lte_factor: f64,
    /// Reuse cached linear-element stamps and (on linear circuits) the
    /// LU factorization across timesteps sharing a step size; see
    /// [`crate::element::Element::is_nonlinear`] and DESIGN.md. Disable
    /// to force the historical assemble-and-factor-every-iteration path
    /// (bit-identical to it on linear circuits either way).
    pub reuse_factorization: bool,
}

impl TranConfig {
    /// Creates a config with default Newton options and trapezoidal
    /// integration.
    ///
    /// # Panics
    ///
    /// Panics if `t_stop` or `dt` is not strictly positive, or `dt > t_stop`.
    #[must_use]
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(t_stop > 0.0 && dt > 0.0, "times must be positive");
        assert!(dt <= t_stop, "dt must not exceed t_stop");
        TranConfig {
            t_stop,
            dt,
            method: Integration::Trapezoidal,
            newton: NewtonOptions::default(),
            max_halvings: 10,
            adaptive: false,
            lte_factor: 10.0,
            reuse_factorization: true,
        }
    }

    /// Enables predictor-corrector local-truncation-error control.
    #[must_use]
    pub fn adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Disables cross-timestep stamp/factorization caching (reference
    /// path for equivalence testing and benchmarking).
    #[must_use]
    pub fn without_factor_reuse(mut self) -> Self {
        self.reuse_factorization = false;
        self
    }

    /// Switches to backward-Euler integration.
    #[must_use]
    pub fn backward_euler(mut self) -> Self {
        self.method = Integration::BackwardEuler;
        self
    }
}

/// Result of a transient run: the full solution vector at every accepted
/// timestep.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    sols: Vec<Vec<f64>>,
    branch_names: HashMap<String, usize>,
}

impl TranResult {
    /// Accepted time points (seconds), starting at 0.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the run produced no points (cannot happen for a successful
    /// run, which always records `t = 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of `node` across the run.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Vec<f64> {
        match node.index() {
            Some(i) => self.sols.iter().map(|x| x[i]).collect(),
            None => vec![0.0; self.times.len()],
        }
    }

    /// Differential waveform `v(p) − v(n)`.
    #[must_use]
    pub fn differential(&self, p: NodeId, n: NodeId) -> Vec<f64> {
        let vp = self.voltage(p);
        let vn = self.voltage(n);
        vp.iter().zip(&vn).map(|(a, b)| a - b).collect()
    }

    /// Branch-current waveform of a named voltage-defined element.
    ///
    /// # Errors
    ///
    /// [`SpiceError::NotFound`] if no such branch exists.
    pub fn current(&self, element: &str) -> Result<Vec<f64>, SpiceError> {
        let idx = *self
            .branch_names
            .get(element)
            .ok_or_else(|| SpiceError::NotFound {
                what: "branch element",
                name: element.to_string(),
            })?;
        Ok(self.sols.iter().map(|x| x[idx]).collect())
    }
}

/// Runs transient analysis.
///
/// # Errors
///
/// Propagates initial-OP failures; [`SpiceError::NoConvergence`] if a step
/// cannot be completed even at `dt / 2^max_halvings`.
pub fn run(ckt: &Circuit, config: &TranConfig) -> Result<TranResult, SpiceError> {
    run_traced(ckt, config, &Telemetry::disabled())
}

/// [`run`] recording solver telemetry into `tel`: a span tree for the
/// run's phases (initial operating point, stepping loop) plus the step,
/// LTE and factorization-reuse counters.
///
/// # Errors
///
/// See [`run`].
pub fn run_traced(
    ckt: &Circuit,
    config: &TranConfig,
    tel: &Telemetry,
) -> Result<TranResult, SpiceError> {
    let _span = tel.span("analysis", "tran");
    if !(config.t_stop > 0.0 && config.dt > 0.0) {
        return Err(SpiceError::InvalidConfig {
            message: "t_stop and dt must be positive".into(),
        });
    }
    {
        let _t = tel.timer(Phase::LintPrecheck);
        crate::lint::precheck(ckt)?;
    }
    tel.count(|c| c.lint_prechecks += 1);
    let sys = System::new(ckt);

    // Initial condition: DC solve with waveforms evaluated at t = 0.
    let x0 = {
        let _span = tel.span("phase", "tran_init");
        solve_system(&sys, &config.newton, Some(0.0), tel)?
    };
    let state = sys.init_state(&x0);

    let _stepping = tel.span("phase", "tran_stepping");
    let (times, sols) = if config.adaptive {
        adaptive_loop(ckt, &sys, config, x0, state, tel)?
    } else {
        fixed_loop(&sys, config, x0, state, tel)?
    };

    Ok(TranResult {
        times,
        sols,
        branch_names: sys.branch_names().clone(),
    })
}

/// Fixed-step transient loop: the nominal `dt` everywhere, halving only
/// on Newton failure.
fn fixed_loop(
    sys: &System<'_>,
    config: &TranConfig,
    x0: Vec<f64>,
    mut state: Vec<f64>,
    tel: &Telemetry,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), SpiceError> {
    let mut state_next = vec![0.0; sys.state_len()];
    let n_steps_estimate = (config.t_stop / config.dt).ceil() as usize + 1;
    let mut times = Vec::with_capacity(n_steps_estimate);
    let mut sols = Vec::with_capacity(n_steps_estimate);
    times.push(0.0);
    sols.push(x0.clone());

    let mut t = 0.0;
    let mut x = x0;
    // One workspace for the whole run: matrices, LU factors and cached
    // linear stamps survive from step to step.
    let mut ws = NewtonWorkspace::new();
    while t < config.t_stop - 1e-18 {
        let mut dt = config.dt.min(config.t_stop - t);
        let mut halvings = 0;
        loop {
            let mode = StampMode::Tran {
                time: t + dt,
                dt,
                method: config.method,
            };
            match sys.newton_with(
                mode,
                &x,
                &state,
                &config.newton,
                "tran",
                &mut ws,
                config.reuse_factorization,
                tel,
            ) {
                Ok(x_new) => {
                    sys.update_state(&x_new, &state, mode, &mut state_next);
                    std::mem::swap(&mut state, &mut state_next);
                    x = x_new;
                    t += dt;
                    times.push(t);
                    sols.push(x.clone());
                    tel.count(|c| {
                        c.tran_steps += 1;
                        c.record_dt(dt, config.dt);
                    });
                    break;
                }
                Err(e) => {
                    halvings += 1;
                    if halvings > config.max_halvings {
                        return Err(e);
                    }
                    tel.count(|c| c.newton_retries += 1);
                    dt /= 2.0;
                }
            }
        }
    }
    Ok((times, sols))
}

/// Smallest step the LTE controller will shrink to, as a divisor of the
/// nominal `dt`.
const MAX_SHRINK: f64 = 4096.0;

/// Step divisor used to restart integration just after a breakpoint.
const BP_RESTART_DIV: f64 = 64.0;

/// LTE-controlled adaptive transient loop.
///
/// The controller keeps a working step `dt` that it halves on rejection
/// (solution too far from the polynomial predictor) and doubles on
/// comfortably accurate steps. Source-waveform corners are collected up
/// front as breakpoints; a step that would cross one is truncated to
/// land exactly on it, and the predictor history is cleared on the far
/// side since the derivative is discontinuous there.
fn adaptive_loop(
    ckt: &Circuit,
    sys: &System<'_>,
    config: &TranConfig,
    x0: Vec<f64>,
    mut state: Vec<f64>,
    tel: &Telemetry,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), SpiceError> {
    let t_stop = config.t_stop;
    let mut breakpoints: Vec<f64> = Vec::new();
    for e in ckt.elements() {
        e.breakpoints(t_stop, &mut breakpoints);
    }
    breakpoints.sort_by(f64::total_cmp);
    breakpoints.dedup();
    breakpoints.retain(|&b| b > 0.0 && b < t_stop);
    let mut bp_idx = 0usize;

    let dt_min = config.dt / MAX_SHRINK;
    let dt_max = config.dt.max(t_stop / 50.0);
    let dt_bp_restart = (config.dt / BP_RESTART_DIV).max(dt_min);

    let mut state_next = vec![0.0; sys.state_len()];
    let mut times = vec![0.0];
    let mut sols = vec![x0.clone()];
    let mut t = 0.0;
    let mut x = x0;
    let mut ws = NewtonWorkspace::new();
    let mut dt = config.dt;
    // Number of trailing accepted points the predictor may extrapolate
    // from; reset to 1 at breakpoints (the corner point itself is valid,
    // anything older is on the wrong side of a slope discontinuity).
    let mut hist_valid: usize = 1;

    while t < t_stop - 1e-18 {
        while bp_idx < breakpoints.len() && breakpoints[bp_idx] <= t + 1e-18 {
            bp_idx += 1;
        }
        let mut dt_step = dt.min(t_stop - t);
        let mut lands_on_bp = false;
        if let Some(&bp) = breakpoints.get(bp_idx) {
            if t + dt_step >= bp - 1e-18 {
                dt_step = bp - t;
                lands_on_bp = true;
            }
        }
        let mut halvings = 0;
        let mut rejected = false;
        loop {
            let mode = StampMode::Tran {
                time: t + dt_step,
                dt: dt_step,
                method: config.method,
            };
            match sys.newton_with(
                mode,
                &x,
                &state,
                &config.newton,
                "tran",
                &mut ws,
                config.reuse_factorization,
                tel,
            ) {
                Ok(x_new) => {
                    let mut worst = 0.0f64;
                    if hist_valid >= 2 {
                        worst = predictor_deviation(
                            sys,
                            &times,
                            &sols,
                            hist_valid,
                            t + dt_step,
                            &x_new,
                            &config.newton,
                        );
                        if worst > config.lte_factor
                            && dt_step > dt_min * (1.0 + 1e-9)
                            && halvings < config.max_halvings
                        {
                            halvings += 1;
                            rejected = true;
                            lands_on_bp = false;
                            tel.count(|c| c.lte_rejects += 1);
                            dt_step = (dt_step / 2.0).max(dt_min);
                            continue;
                        }
                    }
                    sys.update_state(&x_new, &state, mode, &mut state_next);
                    std::mem::swap(&mut state, &mut state_next);
                    x = x_new;
                    t += dt_step;
                    times.push(t);
                    sols.push(x.clone());
                    tel.count(|c| {
                        c.tran_steps += 1;
                        c.lte_accepts += 1;
                        c.record_dt(dt_step, config.dt);
                        if lands_on_bp {
                            c.breakpoint_restarts += 1;
                        }
                    });
                    if lands_on_bp {
                        hist_valid = 1;
                        dt = dt_bp_restart;
                    } else {
                        hist_valid += 1;
                        if rejected {
                            // Continue at the scale the rejection found;
                            // quiet steps will grow it back.
                            dt = dt_step;
                        } else if worst < config.lte_factor / 4.0 {
                            dt = (dt * 2.0).min(dt_max);
                        }
                    }
                    break;
                }
                Err(e) => {
                    halvings += 1;
                    if halvings > config.max_halvings {
                        return Err(e);
                    }
                    tel.count(|c| c.newton_retries += 1);
                    rejected = true;
                    lands_on_bp = false;
                    dt_step /= 2.0;
                }
            }
        }
    }
    Ok((times, sols))
}

/// Worst normalized deviation of `x_new` from the polynomial predictor
/// extrapolated to `t_new`: quadratic through the last three accepted
/// points when the history allows, linear through the last two otherwise.
/// Only node voltages participate (branch currents scale too wildly for
/// the voltage band). The unit is Newton tolerance bands, so `1.0` means
/// "off by exactly `reltol·|v| + vntol`".
fn predictor_deviation(
    sys: &System<'_>,
    times: &[f64],
    sols: &[Vec<f64>],
    hist_valid: usize,
    t_new: f64,
    x_new: &[f64],
    newton: &NewtonOptions,
) -> f64 {
    let n = times.len();
    let (t2, x2) = (times[n - 1], &sols[n - 1]);
    let (t1, x1) = (times[n - 2], &sols[n - 2]);
    let mut worst = 0.0f64;
    if hist_valid >= 3 {
        let (t0, x0) = (times[n - 3], &sols[n - 3]);
        // Lagrange extrapolation of the quadratic through the three
        // trailing points.
        let l0 = ((t_new - t1) * (t_new - t2)) / ((t0 - t1) * (t0 - t2));
        let l1 = ((t_new - t0) * (t_new - t2)) / ((t1 - t0) * (t1 - t2));
        let l2 = ((t_new - t0) * (t_new - t1)) / ((t2 - t0) * (t2 - t1));
        for i in 0..sys.n_nodes() {
            let pred = l0 * x0[i] + l1 * x1[i] + l2 * x2[i];
            let band = newton.reltol * x_new[i].abs() + newton.vntol;
            worst = worst.max((x_new[i] - pred).abs() / band);
        }
    } else {
        let ratio = (t_new - t2) / (t2 - t1);
        for i in 0..sys.n_nodes() {
            let pred = x2[i] + (x2[i] - x1[i]) * ratio;
            let band = newton.reltol * x_new[i].abs() + newton.vntol;
            worst = worst.max((x_new[i] - pred).abs() / band);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn rc_charging_curve() {
        // Step into RC: v(t) = 1 − e^{−t/RC}, RC = 1 ns.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.0, 1e-12),
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
        let res = run(&ckt, &TranConfig::new(5e-9, 5e-12)).unwrap();
        let v = res.voltage(out);
        let times = res.times();
        // Compare against the analytic curve away from the ramp.
        for (i, &t) in times.iter().enumerate() {
            if t > 0.1e-9 {
                let want = 1.0 - (-(t - 1e-12) / 1e-9).exp();
                assert!(
                    (v[i] - want).abs() < 5e-3,
                    "t={t:.3e}: got {} want {want}",
                    v[i]
                );
            }
        }
        // Fully settled at the end.
        assert!((v.last().unwrap() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn lc_oscillation_period() {
        // Charged C discharging into L: period 2π√(LC).
        let (l, c): (f64, f64) = (1e-9, 1e-12);
        let period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
        let mut ckt = Circuit::new();
        let n1 = ckt.node("n1");
        // Excite with a short current pulse, then let it ring.
        ckt.add(Isource::new(
            "I1",
            Circuit::GROUND,
            n1,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1e-3,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 20e-12,
                period: 1.0,
            },
        ));
        ckt.add(Capacitor::new("C1", n1, Circuit::GROUND, c));
        ckt.add(Inductor::new("L1", n1, Circuit::GROUND, l));
        // Light damping so the oscillation persists.
        ckt.add(Resistor::new("R1", n1, Circuit::GROUND, 1e6));
        let res = run(&ckt, &TranConfig::new(4.0 * period, period / 400.0)).unwrap();
        let v = res.voltage(n1);
        let times = res.times();
        // Measure period between the last two rising zero crossings.
        let crossings = cml_numeric::interp::level_crossings(times, &v, 0.0).unwrap();
        assert!(crossings.len() >= 4, "expected several crossings");
        let last = crossings[crossings.len() - 1] - crossings[crossings.len() - 3];
        assert!(
            (last - period).abs() / period < 0.01,
            "period {last:.3e} vs expected {period:.3e}"
        );
    }

    #[test]
    fn backward_euler_decays_faster_than_trap() {
        // BE's numerical damping shows up on an LC tank: amplitude decays.
        let (l, c): (f64, f64) = (1e-9, 1e-12);
        let build = || {
            let mut ckt = Circuit::new();
            let n1 = ckt.node("n1");
            ckt.add(Isource::new(
                "I1",
                Circuit::GROUND,
                n1,
                Waveform::Pulse {
                    v1: 0.0,
                    v2: 1e-3,
                    delay: 0.0,
                    rise: 1e-12,
                    fall: 1e-12,
                    width: 20e-12,
                    period: 1.0,
                },
            ));
            ckt.add(Capacitor::new("C1", n1, Circuit::GROUND, c));
            ckt.add(Inductor::new("L1", n1, Circuit::GROUND, l));
            ckt.add(Resistor::new("R1", n1, Circuit::GROUND, 1e6));
            ckt
        };
        let period = 2.0 * std::f64::consts::PI * (l * c).sqrt();
        let cfg_trap = TranConfig::new(10.0 * period, period / 100.0);
        let cfg_be = cfg_trap.clone().backward_euler();
        let ckt = build();
        let amp = |res: &TranResult| {
            let v = res.voltage(res_node(res));
            v.iter()
                .skip(v.len() / 2)
                .fold(0.0f64, |m, &x| m.max(x.abs()))
        };
        fn res_node(_res: &TranResult) -> NodeId {
            NodeId::from_raw(1)
        }
        let a_trap = amp(&run(&ckt, &cfg_trap).unwrap());
        let a_be = amp(&run(&build(), &cfg_be).unwrap());
        assert!(
            a_be < a_trap * 0.8,
            "BE ({a_be}) should damp more than trapezoidal ({a_trap})"
        );
    }

    #[test]
    fn sine_source_passes_through_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Vsource::new(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e9,
                delay: 0.0,
            },
        ));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
        let res = run(&ckt, &TranConfig::new(2e-9, 1e-11)).unwrap();
        let v = res.voltage(a);
        let peak = v.iter().cloned().fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-2, "peak = {peak}");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        let bad = TranConfig {
            t_stop: -1.0,
            ..TranConfig::new(1.0, 1e-12)
        };
        assert!(matches!(
            run(&ckt, &bad),
            Err(SpiceError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn result_accessors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, Circuit::GROUND, 100.0));
        let res = run(&ckt, &TranConfig::new(1e-10, 1e-11)).unwrap();
        assert!(!res.is_empty());
        assert_eq!(res.times()[0], 0.0);
        let i = res.current("V1").unwrap();
        assert!((i[0] + 0.01).abs() < 1e-9);
        assert!(res.current("R1").is_err());
        let d = res.differential(a, Circuit::GROUND);
        assert!((d[0] - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use crate::prelude::*;

    /// RC step response with a deliberately coarse nominal dt: adaptive
    /// LTE control must refine the edge and beat the fixed-step error.
    #[test]
    fn adaptive_refines_sharp_edges() {
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add(Vsource::new(
                "V1",
                vin,
                Circuit::GROUND,
                Waveform::step(0.0, 1.0, 2e-9, 1e-11),
            ));
            ckt.add(Resistor::new("R1", vin, out, 1e3));
            ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12)); // τ = 1 ns
            ckt
        };
        // Coarse step: dt = τ/2.
        let coarse = TranConfig::new(8e-9, 0.5e-9);
        let adaptive = TranConfig::new(8e-9, 0.5e-9).adaptive();
        let run_err = |cfg: &TranConfig| {
            let ckt = build();
            let res = run(&ckt, cfg).unwrap();
            let out = ckt.find_node("out").unwrap();
            let v = res.voltage(out);
            let mut worst = 0.0f64;
            for (i, &t) in res.times().iter().enumerate() {
                if t > 2.1e-9 {
                    let want = 1.0 - (-(t - 2.01e-9) / 1e-9).exp();
                    worst = worst.max((v[i] - want).abs());
                }
            }
            (worst, res.len())
        };
        let (err_fixed, n_fixed) = run_err(&coarse);
        let (err_adaptive, n_adaptive) = run_err(&adaptive);
        assert!(
            n_adaptive > n_fixed,
            "adaptive must refine: {n_adaptive} vs {n_fixed} points"
        );
        assert!(
            err_adaptive < err_fixed,
            "adaptive error {err_adaptive:.4} vs fixed {err_fixed:.4}"
        );
    }

    /// On a smooth circuit the adaptive run matches the fixed run
    /// (no spurious rejections).
    #[test]
    fn adaptive_is_benign_on_smooth_signals() {
        let build = || {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            ckt.add(Vsource::new(
                "V1",
                a,
                Circuit::GROUND,
                Waveform::Sine {
                    offset: 0.0,
                    ampl: 1.0,
                    freq: 1e8,
                    delay: 0.0,
                },
            ));
            ckt.add(Resistor::new("R1", a, Circuit::GROUND, 50.0));
            ckt
        };
        let fixed = run(&build(), &TranConfig::new(20e-9, 0.1e-9)).unwrap();
        let adapt = run(&build(), &TranConfig::new(20e-9, 0.1e-9).adaptive()).unwrap();
        // Smooth waveform: at most a handful of extra refinement points
        // (a few percent), not wholesale rejection.
        assert!(
            adapt.len() < fixed.len() + fixed.len() / 10,
            "adaptive {0} vs fixed {1}",
            adapt.len(),
            fixed.len()
        );
    }

    /// The controller lands a step exactly on every source corner.
    #[test]
    fn adaptive_lands_on_source_breakpoints() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add(Vsource::new(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 2e-9, 1e-11),
        ));
        ckt.add(Resistor::new("R1", vin, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-12));
        let res = run(&ckt, &TranConfig::new(8e-9, 0.5e-9).adaptive()).unwrap();
        for corner in [2e-9, 2e-9 + 1e-11] {
            assert!(
                res.times().iter().any(|&t| (t - corner).abs() < 1e-15),
                "no accepted point at corner {corner:.3e}"
            );
        }
    }

    /// On a quiet circuit the step grows past the nominal dt, so the
    /// adaptive run takes far fewer points than the fixed grid.
    #[test]
    fn adaptive_grows_steps_when_quiet() {
        let build = || {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            ckt.add(Vsource::dc("V1", a, Circuit::GROUND, 1.0));
            ckt.add(Resistor::new("R1", a, Circuit::GROUND, 1e3));
            ckt.add(Capacitor::new("C1", a, Circuit::GROUND, 1e-12));
            ckt
        };
        let fixed = run(&build(), &TranConfig::new(100e-9, 0.1e-9)).unwrap();
        let adapt = run(&build(), &TranConfig::new(100e-9, 0.1e-9).adaptive()).unwrap();
        assert!(
            adapt.len() * 5 < fixed.len(),
            "adaptive {} should be far below fixed {}",
            adapt.len(),
            fixed.len()
        );
        // Same endpoint either way.
        assert!((adapt.times().last().unwrap() - 100e-9).abs() < 1e-15);
    }
}
